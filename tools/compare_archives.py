#!/usr/bin/env python
"""Compare two ``.npz`` archives array-by-array.

The engine layer's determinism contract says a parallel build must
produce an archive *identical* to the serial one; CI's
``parallel-parity`` job enforces it by building twice and running this
tool (the comparison logic lives here, not inline in the workflow, so it
is unit-tested like any other code — ``tests/test_tools.py``).

Usage::

    python tools/compare_archives.py serial.npz parallel.npz

Exit status 0 when every array matches (same key set, same dtype, same
shape, equal bytes); 1 otherwise, listing each difference.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Sequence

import numpy as np

__all__ = ["compare_archives", "main"]


def compare_archives(path_a: "str | Path", path_b: "str | Path") -> "List[str]":
    """Differences between two ``.npz`` archives; empty = identical.

    Each entry is a human-readable line naming the array and the way it
    differs (missing, dtype, shape, or values).  NaNs are treated as
    equal to themselves — the contract is "same bytes", not IEEE ``==``.
    """
    with np.load(path_a) as a, np.load(path_b) as b:
        diffs: "List[str]" = []
        keys_a, keys_b = set(a.files), set(b.files)
        for key in sorted(keys_a - keys_b):
            diffs.append(f"{key}: only in {path_a}")
        for key in sorted(keys_b - keys_a):
            diffs.append(f"{key}: only in {path_b}")
        for key in sorted(keys_a & keys_b):
            left, right = a[key], b[key]
            if left.dtype != right.dtype:
                diffs.append(
                    f"{key}: dtype {left.dtype} != {right.dtype}"
                )
            elif left.shape != right.shape:
                diffs.append(
                    f"{key}: shape {left.shape} != {right.shape}"
                )
            elif left.tobytes() != right.tobytes():
                diffs.append(f"{key}: values differ")
        return diffs


def main(argv: "Sequence[str] | None" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 2:
        print(
            "usage: python tools/compare_archives.py A.npz B.npz",
            file=sys.stderr,
        )
        return 2
    path_a, path_b = Path(args[0]), Path(args[1])
    for path in (path_a, path_b):
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
    diffs = compare_archives(path_a, path_b)
    if diffs:
        for line in diffs:
            print(line)
        print(f"{len(diffs)} difference(s) between {path_a} and {path_b}")
        return 1
    with np.load(path_a) as archive:
        n_arrays = len(archive.files)
    print(f"parity OK: {n_arrays} arrays identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
