#!/usr/bin/env python
"""Chaos smoke test, run by CI's ``chaos-smoke`` job.

End-to-end proof that scatter-gather serving survives injected faults:

1. build a 4-shard index (plus an unsharded truth twin) and arm the
   mitigation policy — per-probe timeouts, retries, hedging,
   ``allow_partial``;
2. inject one *slow* shard (latency spikes above the hedge threshold)
   and one *failing* shard (raises more often than the retry budget
   can always absorb), then drive 200 queries from 4 concurrent client
   threads through a real :class:`QueryService`;
3. assert **zero non-typed errors**, **bit-parity** of every
   non-degraded answer with the truth index, and **correct degraded
   accounting** — every degraded answer names its missing shards and
   the ``serve.degraded_answers`` counter matches the outcome tally;
4. assert the mitigation engaged (retries and hedges observed) and
   that the counters are scrapeable: a live ``/metrics`` scrape must
   round-trip through the strict exposition parser with the same
   values the drill observed.

Exits non-zero with a message on any violation.  Also runnable
locally::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import sys
import urllib.request
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(REPO_SRC))

from repro.chaos import FaultPlan, ShardFaults, run_drill  # noqa: E402
from repro.core.nncell_index import NNCellIndex  # noqa: E402
from repro.data import uniform_points  # noqa: E402
from repro.obs.metrics import sum_labeled  # noqa: E402
from repro.obs.promexport import MetricsServer, parse_exposition  # noqa: E402
from repro.shard import (  # noqa: E402
    ResilienceConfig,
    ShardConfig,
    ShardedNNCellIndex,
)

N_QUERIES = 200
N_THREADS = 4
N_SHARDS = 4
SLOW_SHARD = 0
FAILING_SHARD = 2

#: Slow shard: half its probes spike to 40 ms — well past the hedge
#: threshold, well inside the probe timeout (hedges race, never abandon).
SLOW = ShardFaults(slow_p=0.5, slow_ms=40.0)
#: Failing shard: raises on 85% of attempts; with 2 retries a query
#: loses it with probability 0.85^3 ~ 0.61, so the drill sees *both*
#: fully-answered (bit-parity checked) and degraded answers.
FAILING = ShardFaults(fail_p=0.85)

POLICY = ResilienceConfig(
    probe_timeout_ms=250.0,
    max_retries=2,
    backoff_base_ms=1.0,
    hedge_after_ms=20.0,
    allow_partial=True,
)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"chaos smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def scrape_metrics() -> "dict":
    """Live /metrics scrape of the drill registry, strictly parsed."""
    with MetricsServer() as server:
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            check(response.status == 200, f"/metrics returned {response.status}")
            text = response.read().decode()
    try:
        return parse_exposition(text)
    except ValueError as err:
        check(False, f"exposition did not parse strictly: {err}")


def main() -> int:
    points = uniform_points(300, 4, seed=97)
    truth = NNCellIndex.build(points)
    index = ShardedNNCellIndex.build(points, ShardConfig(n_shards=N_SHARDS))
    index.set_resilience(POLICY)

    plan = FaultPlan(
        shards={SLOW_SHARD: SLOW, FAILING_SHARD: FAILING}, seed=41
    )
    try:
        report = run_drill(
            index, plan, n_queries=N_QUERIES, n_threads=N_THREADS,
            truth=truth,
        )
    finally:
        index.close()

    # ------------------------------------------------------------------
    # 3. The resilience contract, response by response.
    # ------------------------------------------------------------------
    check(
        report.untyped_errors == 0,
        f"{report.untyped_errors} raw exceptions reached clients: "
        f"{report.outcomes}",
    )
    check(report.errors == 0, f"typed errors leaked: {report.outcomes}")
    check(
        report.mismatches == 0,
        f"{report.mismatches} non-degraded answers differed from truth",
    )
    check(
        report.unaccounted_degraded == 0,
        f"{report.unaccounted_degraded} degraded answers named no shards",
    )
    ok, degraded = report.outcomes.get("ok", 0), report.degraded
    check(ok + degraded == N_QUERIES, f"lost answers: {report.outcomes}")
    check(degraded > 0, "failing shard never degraded an answer")
    check(ok > 0, "no fully-answered queries to parity-check")
    check(
        report.faulted_shards == [FAILING_SHARD],
        f"degraded answers blamed {report.faulted_shards}, "
        f"expected [{FAILING_SHARD}]",
    )
    check(
        report.counters.get("serve.degraded_answers", 0) == degraded,
        f"serve.degraded_answers={report.counters.get('serve.degraded_answers')} "
        f"!= {degraded} degraded outcomes",
    )

    # ------------------------------------------------------------------
    # 4. The mitigation engaged, and its counters scrape strictly.
    # ------------------------------------------------------------------
    retries = report.counters.get("shard.retry", 0)
    hedges = report.counters.get("shard.hedge", 0)
    check(retries > 0, "failing shard produced no retries")
    check(hedges > 0, "slow shard produced no hedges")
    check(
        report.injected.get(f"shard{SLOW_SHARD}.slow", 0) > 0
        and report.injected.get(f"shard{FAILING_SHARD}.fail", 0) > 0,
        f"fault plan never fired: {report.injected}",
    )

    # The resilience counters are dimensional (`shard=` label): the
    # scrape carries one child sample per shard, summed here against
    # the drill's aggregate.
    samples = scrape_metrics()
    for counter, sample in (
        ("shard.retry", "shard_retry_total"),
        ("shard.hedge", "shard_hedge_total"),
        ("serve.degraded_answers", "serve_degraded_answers_total"),
    ):
        scraped = sum_labeled(samples, sample)
        check(
            scraped == report.counters.get(counter),
            f"{sample}={scraped} on /metrics, drill observed "
            f"{counter}={report.counters.get(counter)}",
        )

    print(
        f"chaos smoke OK: {N_QUERIES} queries x {N_THREADS} threads over "
        f"{N_SHARDS} shards (shard {SLOW_SHARD} slow, shard "
        f"{FAILING_SHARD} failing) -> {ok} exact, {degraded} degraded, "
        f"0 errors; retries={int(retries)} hedges={int(hedges)}; "
        f"/metrics parsed strictly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
