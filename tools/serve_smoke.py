#!/usr/bin/env python
"""Serving-layer smoke test, run by CI's ``serve-smoke`` job.

End-to-end sanity of :mod:`repro.serve` on a real (tiny) index:

1. build an index over a uniform workload;
2. start a :class:`QueryService` and push 200 queries at it from 4
   concurrent client threads;
3. assert **zero errors**, **every answer identical to the serial
   ``nearest``**, and **mean coalesced batch size > 1** (the
   micro-batching actually batched);
4. induce a batch failure and an overload, and assert both degrade into
   well-formed responses with the matching counters incremented.

Exits non-zero with a message on any violation.  Also runnable locally::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(REPO_SRC))

import numpy as np  # noqa: E402

from repro import BuildConfig, NNCellIndex  # noqa: E402
from repro.data import query_points, uniform_points  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.serve import (  # noqa: E402
    QueryService,
    ServeConfig,
    ServiceOverloaded,
)

N_THREADS = 4
N_QUERIES = 200


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"serve smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def concurrent_load(index, registry) -> None:
    """Steps 2-3: concurrent clients, zero errors, batching observed."""
    queries = query_points(N_QUERIES, index.dim, seed=13)
    config = ServeConfig(max_batch_size=32, max_wait_ms=5.0)
    results: "list" = [None] * N_QUERIES
    errors: "list" = []

    with QueryService(index, config) as service:
        def client(thread_idx: int) -> None:
            for i in range(thread_idx, N_QUERIES, N_THREADS):
                try:
                    results[i] = service.submit(queries[i])
                except Exception as err:  # any error fails the smoke
                    errors.append((i, repr(err)))

        threads = [
            threading.Thread(target=client, args=(t,))
            for t in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()

    check(not errors, f"{len(errors)} client errors, first: {errors[:1]}")
    check(stats["completed"] == N_QUERIES,
          f"completed {stats['completed']} != {N_QUERIES}")
    for i in range(N_QUERIES):
        point_id, distance, __ = index.nearest(queries[i])
        check(results[i].point_id == point_id
              and results[i].distance == distance,
              f"query {i}: served answer differs from serial nearest")
    check(stats["mean_batch_size"] > 1.0,
          f"mean batch size {stats['mean_batch_size']:.2f} <= 1")
    batch_hist = registry.histogram("serve.batch.size").summary()
    check(batch_hist["mean"] > 1.0,
          f"serve.batch.size mean {batch_hist['mean']:.2f} <= 1")
    print(
        f"load OK: {N_QUERIES} queries / {N_THREADS} threads, "
        f"mean batch size {stats['mean_batch_size']:.2f}, "
        f"0 errors"
    )


def induced_failure(index, registry) -> None:
    """Step 4a: a failing batch engine degrades, never raises."""
    def broken_batch(points, batch_size=None):
        raise RuntimeError("induced LP failure")

    with QueryService(index, ServeConfig(max_wait_ms=0.0),
                      batch_fn=broken_batch) as service:
        result = service.submit(np.full(index.dim, 0.5))
    point_id, distance, __ = index.nearest(np.full(index.dim, 0.5))
    check(result.point_id == point_id and result.distance == distance,
          "fallback answer differs from serial nearest")
    check(result.source == "serial",
          f"expected serial fallback, got {result.source!r}")
    batch_key = 'serve.fallback{stage="batch"}'
    fallbacks = registry.counter(batch_key).value
    check(fallbacks >= 1, f"{batch_key} counter not incremented")
    print(f"fallback OK: source={result.source}, "
          f"{batch_key}={fallbacks:.0f}")


def induced_overload(index, registry) -> None:
    """Step 4b: a full queue rejects with a typed error and a counter."""
    stall = threading.Event()

    def stalled_batch(points, batch_size=None):
        stall.wait(5.0)
        return index.query_batch(points)

    config = ServeConfig(max_wait_ms=0.0, max_queue_depth=1,
                         admission="reject")
    rejected = 0
    with QueryService(index, config, batch_fn=stalled_batch) as service:
        inflight = service.submit_async(np.full(index.dim, 0.5))
        pending = None
        # Fill the single queue slot, then overflow it.
        for __ in range(50):
            try:
                handle = service.submit_async(np.full(index.dim, 0.25))
                if pending is None:
                    pending = handle
            except ServiceOverloaded:
                rejected += 1
        stall.set()
        inflight.result()
        if pending is not None:
            pending.result()
    check(rejected > 0, "no submission was rejected at queue depth 1")
    counter = registry.counter("serve.rejected").value
    check(counter == rejected,
          f"serve.rejected {counter:.0f} != {rejected} observed")
    print(f"overload OK: {rejected} rejections counted")


def main() -> int:
    points = uniform_points(120, 4, seed=5)
    index = NNCellIndex.build(points, BuildConfig())
    with metrics.collecting(fresh=True) as registry:
        concurrent_load(index, registry)
        induced_failure(index, registry)
        induced_overload(index, registry)
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
