#!/usr/bin/env python
"""Sharding-layer smoke test, run by CI's ``shard-smoke`` job.

End-to-end sanity of :mod:`repro.shard` on a real (tiny) fleet:

1. build a 4-shard archive through the CLI (``build --shards 4``) and
   read it back with ``load_any_index``;
2. start a :class:`QueryService` over the sharded index and push 200
   queries at it from 4 concurrent client threads;
3. assert **zero errors** and **every answer bit-identical to an
   unsharded index** over the same points (the exactness contract,
   checked through the full serve + scatter-gather stack);
4. assert the scatter actually fanned out (``shard.fanout`` observed)
   and the CLI ``query``/``info`` paths work on the archive.

Exits non-zero with a message on any violation.  Also runnable
locally::

    PYTHONPATH=src python tools/shard_smoke.py
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(REPO_SRC))

from repro import NNCellIndex  # noqa: E402
from repro.core.persistence import (  # noqa: E402
    is_sharded_archive,
    load_any_index,
)
from repro.data import query_points  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.serve import QueryService, ServeConfig  # noqa: E402
from repro.shard import ShardedNNCellIndex  # noqa: E402

N_SHARDS = 4
N_THREADS = 4
N_QUERIES = 200


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"shard smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def cli(args: "list[str]") -> str:
    """Run one repro CLI command; fail the smoke on non-zero exit."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        cwd=str(REPO_ROOT),
    )
    check(
        proc.returncode == 0,
        f"`repro {' '.join(args)}` exited {proc.returncode}:"
        f" {proc.stderr.strip()[:300]}",
    )
    return proc.stdout


def build_archive(workdir: Path) -> Path:
    """Step 1: CLI round-trip — build a 4-shard archive, load it back."""
    archive = workdir / "fleet"
    cli([
        "build", "--dataset", "uniform", "--n", "120", "--dim", "4",
        "--seed", "5",
        "--shards", str(N_SHARDS), "--partitioner", "hilbert",
        "--out", str(archive),
    ])
    check(is_sharded_archive(archive), f"{archive} is not a sharded archive")
    index = load_any_index(archive)
    check(isinstance(index, ShardedNNCellIndex),
          f"load_any_index returned {type(index).__name__}")
    check(index.n_shards == N_SHARDS,
          f"archive has {index.n_shards} shards, expected {N_SHARDS}")
    check(len(index) == 120, f"archive holds {len(index)} points, not 120")
    print(f"archive OK: {N_SHARDS} shards, sizes {index.shard_sizes()}")
    return archive


def concurrent_parity(index, registry) -> None:
    """Steps 2-3: concurrent serve over shards, bit-identical answers."""
    flat = NNCellIndex.build(index.points, index.config)
    queries = query_points(N_QUERIES, index.dim, seed=13)
    config = ServeConfig(max_batch_size=32, max_wait_ms=5.0)
    results: "list" = [None] * N_QUERIES
    errors: "list" = []

    with QueryService(index, config) as service:
        def client(thread_idx: int) -> None:
            for i in range(thread_idx, N_QUERIES, N_THREADS):
                try:
                    results[i] = service.submit(queries[i])
                except Exception as err:  # any error fails the smoke
                    errors.append((i, repr(err)))

        threads = [
            threading.Thread(target=client, args=(t,))
            for t in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()

    check(not errors, f"{len(errors)} client errors, first: {errors[:1]}")
    check(stats["completed"] == N_QUERIES,
          f"completed {stats['completed']} != {N_QUERIES}")
    mismatches = 0
    for i in range(N_QUERIES):
        point_id, distance, __ = flat.nearest(queries[i])
        if (results[i].point_id != point_id
                or results[i].distance != distance):
            mismatches += 1
    check(mismatches == 0,
          f"{mismatches}/{N_QUERIES} served answers differ from the"
          f" unsharded index")
    fanout = registry.histogram("shard.fanout").summary()
    check(fanout["count"] > 0, "no shard.fanout observations recorded")
    check(fanout["mean"] > 1.0,
          f"shard.fanout mean {fanout['mean']:.2f} <= 1 (no scatter)")
    print(
        f"parity OK: {N_QUERIES} queries / {N_THREADS} threads, "
        f"0 mismatches, mean fanout {fanout['mean']:.2f}"
    )


def cli_query_paths(archive: Path) -> None:
    """Step 4: the query/info CLI paths understand sharded archives."""
    out = cli(["query", str(archive),
               "--point", "0.5,0.5,0.5,0.5", "-k", "3"])
    check("neighbor" in out or "id" in out,
          f"unexpected query output: {out[:200]!r}")
    info = cli(["info", str(archive)])
    check("sharding" in info, f"info output missing sharding line: "
          f"{info[:300]!r}")
    print("cli OK: query/info understand the sharded archive")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        archive = build_archive(workdir)
        index = load_any_index(archive)
        with metrics.collecting(fresh=True) as registry:
            concurrent_parity(index, registry)
        index.close()
        cli_query_paths(archive)
    print("shard smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
