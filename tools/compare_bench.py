#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` documents; fail on a >10% regression.

The perf-trajectory contract: every tracked benchmark writes a root
level ``BENCH_<name>.json`` with a flat ``"metrics"`` mapping, and CI
(or a reviewer) runs::

    python tools/compare_bench.py BENCH_obs.baseline.json BENCH_obs.json

exit 0  — no tracked metric regressed beyond the threshold;
exit 1  — at least one did (each is listed);
exit 2  — usage error or unreadable/invalid document.

Regression direction is derived from the metric name's suffix:
``*_qps`` is higher-is-better; ``*_ms``, ``*_pages`` and ``*_seconds``
are lower-is-better.  Everything else — including ``*_pct`` shares,
whose *relative* change is noise when the base is small — is reported
for context but never gates.  ``--threshold 0.10`` (the default) means
a metric may move 10% in the bad direction before the tool fails.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_THRESHOLD = 0.10

_HIGHER_IS_BETTER = ("_qps",)
_LOWER_IS_BETTER = ("_ms", "_pages", "_seconds")


def metric_direction(name: str) -> "Optional[str]":
    """``"higher"`` / ``"lower"`` when the suffix implies a direction."""
    if name.endswith(_HIGHER_IS_BETTER):
        return "higher"
    if name.endswith(_LOWER_IS_BETTER):
        return "lower"
    return None


def load_bench(path: "str | Path") -> "Dict[str, object]":
    """Read one BENCH document; raises ``ValueError`` when malformed."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as err:
        raise ValueError(f"{path} is not valid JSON: {err}") from err
    if not isinstance(document, dict) or not isinstance(
        document.get("metrics"), dict
    ):
        raise ValueError(
            f"{path} is not a BENCH document (no 'metrics' mapping)"
        )
    return document


def compare_bench(
    baseline: "Dict[str, object]",
    current: "Dict[str, object]",
    threshold: float = DEFAULT_THRESHOLD,
) -> "Tuple[List[dict], List[str]]":
    """``(rows, regressions)`` for two loaded BENCH documents.

    ``rows`` has one entry per metric in either document — name,
    baseline, current, relative change and a verdict (``ok`` /
    ``improved`` / ``regressed`` / ``info`` / ``missing``).
    ``regressions`` is the human-readable subset that should fail a
    gate.
    """
    if threshold < 0.0:
        raise ValueError("threshold must be >= 0")
    base_metrics: "Dict[str, float]" = baseline["metrics"]  # type: ignore
    cur_metrics: "Dict[str, float]" = current["metrics"]  # type: ignore
    rows: "List[dict]" = []
    regressions: "List[str]" = []
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        row = {
            "name": name,
            "baseline": base_metrics.get(name),
            "current": cur_metrics.get(name),
            "change": None,
            "verdict": "info",
        }
        rows.append(row)
        if name not in base_metrics or name not in cur_metrics:
            row["verdict"] = "missing"
            continue
        base = float(base_metrics[name])
        cur = float(cur_metrics[name])
        direction = metric_direction(name)
        if direction is None or base == 0.0:
            continue
        change = (cur - base) / abs(base)
        row["change"] = change
        worse = -change if direction == "higher" else change
        if worse > threshold:
            row["verdict"] = "regressed"
            regressions.append(
                f"{name}: {base:g} -> {cur:g} ({change:+.1%};"
                f" {direction} is better, threshold {threshold:.0%})"
            )
        elif worse < -threshold:
            row["verdict"] = "improved"
        else:
            row["verdict"] = "ok"
    return rows, regressions


def _render(rows: "List[dict]") -> str:
    lines = [f"{'metric':<28} {'baseline':>14} {'current':>14} "
             f"{'change':>8}  verdict"]
    for row in rows:
        base = "-" if row["baseline"] is None else f"{row['baseline']:g}"
        cur = "-" if row["current"] is None else f"{row['current']:g}"
        change = (
            "-" if row["change"] is None else f"{row['change']:+.1%}"
        )
        lines.append(
            f"{row['name']:<28} {base:>14} {cur:>14} "
            f"{change:>8}  {row['verdict']}"
        )
    return "\n".join(lines)


def main(argv: "Optional[List[str]]" = None) -> int:
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    threshold = DEFAULT_THRESHOLD
    if "--threshold" in args:
        at = args.index("--threshold")
        try:
            threshold = float(args[at + 1])
        except (IndexError, ValueError):
            print("error: --threshold expects a number", file=sys.stderr)
            return 2
        del args[at:at + 2]
    if len(args) != 2:
        print(
            "usage: compare_bench.py BASELINE.json CURRENT.json"
            " [--threshold FRACTION]",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_bench(args[0])
        current = load_bench(args[1])
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    rows, regressions = compare_bench(baseline, current, threshold)
    print(_render(rows))
    if regressions:
        print()
        print(f"{len(regressions)} regression(s) beyond {threshold:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nbench OK: no regression beyond {threshold:.0%}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
