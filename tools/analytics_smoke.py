#!/usr/bin/env python
"""Workload-analytics smoke test, run by CI's ``analytics-smoke`` job.

End-to-end proof that the analytics layer detects a real hotspot on a
real serving process and that its capture replays exactly:

1. build a 4-shard hilbert-partitioned archive (1000 uniform points,
   dim 4) via the CLI and launch ``python -m repro serve <archive>
   --metrics-port 0 --analytics --capture capture.jsonl``;
2. drive 200 *deliberately skewed* queries over JSONL stdin — every
   query lands within noise of a point shard 0 owns, so shard 0 does
   the candidate-scan work while the other shards probe shallowly;
3. scrape ``GET /analytics`` once the capture confirms all queries were
   answered, and assert the skew report convicts the right shard: four
   shards accounted, verdict not balanced, shard 0 named hot with the
   top work share, and a non-empty hot-cell heatmap;
4. drain the responses (every one must succeed), then load the capture
   and **replay** it against the same archive in-process — serial and
   batched modes must both be bit-identical (zero mismatches);
5. run ``python -m repro analyze`` on the capture and assert the
   scriptable verdict: exit status 2 (skew detected) and shard 0 in
   ``verdict.hot_shards`` of the ``--json`` document.

Exits non-zero with a message on any violation.  Also runnable
locally::

    PYTHONPATH=src python tools/analytics_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(REPO_SRC))

from repro.core.persistence import load_any_index  # noqa: E402
from repro.eval.replay import replay  # noqa: E402
from repro.obs.workload import load_workload  # noqa: E402

_ENDPOINT = re.compile(
    r"metrics endpoint: (http://127\.0\.0\.1:\d+)/metrics"
)

N_POINTS = 1000
DIM = 4
N_SHARDS = 4
N_QUERIES = 200
#: The shard the skewed workload should convict.
HOT_SHARD = 0
#: Noise radius around shard 0's own points — tight enough that every
#: query stays in shard 0's neighborhood of the data space.
NOISE_SIGMA = 0.002


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"analytics smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def _env() -> "dict[str, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def build_archive(workdir: Path) -> Path:
    archive = workdir / "shards"
    subprocess.run(
        [sys.executable, "-m", "repro", "build", "--dataset", "uniform",
         "--n", str(N_POINTS), "--dim", str(DIM),
         "--shards", str(N_SHARDS), "--partitioner", "hilbert",
         "--out", str(archive)],
        check=True, env=_env(), capture_output=True,
    )
    return archive


def skewed_queries(archive: Path) -> "np.ndarray":
    """200 queries clustered on the points shard 0 owns.

    Scatter-gather probes every shard, so *probe* counts are uniform by
    design; the skew shows up in the per-shard work (blocks + cells).
    Clustering queries on one shard's own points concentrates the
    candidate scans there.
    """
    index = load_any_index(archive)
    try:
        owned = index._globals[HOT_SHARD]
        anchors = index.points[owned]
    finally:
        index.close()
    rng = np.random.default_rng(1234)
    picks = anchors[np.arange(N_QUERIES) % anchors.shape[0]]
    noisy = picks + rng.normal(0.0, NOISE_SIGMA, size=picks.shape)
    return np.clip(noisy, 0.0, 1.0)


def launch_serve(
    archive: Path, capture: Path
) -> "tuple[subprocess.Popen, str, threading.Thread]":
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(archive),
         "--metrics-port", "0", "--analytics",
         "--capture", str(capture)],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=_env(),
    )
    stderr_lines: "list[str]" = []
    announced = threading.Event()

    def read_stderr() -> None:
        for line in proc.stderr:
            stderr_lines.append(line)
            if _ENDPOINT.search(line):
                announced.set()
        announced.set()  # EOF: stop waiters even on startup failure

    reader = threading.Thread(target=read_stderr, daemon=True)
    reader.start()
    check(announced.wait(timeout=60.0), "no metrics endpoint announced")
    match = next(
        (m for line in stderr_lines for m in [_ENDPOINT.search(line)]
         if m),
        None,
    )
    check(match is not None,
          f"endpoint line not found in stderr: {stderr_lines}")
    return proc, match.group(1), reader


def wait_for_capture(capture: Path, n_expected: int) -> None:
    """Block until the capture log holds header + ``n_expected`` rows —
    the proof every submitted query has been answered and recorded."""
    deadline = time.monotonic() + 120.0
    lines = 0
    while time.monotonic() < deadline:
        if capture.exists():
            with open(capture, encoding="utf-8") as handle:
                lines = sum(1 for __ in handle)
            if lines >= n_expected + 1:
                return
        time.sleep(0.2)
    check(False, f"capture stalled at {lines - 1}/{n_expected} records")


def assert_skew_report(report: dict) -> None:
    shards = report.get("shards", {})
    check(sorted(shards) == [str(s) for s in range(N_SHARDS)],
          f"expected {N_SHARDS} shards in the report, got {sorted(shards)}")
    verdict = report.get("verdict", {})
    check(verdict.get("balanced") is False,
          f"skewed workload reported as balanced: {verdict}")
    check(HOT_SHARD in verdict.get("hot_shards", []),
          f"shard {HOT_SHARD} not named hot: {verdict}")
    shares = {int(s): row["load_share"] for s, row in shards.items()}
    check(max(shares, key=shares.get) == HOT_SHARD,
          f"shard {HOT_SHARD} does not carry the top work share: {shares}")
    hot_cells = report.get("hot_cells", {})
    check(hot_cells.get("tracked", 0) > 0 and hot_cells.get("top"),
          f"hot-cell heatmap is empty: {hot_cells}")
    check(report.get("total_probes", 0) > 0, "no probes recorded")
    print(
        f"skew report OK: shard {HOT_SHARD} hot with"
        f" {shares[HOT_SHARD]:.1%} of the work (gini"
        f" {verdict.get('gini')}), {hot_cells['tracked']} cells tracked"
    )


def replay_leg(archive: Path, capture: Path) -> None:
    """The capture must replay bit-identically against the archive."""
    workload = load_workload(capture)
    check(len(workload) == N_QUERIES,
          f"capture holds {len(workload)} queries, expected {N_QUERIES}")
    index = load_any_index(archive)
    try:
        for mode in ("serial", "batch"):
            report = replay(index, workload, mode=mode)
            check(report.bit_identical,
                  f"{mode} replay found {len(report.mismatches)}"
                  f" mismatches: {report.as_dict(max_mismatches=3)}")
    finally:
        index.close()
    print(f"replay OK: {N_QUERIES} queries bit-identical in both modes")


def analyze_leg(archive: Path, capture: Path) -> None:
    """``repro analyze`` convicts the hot shard with exit status 2."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", str(archive),
         "--workload", str(capture), "--json"],
        env=_env(), capture_output=True, text=True,
    )
    check(result.returncode == 2,
          f"analyze exited {result.returncode} (expected 2 = skew):"
          f" {result.stderr[-500:]}")
    document = json.loads(result.stdout)
    check(HOT_SHARD in document["verdict"]["hot_shards"],
          f"analyze verdict missed shard {HOT_SHARD}:"
          f" {document['verdict']}")
    print(
        f"analyze OK: exit 2, verdict names shard(s)"
        f" {document['verdict']['hot_shards']}"
    )


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="analytics-smoke-"))
    archive = build_archive(workdir)
    queries = skewed_queries(archive)
    capture = workdir / "capture.jsonl"

    proc, base_url, reader = launch_serve(archive, capture)
    try:
        print(f"serve up at {base_url}, driving {N_QUERIES} skewed"
              f" queries at shard {HOT_SHARD}")
        for q in queries:
            proc.stdin.write(json.dumps([round(x, 12) for x in q]) + "\n")
        proc.stdin.flush()

        wait_for_capture(capture, N_QUERIES)

        with urllib.request.urlopen(
            f"{base_url}/analytics", timeout=10
        ) as response:
            check(response.status == 200,
                  f"/analytics returned {response.status}")
            report = json.loads(response.read().decode())
        assert_skew_report(report)

        proc.stdin.close()
        for i in range(N_QUERIES):
            answer = json.loads(proc.stdout.readline())
            check(answer.get("ok") is True,
                  f"query {i} failed: {answer}")
        check(proc.wait(timeout=60) == 0,
              f"serve exited with {proc.returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        reader.join(timeout=5)

    replay_leg(archive, capture)
    analyze_leg(archive, capture)

    print("analytics smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
