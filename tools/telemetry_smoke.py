#!/usr/bin/env python
"""Live-telemetry smoke test, run by CI's ``telemetry-smoke`` job.

End-to-end sanity of the telemetry surfaces on a real serving process:

1. build a tiny index and launch ``python -m repro serve idx.npz
   --metrics-port 0`` as a subprocess, reading the bound port back from
   the ``metrics endpoint: http://127.0.0.1:<port>/metrics`` stderr
   announcement;
2. submit one plain request and one ``"explain": true`` request over
   the JSONL protocol;
3. scrape ``/metrics`` mid-flight, validate the body with the strict
   exposition parser, and assert the serving latency histogram counted
   both requests;
4. fetch ``/telemetry`` and assert the standard windows carry the
   traffic; fetch ``/healthz``;
5. close stdin, read both responses in input order, and assert the
   explain echo agrees with the served answer;
6. relaunch with ``--tracing --slo`` and drive 200 queries: every
   response must carry a distinct well-formed ``trace_id``, the 60s
   latency window must surface exemplars, and **every** exemplar must
   resolve through ``GET /trace/<id>`` to a stored trace whose
   critical path covers >= 95% of the request;
7. assert the SLO watchdog did not page under that healthy load
   (``/healthz`` stays ``ok``);
8. run ``python -m repro trace <idx> export`` and validate the Chrome
   trace-event JSON it writes (only ``M``/``X`` phases, non-negative
   microsecond timings, ``serve.request`` spans present).

Exits non-zero with a message on any violation.  Also runnable
locally::

    PYTHONPATH=src python tools/telemetry_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.promexport import parse_exposition  # noqa: E402
from repro.obs.timeseries import DEFAULT_WINDOWS  # noqa: E402

_ENDPOINT = re.compile(
    r"metrics endpoint: (http://127\.0\.0\.1:\d+)/metrics"
)
_TRACE_ID = re.compile(r"^[0-9a-f]{16}$")

#: Traced-leg workload: enough traffic that the tail sampler has real
#: slowest-N displacement to do, small enough to stay well inside the
#: stdout pipe buffer before the drain.
N_TRACE_QUERIES = 200


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"telemetry smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def build_index(workdir: Path) -> Path:
    index = workdir / "idx.npz"
    subprocess.run(
        [sys.executable, "-m", "repro", "build", "--dataset", "uniform",
         "--n", "40", "--dim", "3", "--out", str(index)],
        check=True, env=_env(), capture_output=True,
    )
    return index


def _env() -> "dict[str, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def launch_serve(
    index: Path, extra: "list[str] | None" = None
) -> "tuple[subprocess.Popen, str, threading.Thread]":
    """Start ``repro serve --metrics-port 0`` and wait for the scrape
    endpoint announcement; returns ``(proc, base_url, stderr_reader)``.

    Stderr is drained on a thread: the endpoint announcement arrives
    before any response, and an unread pipe would deadlock shutdown.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(index),
         "--metrics-port", "0", *(extra or [])],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=_env(),
    )
    stderr_lines: "list[str]" = []
    announced = threading.Event()

    def read_stderr() -> None:
        for line in proc.stderr:
            stderr_lines.append(line)
            if _ENDPOINT.search(line):
                announced.set()
        announced.set()  # EOF: stop waiters even on startup failure

    reader = threading.Thread(target=read_stderr, daemon=True)
    reader.start()
    check(announced.wait(timeout=30.0), "no metrics endpoint announced")
    match = next(
        (m for line in stderr_lines for m in [_ENDPOINT.search(line)]
         if m),
        None,
    )
    check(match is not None,
          f"endpoint line not found in stderr: {stderr_lines}")
    return proc, match.group(1), reader


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode())


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="telemetry-smoke-"))
    index = build_index(workdir)

    proc, base_url, reader = launch_serve(index)
    try:
        print(f"serve up, scrape endpoint at {base_url}/metrics")

        # --- submit traffic: one plain + one explain request ----------
        # Responses stream in input order once decided (and at the
        # latest on stdin EOF); the service itself answers within
        # max_wait_ms, so the scrape below sees the traffic while the
        # process is still serving.
        proc.stdin.write('[0.5, 0.5, 0.5]\n')
        proc.stdin.write(
            '{"point": [0.25, 0.5, 0.75], "explain": true}\n'
        )
        proc.stdin.flush()

        # --- /metrics through the strict parser -----------------------
        deadline = time.monotonic() + 30.0
        samples: "dict[str, float]" = {}
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                f"{base_url}/metrics", timeout=10
            ) as response:
                body = response.read().decode()
            samples = parse_exposition(body)  # raises on malformed lines
            if samples.get("serve_latency_ms_count", 0.0) >= 2.0:
                break
            time.sleep(0.1)
        check("serve_latency_ms_count" in samples,
              f"serve_latency_ms missing from scrape: {sorted(samples)[:8]}")
        check(samples["serve_latency_ms_count"] >= 2.0,
              f"latency count {samples['serve_latency_ms_count']} < 2")
        print(f"scrape OK: {len(samples)} samples, "
              f"serve_latency_ms_count={samples['serve_latency_ms_count']:g}")

        # --- /telemetry windows + /healthz ----------------------------
        with urllib.request.urlopen(
            f"{base_url}/telemetry", timeout=10
        ) as response:
            document = json.loads(response.read().decode())
        check(sorted(document["windows"]) == sorted(
            str(s) for s in DEFAULT_WINDOWS
        ), f"unexpected windows: {sorted(document['windows'])}")
        in_60s = document["windows"]["60"].get("serve.latency_ms", {})
        check(in_60s.get("count", 0) >= 2,
              f"60s window missed the traffic: {in_60s}")
        with urllib.request.urlopen(
            f"{base_url}/healthz", timeout=10
        ) as response:
            check(response.read() == b"ok\n", "healthz not ok")
        print("telemetry endpoint OK: windows "
              + ", ".join(sorted(document["windows"])))

        # --- close stdin: responses drain in input order --------------
        proc.stdin.close()
        plain = json.loads(proc.stdout.readline())
        explained = json.loads(proc.stdout.readline())
        check(plain.get("ok") is True, f"plain request failed: {plain}")
        check("explain" not in plain, "unsolicited explain payload")
        check(explained.get("ok") is True,
              f"explain request failed: {explained}")
        echo = explained.get("explain")
        check(isinstance(echo, dict), f"missing explain echo: {explained}")
        check(echo["nearest_id"] == explained["point_id"],
              "explain echo disagrees with the served answer")
        check(echo["path"] in ("cell", "cell_retry", "empty_point_query",
                               "outside_data_space"),
              f"unknown explain path {echo['path']!r}")
        print(f"JSONL OK: explain path={echo['path']}, "
              f"candidates={echo['n_candidates']}")
        check(proc.wait(timeout=30) == 0,
              f"serve exited with {proc.returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        reader.join(timeout=5)

    trace_leg(index)
    export_leg(index, workdir)

    print("telemetry smoke OK")
    return 0


def trace_leg(index: Path) -> None:
    """Serve with ``--tracing --slo``: identity on every response, and
    every surfaced tail exemplar resolves to a stored trace with a
    >= 95%-coverage critical path."""
    proc, base_url, reader = launch_serve(index, ["--tracing", "--slo"])
    try:
        print(f"trace leg up at {base_url}, driving "
              f"{N_TRACE_QUERIES} queries")
        for i in range(N_TRACE_QUERIES):
            t = (i + 0.5) / N_TRACE_QUERIES
            proc.stdin.write(json.dumps([t, 1.0 - t, 0.5]) + "\n")
        proc.stdin.flush()

        # Wait for the whole workload to land in the 60s window, then
        # take one consistent /telemetry snapshot to resolve against.
        deadline = time.monotonic() + 60.0
        document: dict = {}
        window: dict = {}
        while time.monotonic() < deadline:
            document = get_json(f"{base_url}/telemetry")
            window = document["windows"]["60"].get("serve.latency_ms", {})
            if window.get("count", 0) >= N_TRACE_QUERIES:
                break
            time.sleep(0.1)
        check(window.get("count", 0) >= N_TRACE_QUERIES,
              f"60s window missed the traced traffic: {window}")

        # --- every exemplar resolves with critical-path coverage ------
        exemplars = window.get("exemplars", [])
        check(len(exemplars) > 0,
              "no latency exemplars surfaced under tracing")
        for exemplar in exemplars:
            trace_id = exemplar.get("trace_id", "")
            check(bool(_TRACE_ID.match(trace_id)),
                  f"malformed exemplar trace id: {exemplar}")
            trace_doc = get_json(f"{base_url}/trace/{trace_id}")
            check(trace_doc.get("trace_id") == trace_id,
                  f"/trace/{trace_id} returned {trace_doc.get('trace_id')}")
            path = trace_doc.get("critical_path", {})
            coverage = path.get("coverage", 0.0)
            check(coverage >= 0.95,
                  f"critical-path coverage {coverage} < 0.95 for"
                  f" {trace_id}: {path}")
        retention = document.get("traces", {})
        check(retention.get("stored", 0) > 0,
              f"trace store retained nothing: {retention}")
        print(f"exemplars OK: {len(exemplars)} resolved via /trace/<id>,"
              f" store retains {retention['stored']} traces")

        # --- SLO watchdog: healthy load must not page -----------------
        slo = document.get("slo", {})
        check(slo.get("state") in ("ok", "warn"),
              f"watchdog escalated under healthy load: {slo}")
        with urllib.request.urlopen(
            f"{base_url}/healthz", timeout=10
        ) as response:
            check(response.read() == b"ok\n",
                  "healthz not ok under healthy load")

        # --- drain: every response carries a distinct trace id --------
        proc.stdin.close()
        seen: "set[str]" = set()
        for i in range(N_TRACE_QUERIES):
            response = json.loads(proc.stdout.readline())
            check(response.get("ok") is True,
                  f"traced query {i} failed: {response}")
            trace_id = response.get("trace_id", "")
            check(bool(_TRACE_ID.match(trace_id)),
                  f"response {i} lacks a well-formed trace id: {response}")
            seen.add(trace_id)
        check(len(seen) == N_TRACE_QUERIES,
              f"trace ids not distinct: {len(seen)}/{N_TRACE_QUERIES}")
        check(proc.wait(timeout=30) == 0,
              f"traced serve exited with {proc.returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        reader.join(timeout=5)
    print(f"trace leg OK: {N_TRACE_QUERIES} distinct trace ids echoed")


def export_leg(index: Path, workdir: Path) -> None:
    """``repro trace export`` emits loadable Chrome trace-event JSON."""
    out = workdir / "trace.json"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "trace", str(index), "export",
         "--queries", "50", "--out", str(out)],
        env=_env(), capture_output=True, text=True,
    )
    check(result.returncode == 0,
          f"trace export failed ({result.returncode}):"
          f" {result.stderr[-500:]}")
    document = json.loads(out.read_text())
    trace_events = document.get("traceEvents", [])
    check(len(trace_events) > 0, "Chrome trace export is empty")
    phases = {event.get("ph") for event in trace_events}
    check(phases <= {"M", "X"},
          f"unexpected trace-event phases: {sorted(map(str, phases))}")
    names = {e.get("name") for e in trace_events if e.get("ph") == "X"}
    check("serve.request" in names,
          f"no serve.request spans in export: {sorted(names)[:8]}")
    for event in trace_events:
        if event.get("ph") == "X":
            check(event.get("ts", -1) >= 0 and event.get("dur", -1) >= 0,
                  f"negative timing in trace event: {event}")
    print(f"export leg OK: {len(trace_events)} Chrome trace events,"
          f" {len(names)} span names")


if __name__ == "__main__":
    sys.exit(main())
