#!/usr/bin/env python
"""Live-telemetry smoke test, run by CI's ``telemetry-smoke`` job.

End-to-end sanity of the telemetry surfaces on a real serving process:

1. build a tiny index and launch ``python -m repro serve idx.npz
   --metrics-port 0`` as a subprocess, reading the bound port back from
   the ``metrics endpoint: http://127.0.0.1:<port>/metrics`` stderr
   announcement;
2. submit one plain request and one ``"explain": true`` request over
   the JSONL protocol;
3. scrape ``/metrics`` mid-flight, validate the body with the strict
   exposition parser, and assert the serving latency histogram counted
   both requests;
4. fetch ``/telemetry`` and assert the standard windows carry the
   traffic; fetch ``/healthz``;
5. close stdin, read both responses in input order, and assert the
   explain echo agrees with the served answer.

Exits non-zero with a message on any violation.  Also runnable
locally::

    PYTHONPATH=src python tools/telemetry_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.promexport import parse_exposition  # noqa: E402
from repro.obs.timeseries import DEFAULT_WINDOWS  # noqa: E402

_ENDPOINT = re.compile(
    r"metrics endpoint: (http://127\.0\.0\.1:\d+)/metrics"
)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"telemetry smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def build_index(workdir: Path) -> Path:
    index = workdir / "idx.npz"
    subprocess.run(
        [sys.executable, "-m", "repro", "build", "--dataset", "uniform",
         "--n", "40", "--dim", "3", "--out", str(index)],
        check=True, env=_env(), capture_output=True,
    )
    return index


def _env() -> "dict[str, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="telemetry-smoke-"))
    index = build_index(workdir)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(index),
         "--metrics-port", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=_env(),
    )
    # Drain stderr on a thread: the endpoint announcement arrives
    # before any response, and an unread pipe would deadlock shutdown.
    stderr_lines: "list[str]" = []
    announced = threading.Event()

    def read_stderr() -> None:
        for line in proc.stderr:
            stderr_lines.append(line)
            if _ENDPOINT.search(line):
                announced.set()
        announced.set()  # EOF: stop waiters even on startup failure

    reader = threading.Thread(target=read_stderr, daemon=True)
    reader.start()

    try:
        check(announced.wait(timeout=30.0), "no metrics endpoint announced")
        match = next(
            (m for line in stderr_lines for m in [_ENDPOINT.search(line)]
             if m),
            None,
        )
        check(match is not None,
              f"endpoint line not found in stderr: {stderr_lines}")
        base_url = match.group(1)
        print(f"serve up, scrape endpoint at {base_url}/metrics")

        # --- submit traffic: one plain + one explain request ----------
        # Responses stream in input order once decided (and at the
        # latest on stdin EOF); the service itself answers within
        # max_wait_ms, so the scrape below sees the traffic while the
        # process is still serving.
        proc.stdin.write('[0.5, 0.5, 0.5]\n')
        proc.stdin.write(
            '{"point": [0.25, 0.5, 0.75], "explain": true}\n'
        )
        proc.stdin.flush()

        # --- /metrics through the strict parser -----------------------
        deadline = time.monotonic() + 30.0
        samples: "dict[str, float]" = {}
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                f"{base_url}/metrics", timeout=10
            ) as response:
                body = response.read().decode()
            samples = parse_exposition(body)  # raises on malformed lines
            if samples.get("serve_latency_ms_count", 0.0) >= 2.0:
                break
            time.sleep(0.1)
        check("serve_latency_ms_count" in samples,
              f"serve_latency_ms missing from scrape: {sorted(samples)[:8]}")
        check(samples["serve_latency_ms_count"] >= 2.0,
              f"latency count {samples['serve_latency_ms_count']} < 2")
        print(f"scrape OK: {len(samples)} samples, "
              f"serve_latency_ms_count={samples['serve_latency_ms_count']:g}")

        # --- /telemetry windows + /healthz ----------------------------
        with urllib.request.urlopen(
            f"{base_url}/telemetry", timeout=10
        ) as response:
            document = json.loads(response.read().decode())
        check(sorted(document["windows"]) == sorted(
            str(s) for s in DEFAULT_WINDOWS
        ), f"unexpected windows: {sorted(document['windows'])}")
        in_60s = document["windows"]["60"].get("serve.latency_ms", {})
        check(in_60s.get("count", 0) >= 2,
              f"60s window missed the traffic: {in_60s}")
        with urllib.request.urlopen(
            f"{base_url}/healthz", timeout=10
        ) as response:
            check(response.read() == b"ok\n", "healthz not ok")
        print("telemetry endpoint OK: windows "
              + ", ".join(sorted(document["windows"])))

        # --- close stdin: responses drain in input order --------------
        proc.stdin.close()
        plain = json.loads(proc.stdout.readline())
        explained = json.loads(proc.stdout.readline())
        check(plain.get("ok") is True, f"plain request failed: {plain}")
        check("explain" not in plain, "unsolicited explain payload")
        check(explained.get("ok") is True,
              f"explain request failed: {explained}")
        echo = explained.get("explain")
        check(isinstance(echo, dict), f"missing explain echo: {explained}")
        check(echo["nearest_id"] == explained["point_id"],
              "explain echo disagrees with the served answer")
        check(echo["path"] in ("cell", "cell_retry", "empty_point_query",
                               "outside_data_space"),
              f"unknown explain path {echo['path']!r}")
        print(f"JSONL OK: explain path={echo['path']}, "
              f"candidates={echo['n_candidates']}")
        check(proc.wait(timeout=30) == 0,
              f"serve exited with {proc.returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        reader.join(timeout=5)

    print("telemetry smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
