#!/usr/bin/env python
"""Docs link checker: every file reference in the docs must resolve.

Scans markdown files for

* inline links ``[text](target)`` — relative targets must exist on disk
  (``http(s)://``, ``mailto:`` and pure ``#anchor`` targets are skipped);
* prose references to repo files such as ``docs/scaling.md``,
  ``examples/quickstart.py`` or ``ROADMAP.md`` — mentioned paths must
  exist, so a renamed or deleted file cannot leave a dangling pointer in
  the documentation;
* architecture coverage — every ``src/repro/*`` subpackage must be
  mentioned (as ``repro.<name>``) in ``docs/architecture.md``, so a new
  layer cannot land without the architecture overview describing it.

Usage::

    python tools/check_doc_links.py [FILE_OR_DIR ...]

With no arguments, checks ``docs/``, ``README.md`` and every other
``*.md`` at the repo root, plus the architecture-coverage rule.  Exits
non-zero listing each broken reference as ``file:line: target``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — markdown inline links, tolerating titles.
_INLINE_LINK = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")

#: Repo-relative file paths mentioned in prose or code spans:
#: ``docs/x.md``, ``examples/y.py``, ``benchmarks/z.py``, ``tools/w.py``,
#: ``src/repro/...py`` and root-level ``UPPERCASE.md`` files.
_PATH_MENTION = re.compile(
    r"\b((?:docs|examples|benchmarks|tools|tests|src)/[\w./-]+\.(?:md|py)"
    r"|[A-Z][A-Z_]+\.md)\b"
)

_SKIP_SCHEMES = ("http://", "https://", "mailto:")


def default_targets() -> "List[Path]":
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files += sorted(REPO_ROOT.glob("*.md"))
    return files


def expand(arguments: "Iterable[str]") -> "List[Path]":
    files: "List[Path]" = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: Path) -> "List[Tuple[int, str]]":
    """Broken references in ``path`` as ``(line_number, target)`` pairs."""
    broken: "List[Tuple[int, str]]" = []
    for line_number, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        for match in _INLINE_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((line_number, target))
        for match in _PATH_MENTION.finditer(line):
            target = match.group(1)
            if not (REPO_ROOT / target).exists():
                broken.append((line_number, target))
    return broken


def repro_subpackages(
    src_root: "Path | None" = None,
) -> "List[str]":
    """Names of every ``src/repro/*`` subpackage (dirs with __init__.py)."""
    root = (src_root or REPO_ROOT / "src") / "repro"
    return sorted(
        child.name
        for child in root.iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    )


def check_architecture_coverage(
    architecture_md: "Path | None" = None,
    src_root: "Path | None" = None,
) -> "List[str]":
    """Subpackages *not* mentioned as ``repro.<name>`` in architecture.md.

    The architecture overview is the map of the system; a layer that is
    not on the map is undocumented.  Returns the missing names.
    """
    doc = architecture_md or REPO_ROOT / "docs" / "architecture.md"
    text = doc.read_text() if doc.exists() else ""
    return [
        name
        for name in repro_subpackages(src_root)
        if f"repro.{name}" not in text
    ]


def main(argv: "List[str] | None" = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    files = expand(arguments) if arguments else default_targets()
    failures = 0
    if not arguments:
        for name in check_architecture_coverage():
            print(
                f"docs/architecture.md: subpackage repro.{name}"
                f" is not mentioned",
                file=sys.stderr,
            )
            failures += 1
    for path in files:
        if not path.exists():
            print(f"{path}: file not found", file=sys.stderr)
            failures += 1
            continue
        for line_number, target in check_file(path):
            print(f"{path}:{line_number}: broken reference: {target}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken doc reference(s)", file=sys.stderr)
        return 1
    checked = len(files)
    print(f"doc links OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
