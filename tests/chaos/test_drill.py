"""End-to-end failure drills (`repro.chaos.drill`).

Each drill runs concurrent clients through a real
:class:`~repro.serve.QueryService` over a really-faulted sharded fleet
and verifies the resilience contract on every response; these tests
assert the drill itself verifies, accounts and tears down correctly.
"""

import pytest

from repro.chaos import FaultPlan, PageFaults, ShardFaults, run_drill
from repro.data import uniform_points
from repro.shard import ResilienceConfig, ShardConfig, ShardedNNCellIndex

N_QUERIES = 40
N_THREADS = 2


@pytest.fixture()
def sharded():
    points = uniform_points(48, 3, seed=31)
    index = ShardedNNCellIndex.build(points, ShardConfig(n_shards=4))
    yield index
    index.set_resilience(None)
    index.close()


class TestDrillValidation:
    def test_rejects_bad_sizes(self, sharded):
        with pytest.raises(ValueError):
            run_drill(sharded, FaultPlan(), n_queries=0)
        with pytest.raises(ValueError):
            run_drill(sharded, FaultPlan(), n_threads=0)


class TestHealthyDrill:
    def test_no_faults_all_ok_bit_identical(self, sharded):
        report = run_drill(
            sharded, FaultPlan(), n_queries=N_QUERIES,
            n_threads=N_THREADS,
        )
        assert report.passed
        assert report.outcomes == {"ok": N_QUERIES}
        assert report.injected == {}
        assert report.faulted_shards == []


class TestFaultedDrills:
    def test_dead_shard_with_partial_degrades_every_answer(self, sharded):
        sharded.set_resilience(ResilienceConfig(
            max_retries=1, backoff_base_ms=0.1, allow_partial=True,
        ))
        plan = FaultPlan(shards={2: ShardFaults(fail_p=1.0)})
        report = run_drill(
            sharded, plan, n_queries=N_QUERIES, n_threads=N_THREADS,
        )
        assert report.passed
        assert report.degraded > 0
        assert report.outcomes.get("ok", 0) + report.degraded == N_QUERIES
        assert report.faulted_shards == [2]
        assert report.injected.get("shard2.fail", 0) > 0
        assert report.counters.get("serve.degraded_answers", 0) > 0
        assert report.counters.get("shard.retry", 0) > 0

    def test_dead_shard_without_partial_falls_back_complete(self, sharded):
        # Completeness required: the batch and serial rungs both die on
        # the dead shard, the scan rung answers exactly — the drill must
        # see bit-identical answers, not errors.
        sharded.set_resilience(ResilienceConfig(
            max_retries=0, backoff_base_ms=0.1,
        ))
        plan = FaultPlan(shards={1: ShardFaults(fail_p=1.0)})
        report = run_drill(
            sharded, plan, n_queries=N_QUERIES, n_threads=N_THREADS,
        )
        assert report.passed
        assert report.outcomes.get("ok") == N_QUERIES
        assert report.counters.get('serve.fallback{stage="scan"}', 0) > 0

    def test_transient_faults_stay_invisible(self, sharded):
        sharded.set_resilience(ResilienceConfig(
            max_retries=2, backoff_base_ms=0.1,
        ))
        plan = FaultPlan(shards={
            0: ShardFaults(fail_first=2),
            3: ShardFaults(fail_first=1),
        })
        report = run_drill(
            sharded, plan, n_queries=N_QUERIES, n_threads=N_THREADS,
        )
        assert report.passed
        assert report.outcomes.get("ok") == N_QUERIES
        assert report.degraded == 0

    def test_flaky_pages_retry_to_exactness(self, sharded):
        plan = FaultPlan(pages=PageFaults(flaky_p=0.02), seed=5)
        report = run_drill(
            sharded, plan, n_queries=N_QUERIES, n_threads=N_THREADS,
        )
        assert report.passed
        assert report.outcomes.get("ok") == N_QUERIES
        if report.injected.get("flaky_page"):
            assert report.counters.get("storage.flaky_reads", 0) > 0

    def test_report_as_dict_round_trips(self, sharded):
        report = run_drill(
            sharded, FaultPlan(), n_queries=8, n_threads=1,
        )
        document = report.as_dict()
        assert document["passed"] is True
        assert document["n_queries"] == 8
        assert set(document) >= {
            "outcomes", "injected", "counters", "faulted_shards",
            "mismatches", "unaccounted_degraded", "untyped_errors",
        }
