"""Invariants of the modelled-clock scatter simulation (`repro.chaos.model`).

``benchmarks/bench_chaos.py`` publishes these numbers and CI gates on
them, so the model's ordering properties — and the >= 3x hedged-vs-none
p99 improvement on the default workload — are asserted here first.
"""

import pytest

from repro.chaos import ScatterModel, percentile, simulate

N = 4000  # queries per simulated policy; enough for a stable p99


@pytest.fixture(scope="module")
def runs():
    model = ScatterModel()
    return {
        policy: simulate(model, policy, n_queries=N, seed=7)
        for policy in ("none", "timeout", "hedge", "partial")
    }


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == pytest.approx(2.5)

    def test_empty_and_bounds(self):
        assert percentile([], 99.0) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestValidation:
    def test_model_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ScatterModel(n_shards=0)
        with pytest.raises(ValueError):
            ScatterModel(slow_p=1.5)
        with pytest.raises(ValueError):
            ScatterModel(timeout_ms=0.0)
        with pytest.raises(ValueError):
            ScatterModel(max_retries=-1)

    def test_simulate_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate(ScatterModel(), "prayer")
        with pytest.raises(ValueError):
            simulate(ScatterModel(), "none", n_queries=0)


class TestDeterminism:
    def test_same_seed_reproduces(self):
        model = ScatterModel()
        a = simulate(model, "hedge", n_queries=500, seed=3)
        b = simulate(model, "hedge", n_queries=500, seed=3)
        assert a.latencies_ms == b.latencies_ms
        assert a.summary() == b.summary()

    def test_no_faults_means_flat_base_latency(self):
        model = ScatterModel(slow_p=0.0)
        for policy in ("none", "timeout", "hedge", "partial"):
            result = simulate(model, policy, n_queries=100, seed=0)
            assert all(
                lat == pytest.approx(model.base_ms)
                for lat in result.latencies_ms
            )
            # Hedges still launch (base_ms > hedge_after_ms) but nothing
            # needs rescuing: no retries, timeouts or degradation.
            assert result.retries == result.timeouts == 0
            assert result.degraded == 0


class TestPolicyOrdering:
    """The mitigations must actually mitigate, in the expected order."""

    def test_unmitigated_p99_hits_the_slow_shard(self, runs):
        # With slow_p=0.15 the slow shard spikes well above the 99th
        # percentile's threshold, so unmitigated p99 is the full spike.
        assert runs["none"].p(99.0) == pytest.approx(
            ScatterModel().slow_ms
        )

    def test_each_mitigation_tier_improves_p99(self, runs):
        p99 = {name: run.p(99.0) for name, run in runs.items()}
        assert p99["timeout"] < p99["none"]
        assert p99["hedge"] < p99["timeout"]
        assert p99["partial"] <= p99["hedge"]

    def test_hedged_p99_improves_at_least_3x(self, runs):
        """The acceptance gate BENCH_chaos.json is built on."""
        ratio = runs["none"].p(99.0) / runs["hedge"].p(99.0)
        assert ratio >= 3.0

    def test_mitigated_runs_account_their_work(self, runs):
        assert runs["timeout"].timeouts > 0
        assert runs["timeout"].retries > 0
        assert runs["hedge"].hedges > 0
        # Hedging wins races that retrying would have to grind through.
        assert runs["hedge"].timeouts < runs["timeout"].timeouts

    def test_partial_caps_latency_at_deadline_and_accounts(self, runs):
        model = ScatterModel()
        result = runs["partial"]
        assert max(result.latencies_ms) <= model.deadline_ms + 1e-9
        capped = sum(
            1 for lat in result.latencies_ms
            if lat == pytest.approx(model.deadline_ms)
        )
        assert result.degraded <= capped
        summary = result.summary()
        assert summary["degraded_rate"] == pytest.approx(
            result.degraded / result.n_queries
        )

    def test_exhausted_shard_contributes_spent_time(self):
        # Every attempt spikes and every spike times out: completion is
        # the sum of timeouts and backoffs, never the raw spike latency.
        model = ScatterModel(slow_p=1.0, max_retries=1)
        result = simulate(model, "timeout", n_queries=50, seed=0)
        expected = (
            2 * model.timeout_ms + model.backoff_base_ms
        )
        assert all(
            lat == pytest.approx(expected) for lat in result.latencies_ms
        )
