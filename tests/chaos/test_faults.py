"""Unit tests for the fault-injection primitives (`repro.chaos.faults`).

The injector's whole value is *reproducibility*: same plan + same seed
must make the same decisions, and the deterministic ``*_first``
counters must fire regardless of RNG draws.  These tests pin that down,
plus validation, counting, and stuck-probe release semantics.
"""

import threading

import pytest

from repro.chaos import (
    ChaosInjector,
    FaultPlan,
    FlakyPageRead,
    InjectedFault,
    PageFaults,
    ShardFaults,
    StuckProbe,
)


class TestValidation:
    def test_probabilities_bounded(self):
        for kwargs in (
            {"slow_p": -0.1}, {"slow_p": 1.1},
            {"fail_p": 2.0}, {"stuck_p": -1.0},
        ):
            with pytest.raises(ValueError):
                ShardFaults(**kwargs)

    def test_counters_and_durations_nonnegative(self):
        with pytest.raises(ValueError):
            ShardFaults(slow_ms=-1.0)
        with pytest.raises(ValueError):
            ShardFaults(fail_first=-1)
        with pytest.raises(ValueError):
            ShardFaults(stuck_first=-2)
        with pytest.raises(ValueError):
            ShardFaults(stuck_ms=-0.5)
        with pytest.raises(ValueError):
            PageFaults(flaky_p=1.5)
        with pytest.raises(ValueError):
            PageFaults(flaky_first=-1)

    def test_any_active(self):
        assert not ShardFaults().any_active
        assert ShardFaults(fail_first=1).any_active
        assert ShardFaults(slow_p=0.1, slow_ms=5.0).any_active
        assert not PageFaults().any_active
        assert PageFaults(flaky_p=0.5).any_active

    def test_faults_of_falls_back_to_default(self):
        plan = FaultPlan(
            shards={1: ShardFaults(fail_p=1.0)},
            default=ShardFaults(slow_p=0.5, slow_ms=1.0),
        )
        assert plan.faults_of(1).fail_p == 1.0
        assert plan.faults_of(0).slow_p == 0.5


class TestDeterministicCounters:
    def test_fail_first_fires_exactly_n_times(self):
        plan = FaultPlan(shards={0: ShardFaults(fail_first=3)})
        injector = ChaosInjector(plan)
        for __ in range(3):
            with pytest.raises(InjectedFault):
                injector.before_probe(0)
        # Fourth and later probes behave.
        injector.before_probe(0)
        injector.before_probe(0)
        assert injector.total("fail") == 3
        assert injector.counts()["shard0.fail"] == 3

    def test_fail_first_is_per_shard(self):
        plan = FaultPlan(shards={
            0: ShardFaults(fail_first=1),
            1: ShardFaults(fail_first=2),
        })
        injector = ChaosInjector(plan)
        with pytest.raises(InjectedFault):
            injector.before_probe(0)
        injector.before_probe(0)  # shard 0 spent its budget
        with pytest.raises(InjectedFault):
            injector.before_probe(1)
        with pytest.raises(InjectedFault):
            injector.before_probe(1)
        injector.before_probe(1)
        assert injector.counts() == {
            "fail": 3, "shard0.fail": 1, "shard1.fail": 2,
        }

    def test_flaky_first_counts_down_then_behaves(self):
        plan = FaultPlan(pages=PageFaults(flaky_first=2))
        injector = ChaosInjector(plan)
        with pytest.raises(FlakyPageRead):
            injector.page_read(7)
        with pytest.raises(FlakyPageRead):
            injector.page_read(8)
        injector.page_read(9)
        assert injector.total("flaky_page") == 2

    def test_healthy_shard_pays_nothing(self):
        injector = ChaosInjector(FaultPlan())
        for shard in range(8):
            injector.before_probe(shard)
        injector.page_read(0)
        assert injector.counts() == {}


class TestSeededReproducibility:
    def _decisions(self, seed, n=200):
        plan = FaultPlan(
            shards={0: ShardFaults(fail_p=0.3)}, seed=seed,
        )
        injector = ChaosInjector(plan)
        outcome = []
        for __ in range(n):
            try:
                injector.before_probe(0)
                outcome.append(0)
            except InjectedFault:
                outcome.append(1)
        return outcome, injector.counts()

    def test_same_seed_same_decisions(self):
        a, counts_a = self._decisions(seed=42)
        b, counts_b = self._decisions(seed=42)
        assert a == b
        assert counts_a == counts_b
        assert 0 < sum(a) < len(a)  # the mix actually mixes

    def test_different_seed_different_decisions(self):
        a, __ = self._decisions(seed=1)
        b, __ = self._decisions(seed=2)
        assert a != b


class TestStuckProbes:
    def test_stuck_ms_elapses_like_slow_probe(self):
        plan = FaultPlan(
            shards={0: ShardFaults(stuck_first=1, stuck_ms=10.0)},
        )
        injector = ChaosInjector(plan)
        injector.before_probe(0)  # blocks ~10 ms, then returns normally
        assert injector.total("stuck") == 1

    def test_release_unwinds_blocked_probe_with_typed_error(self):
        plan = FaultPlan(
            shards={0: ShardFaults(stuck_first=1, stuck_ms=None)},
        )
        injector = ChaosInjector(plan)
        errors = []
        started = threading.Event()

        def probe():
            started.set()
            try:
                injector.before_probe(0)
            except BaseException as err:  # noqa: BLE001 - recorded below
                errors.append(err)

        thread = threading.Thread(target=probe)
        thread.start()
        assert started.wait(1.0)
        injector.release()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert len(errors) == 1
        assert isinstance(errors[0], StuckProbe)

    def test_release_is_idempotent(self):
        injector = ChaosInjector(FaultPlan())
        injector.release()
        injector.release()

    def test_context_manager_releases(self):
        plan = FaultPlan(
            shards={0: ShardFaults(stuck_first=1, stuck_ms=None)},
        )
        done = threading.Event()
        with ChaosInjector(plan) as injector:
            def probe():
                with pytest.raises(StuckProbe):
                    injector.before_probe(0)
                done.set()

            thread = threading.Thread(target=probe)
            thread.start()
        assert done.wait(2.0)


class TestTypedErrors:
    def test_fault_hierarchy(self):
        assert issubclass(FlakyPageRead, InjectedFault)
        assert issubclass(StuckProbe, InjectedFault)
        assert InjectedFault.code == "injected_fault"
        assert FlakyPageRead.code == "flaky_page_read"
        assert StuckProbe.code == "stuck_probe"
