"""Unit tests for the tail-tolerant gather (`repro.shard.resilience`)
and its integration into :class:`ShardedNNCellIndex`.

The gather loop is exercised directly with scripted probes (so each
mitigation can be triggered on demand), then end-to-end through the
sharded index with a seeded :class:`ChaosInjector`.
"""

import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.chaos import ChaosInjector, FaultPlan, ShardFaults
from repro.core.nncell_index import NNCellIndex
from repro.data import uniform_points
from repro.obs import metrics
from repro.shard import (
    AllShardsFailed,
    ResilienceConfig,
    ScatterReport,
    ShardConfig,
    ShardedNNCellIndex,
    ShardProbeError,
)
from repro.shard.resilience import complete_report, resilient_gather


class ScriptedProbes:
    """A ``submit`` factory whose attempts follow per-shard scripts.

    Script entries: ``"ok"`` (succeed), ``"fail"`` (raise), or a float
    (sleep that many seconds, then succeed).  An exhausted script
    defaults to ``"ok"``.
    """

    def __init__(self, pool, scripts):
        self.pool = pool
        self.scripts = {s: list(seq) for s, seq in scripts.items()}
        self.submits = Counter()
        self.deliveries = Counter()
        self._lock = threading.Lock()

    def submit(self, shard):
        with self._lock:
            self.submits[shard] += 1
            script = self.scripts.get(shard)
            action = script.pop(0) if script else "ok"
        return self.pool.submit(self._attempt, shard, action)

    def _attempt(self, shard, action):
        if isinstance(action, float):
            time.sleep(action)
        elif action == "fail":
            raise RuntimeError(f"scripted failure on shard {shard}")
        with self._lock:
            self.deliveries[shard] += 1
        return f"answer-{shard}"


@pytest.fixture()
def pool():
    with ThreadPoolExecutor(max_workers=8) as executor:
        yield executor


def gather(pool, scripts, config, shard_ids=None):
    probes = ScriptedProbes(pool, scripts)
    ids = list(scripts) if shard_ids is None else shard_ids
    results, report = resilient_gather(ids, probes.submit, config)
    return probes, results, report


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(probe_timeout_ms=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_base_ms=-1.0)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(hedge_after_ms=-3.0)

    def test_backoff_schedule_is_exponential(self):
        config = ResilienceConfig(backoff_base_ms=2.0, backoff_factor=3.0)
        assert config.backoff_s(2) == pytest.approx(0.002)  # first retry
        assert config.backoff_s(3) == pytest.approx(0.006)
        assert config.backoff_s(4) == pytest.approx(0.018)

    def test_complete_report(self):
        report = complete_report([2, 0, 1])
        assert report == ScatterReport(n_shards=3, answered=(0, 1, 2))
        assert not report.degraded
        assert report.shards_answered == 3
        assert report.failed_shards == ()


class TestGatherHappyPath:
    def test_all_answer_in_shard_order(self, pool):
        __, results, report = gather(
            pool, {2: ["ok"], 0: ["ok"], 1: ["ok"]}, ResilienceConfig(),
        )
        assert results == [
            (0, "answer-0"), (1, "answer-1"), (2, "answer-2"),
        ]
        assert report.answered == (0, 1, 2)
        assert not report.degraded
        assert report.retries == report.hedges == report.timeouts == 0

    def test_each_shard_delivers_exactly_once(self, pool):
        probes, results, __ = gather(
            pool, {s: ["ok"] for s in range(4)}, ResilienceConfig(),
        )
        shards = [s for s, __ in results]
        assert shards == sorted(set(shards))
        assert probes.submits == Counter({0: 1, 1: 1, 2: 1, 3: 1})


class TestRetries:
    def test_transient_failures_are_retried_to_success(self, pool):
        config = ResilienceConfig(max_retries=2, backoff_base_ms=0.1)
        probes, results, report = gather(
            pool, {0: ["fail", "fail", "ok"], 1: ["ok"]}, config,
        )
        assert dict(results) == {0: "answer-0", 1: "answer-1"}
        assert report.retries == 2
        assert not report.degraded
        assert probes.submits[0] == 3

    def test_exhausted_retries_raise_typed_error(self, pool):
        config = ResilienceConfig(max_retries=1, backoff_base_ms=0.1)
        with pytest.raises(ShardProbeError) as excinfo:
            gather(pool, {0: ["fail"] * 2, 1: ["ok"]}, config)
        assert excinfo.value.code == "shard_probe_failed"
        assert excinfo.value.failed_shards == (0,)

    def test_allow_partial_records_casualty_and_answers(self, pool):
        config = ResilienceConfig(
            max_retries=1, backoff_base_ms=0.1, allow_partial=True,
        )
        __, results, report = gather(
            pool, {0: ["fail"] * 2, 1: ["ok"], 2: ["ok"]}, config,
        )
        assert dict(results) == {1: "answer-1", 2: "answer-2"}
        assert report.degraded
        assert report.failed == ((0, "error"),)
        assert report.failed_shards == (0,)
        assert report.shards_answered == 2

    def test_every_shard_dead_raises_even_with_allow_partial(self, pool):
        config = ResilienceConfig(
            max_retries=0, backoff_base_ms=0.1, allow_partial=True,
        )
        with pytest.raises(AllShardsFailed) as excinfo:
            gather(pool, {0: ["fail"], 1: ["fail"]}, config)
        assert excinfo.value.code == "all_shards_failed"


class TestTimeouts:
    def test_slow_probe_times_out_into_degraded_answer(self, pool):
        config = ResilienceConfig(
            probe_timeout_ms=40.0, max_retries=0, allow_partial=True,
        )
        __, results, report = gather(
            pool, {0: [0.5], 1: ["ok"]}, config,
        )
        assert dict(results) == {1: "answer-1"}
        assert report.failed == ((0, "timeout"),)
        assert report.timeouts == 1

    def test_timeout_then_retry_recovers(self, pool):
        config = ResilienceConfig(
            probe_timeout_ms=40.0, max_retries=1, backoff_base_ms=0.1,
        )
        started = time.monotonic()
        __, results, report = gather(pool, {0: [0.5, "ok"]}, config)
        elapsed = time.monotonic() - started
        assert dict(results) == {0: "answer-0"}
        assert report.timeouts == 1
        assert report.retries == 1
        assert elapsed < 0.45  # recovered without sitting out the sleep


class TestHedging:
    def test_hedge_wins_the_race_against_a_straggler(self, pool):
        config = ResilienceConfig(hedge_after_ms=25.0)
        started = time.monotonic()
        probes, results, report = gather(
            pool, {0: [0.6, "ok"], 1: ["ok"]}, config,
        )
        elapsed = time.monotonic() - started
        assert dict(results) == {0: "answer-0", 1: "answer-1"}
        assert report.hedges == 1
        assert probes.submits[0] == 2
        assert elapsed < 0.5  # did not wait for the 0.6 s straggler

    def test_hedged_shard_still_resolves_exactly_once(self, pool):
        config = ResilienceConfig(hedge_after_ms=10.0)
        __, results, __ = gather(
            pool, {0: [0.2, 0.05], 1: ["ok"]}, config,
        )
        assert [s for s, __ in results] == [0, 1]

    def test_hedge_survives_one_twin_failing(self, pool):
        # First attempt raises *after* the hedge launches; the hedge's
        # answer must still resolve the shard (no premature failure).
        config = ResilienceConfig(hedge_after_ms=10.0, max_retries=0)
        __, results, report = gather(
            pool, {0: [0.3, 0.05]}, config,
        )
        assert dict(results) == {0: "answer-0"}
        assert report.hedges == 1


class TestShardedIndexIntegration:
    @pytest.fixture(scope="class")
    def points(self):
        return uniform_points(60, 3, seed=11)

    @pytest.fixture(scope="class")
    def truth(self, points):
        return NNCellIndex.build(points)

    @pytest.fixture()
    def sharded(self, points):
        index = ShardedNNCellIndex.build(points, ShardConfig(n_shards=4))
        yield index
        index.set_chaos(None)
        index.close()

    def test_set_resilience_rejects_wrong_type(self, sharded):
        with pytest.raises(TypeError):
            sharded.set_resilience({"max_retries": 1})

    def test_resilience_off_by_default(self, sharded):
        assert sharded.resilience is None

    def test_clean_resilient_gather_is_bit_identical(self, sharded, truth):
        sharded.set_resilience(ResilienceConfig(probe_timeout_ms=5000.0))
        queries = uniform_points(10, 3, seed=12)
        for q in queries:
            pid, dist, info = sharded.nearest(q)
            tid, tdist, __ = truth.nearest(q)
            assert (pid, dist) == (tid, tdist)
            assert not info.degraded
            assert info.shards_answered == 4

    def test_transient_faults_cost_latency_never_correctness(
        self, sharded, truth
    ):
        sharded.set_resilience(
            ResilienceConfig(max_retries=2, backoff_base_ms=0.1)
        )
        plan = FaultPlan(shards={
            s: ShardFaults(fail_first=2) for s in range(4)
        })
        sharded.set_chaos(ChaosInjector(plan))
        pid, dist, info = sharded.nearest([0.4, 0.6, 0.5])
        tid, tdist, __ = truth.nearest([0.4, 0.6, 0.5])
        assert (pid, dist) == (tid, tdist)
        assert not info.degraded

    def test_dead_shard_with_allow_partial_degrades_explicitly(
        self, sharded
    ):
        sharded.set_resilience(ResilienceConfig(
            max_retries=1, backoff_base_ms=0.1, allow_partial=True,
        ))
        sharded.set_chaos(ChaosInjector(
            FaultPlan(shards={2: ShardFaults(fail_p=1.0)})
        ))
        with metrics.collecting(fresh=True) as registry:
            __, __, info = sharded.nearest([0.5, 0.5, 0.5])
            ids, dists, kinfo = sharded.k_nearest([0.5, 0.5, 0.5], 3)
            explain = sharded.explain([0.5, 0.5, 0.5])
        snapshot = registry.snapshot()
        for view in (info, kinfo):
            assert view.degraded
            assert view.failed_shards == (2,)
            assert view.shards_answered == 3
        assert explain.degraded
        assert explain.failed_shards == (2,)
        assert explain.as_dict()["failed_shards"] == [2]
        assert snapshot.get("shard.degraded", 0) >= 3
        assert metrics.sum_labeled(snapshot, "shard.retry") >= 3

    def test_dead_shard_without_allow_partial_raises_typed(self, sharded):
        sharded.set_resilience(ResilienceConfig(
            max_retries=0, backoff_base_ms=0.1,
        ))
        sharded.set_chaos(ChaosInjector(
            FaultPlan(shards={1: ShardFaults(fail_p=1.0)})
        ))
        with pytest.raises(ShardProbeError) as excinfo:
            sharded.nearest([0.5, 0.5, 0.5])
        assert excinfo.value.failed_shards == (1,)

    def test_stuck_probe_timeout_retry_recovers_exactly(
        self, sharded, truth
    ):
        sharded.set_resilience(ResilienceConfig(
            probe_timeout_ms=50.0, max_retries=1, backoff_base_ms=0.1,
        ))
        injector = ChaosInjector(FaultPlan(
            shards={0: ShardFaults(stuck_first=1, stuck_ms=None)}
        ))
        sharded.set_chaos(injector)
        try:
            with metrics.collecting(fresh=True) as registry:
                pid, dist, info = sharded.nearest([0.3, 0.3, 0.3])
            tid, tdist, __ = truth.nearest([0.3, 0.3, 0.3])
            assert (pid, dist) == (tid, tdist)
            assert not info.degraded
            assert metrics.sum_labeled(
                registry.snapshot(), "shard.timeout"
            ) >= 1
        finally:
            injector.release()

    def test_query_batch_carries_degradation(self, sharded, truth):
        sharded.set_resilience(ResilienceConfig(
            max_retries=0, backoff_base_ms=0.1, allow_partial=True,
        ))
        sharded.set_chaos(ChaosInjector(
            FaultPlan(shards={3: ShardFaults(fail_p=1.0)})
        ))
        queries = uniform_points(6, 3, seed=13)
        ids, dists, info = sharded.query_batch(queries)
        assert info.degraded
        assert info.failed_shards == (3,)
        assert info.shards_answered == 3

    def test_removing_chaos_and_resilience_restores_exactness(
        self, sharded, truth
    ):
        sharded.set_resilience(ResilienceConfig(allow_partial=True))
        sharded.set_chaos(ChaosInjector(
            FaultPlan(shards={0: ShardFaults(fail_p=1.0)})
        ))
        sharded.set_chaos(None)
        sharded.set_resilience(None)
        assert sharded.resilience is None
        q = [0.7, 0.2, 0.9]
        pid, dist, info = sharded.nearest(q)
        tid, tdist, __ = truth.nearest(q)
        assert (pid, dist) == (tid, tdist)
        assert not info.degraded
