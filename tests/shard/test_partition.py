"""Unit tests for the point-to-shard routing policies."""

import numpy as np
import pytest

from repro.data import uniform_points
from repro.shard import (
    HashPartitioner,
    HilbertRangePartitioner,
    make_partitioner,
    partitioner_from_manifest,
)


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        part = HashPartitioner(5)
        points = uniform_points(50, 4, seed=1)
        shards = part.shard_of_batch(points)
        assert shards.shape == (50,)
        assert np.all((0 <= shards) & (shards < 5))
        again = part.shard_of_batch(points)
        assert np.array_equal(shards, again)

    def test_scalar_matches_batch(self):
        part = HashPartitioner(3)
        points = uniform_points(20, 3, seed=2)
        batch = part.shard_of_batch(points)
        for i in range(20):
            assert part.shard_of(points[i]) == batch[i]

    def test_statistically_balanced(self):
        part = HashPartitioner(4)
        shards = part.shard_of_batch(uniform_points(400, 6, seed=3))
        counts = np.bincount(shards, minlength=4)
        assert counts.min() > 0
        assert counts.max() < 2.0 * (400 / 4)

    def test_manifest_roundtrip(self):
        part = HashPartitioner(7)
        back = partitioner_from_manifest(part.to_manifest())
        points = uniform_points(15, 2, seed=4)
        assert np.array_equal(
            part.shard_of_batch(points), back.shard_of_batch(points)
        )

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestHilbertRangePartitioner:
    def test_fit_balances_the_build_set(self):
        points = uniform_points(120, 3, seed=5)
        part = HilbertRangePartitioner.fit(points, 4)
        counts = np.bincount(part.shard_of_batch(points), minlength=4)
        # Contiguous key ranges over a sorted build set: near-equal runs
        # (duplicated keys may shift a boundary by a few points).
        assert counts.min() >= 20
        assert counts.max() <= 40

    def test_scalar_matches_batch(self):
        points = uniform_points(30, 2, seed=6)
        part = HilbertRangePartitioner.fit(points, 3)
        batch = part.shard_of_batch(points)
        for i in range(30):
            assert part.shard_of(points[i]) == batch[i]

    def test_routing_is_spatially_contiguous_in_key_space(self):
        points = uniform_points(60, 2, seed=7)
        part = HilbertRangePartitioner.fit(points, 3)
        from repro.index.hilbert import hilbert_indices

        keys = hilbert_indices(points, bits=part.bits)
        shards = part.shard_of_batch(points)
        order = np.argsort(keys, kind="stable")
        # Walking points in key order, the shard number never decreases.
        assert np.all(np.diff(shards[order]) >= 0)

    def test_identical_points_share_a_shard(self):
        points = np.vstack([np.full((10, 2), 0.5), uniform_points(10, 2, seed=8)])
        part = HilbertRangePartitioner.fit(points, 4)
        dupes = part.shard_of_batch(np.full((10, 2), 0.5))
        assert np.unique(dupes).size == 1

    def test_bits_clamped_to_key_budget(self):
        points = uniform_points(10, 16, seed=9)
        part = HilbertRangePartitioner.fit(points, 2, bits=10)
        assert part.bits * 16 <= 62

    def test_manifest_roundtrip(self):
        points = uniform_points(40, 3, seed=10)
        part = HilbertRangePartitioner.fit(points, 5)
        back = partitioner_from_manifest(part.to_manifest())
        assert back.bits == part.bits
        assert np.array_equal(back.uppers, part.uppers)
        assert np.array_equal(
            part.shard_of_batch(points), back.shard_of_batch(points)
        )

    def test_validates_uppers(self):
        with pytest.raises(ValueError):
            HilbertRangePartitioner(3, np.array([5, 2]), bits=4)
        with pytest.raises(ValueError):
            HilbertRangePartitioner(3, np.array([1]), bits=4)


class TestFactories:
    def test_make_partitioner_kinds(self):
        points = uniform_points(20, 2, seed=11)
        assert make_partitioner("hash", 3, points).kind == "hash"
        assert make_partitioner("hilbert", 3, points).kind == "hilbert"

    def test_make_partitioner_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("range", 3, uniform_points(5, 2, seed=12))

    def test_manifest_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="manifest"):
            partitioner_from_manifest({"kind": "mystery"})
