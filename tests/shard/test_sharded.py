"""Unit tests for :class:`ShardedNNCellIndex` beyond the parity suite.

The property suite (test_shard_parity.py) proves the exactness
contract; these tests pin down the edges — validation errors, empty
shards, shard teardown/lazy rebuild, persistence, and the serving stack
running unmodified over a sharded backend.
"""

import numpy as np
import pytest

from repro.core.nncell_index import NNCellIndex
from repro.core.persistence import (
    is_sharded_archive,
    load_any_index,
    load_index,
    load_sharded_index,
    save_index,
    save_sharded_index,
)
from repro.data import uniform_points
from repro.serve import QueryService, ServeConfig
from repro.shard import ShardConfig, ShardedNNCellIndex


@pytest.fixture(scope="module")
def points():
    return uniform_points(48, 3, seed=77)


@pytest.fixture(scope="module")
def sharded(points):
    return ShardedNNCellIndex.build(points, ShardConfig(n_shards=4))


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ShardConfig(n_shards=0)
        with pytest.raises(ValueError):
            ShardConfig(partitioner="range")
        with pytest.raises(ValueError):
            ShardConfig(hilbert_bits=0)
        with pytest.raises(ValueError):
            ShardConfig(build_workers=-1)
        with pytest.raises(ValueError):
            ShardConfig(query_workers=-2)

    def test_build_rejects_empty_points(self):
        with pytest.raises(ValueError):
            ShardedNNCellIndex.build(np.empty((0, 3)))

    def test_wrong_dim_query_rejected(self, sharded):
        with pytest.raises(ValueError):
            sharded.nearest([0.5, 0.5])
        with pytest.raises(ValueError):
            sharded.k_nearest([0.5, 0.5], 2)
        with pytest.raises(ValueError):
            sharded.query_batch(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            sharded.explain([0.5, 0.5])

    def test_k_must_be_positive(self, sharded):
        with pytest.raises(ValueError):
            sharded.k_nearest([0.5, 0.5, 0.5], 0)

    def test_insert_rejects_bad_points(self, points):
        index = ShardedNNCellIndex.build(points, ShardConfig(n_shards=2))
        with pytest.raises(ValueError):
            index.insert([0.5, 0.5])  # wrong dimensionality
        with pytest.raises(ValueError):
            index.insert([2.0, 0.5, 0.5])  # outside the data space

    def test_delete_rejects_unknown_and_last(self):
        index = ShardedNNCellIndex.build(
            uniform_points(3, 2, seed=1), ShardConfig(n_shards=2)
        )
        with pytest.raises(KeyError):
            index.delete(99)
        index.delete(0)
        with pytest.raises(KeyError):
            index.delete(0)  # already gone
        index.delete(1)
        with pytest.raises(ValueError):
            index.delete(2)  # the last remaining point


class TestShardLifecycle:
    def test_more_shards_than_points_leaves_empty_shards(self):
        index = ShardedNNCellIndex.build(
            uniform_points(3, 2, seed=5), ShardConfig(n_shards=8)
        )
        assert sum(1 for n in index.shard_sizes() if n) <= 3
        flat = NNCellIndex.build(index.points)
        q = np.array([0.3, 0.7])
        assert index.nearest(q)[:2] == flat.nearest(q)[:2]

    def test_teardown_and_lazy_rebuild(self):
        pts = uniform_points(6, 2, seed=9)
        index = ShardedNNCellIndex.build(pts, ShardConfig(n_shards=3))
        # Empty one shard completely.
        victim_shard = index._shard_of[0]
        victims = [
            g for g in range(6) if index._shard_of[g] == victim_shard
        ]
        for g in victims:
            index.delete(g)
        assert index.shard_sizes()[victim_shard] == 0
        # Queries still work with the shard torn down.
        flat = NNCellIndex.build(pts)
        for g in victims:
            flat.delete(g)
        q = np.array([0.4, 0.6])
        assert index.nearest(q)[:2] == flat.nearest(q)[:2]
        # An insert routing into the dead shard rebuilds it lazily.
        rng = np.random.default_rng(3)
        for __ in range(50):
            p = rng.uniform(size=2)
            if index.partitioner.shard_of(p) == victim_shard:
                gid = index.insert(p)
                fid = flat.insert(p)
                assert gid == fid
                assert index.shard_sizes()[victim_shard] == 1
                assert index.nearest(p)[:2] == flat.nearest(p)[:2]
                break
        else:  # pragma: no cover - measure-zero with 50 draws
            pytest.skip("no draw routed to the torn-down shard")

    def test_len_active_ids_and_sizes(self, sharded, points):
        assert len(sharded) == points.shape[0]
        assert np.array_equal(sharded.active_ids, np.arange(48))
        assert sum(sharded.shard_sizes()) == 48
        assert sharded.n_shards == 4

    def test_stats_keys(self, sharded):
        stats = sharded.stats()
        for key in (
            "n_points",
            "n_shards",
            "shards_live",
            "n_rectangles",
            "expected_candidates",
            "cell_tree_height",
            "cell_tree_blocks",
        ):
            assert key in stats
        assert stats["n_points"] == 48.0
        assert stats["n_shards"] == 4.0

    def test_from_index_compacts_live_points(self, points):
        flat = NNCellIndex.build(points)
        flat.delete(0)
        resharded = ShardedNNCellIndex.from_index(
            flat, ShardConfig(n_shards=3)
        )
        assert len(resharded) == 47
        q = np.array([0.2, 0.9, 0.4])
        __, dist, __info = flat.nearest(q)
        assert resharded.nearest(q)[1] == dist

    def test_context_manager_closes_pool(self, points):
        with ShardedNNCellIndex.build(
            points, ShardConfig(n_shards=2)
        ) as index:
            index.query_batch(uniform_points(5, 3, seed=2))
            assert index._pool is not None
        assert index._pool is None


class TestExplain:
    def test_explain_agrees_with_nearest(self, sharded):
        q = np.array([0.31, 0.62, 0.18])
        gid, dist, __ = sharded.nearest(q)
        explain = sharded.explain(q)
        assert explain.nearest_id == gid
        assert explain.nearest_distance == dist
        # Candidate owners are global ids, sorted by (distance, id).
        dists = [d for __, d in explain.candidates]
        assert dists == sorted(dists)
        owners = {owner for owner, __ in explain.candidates}
        assert owners <= set(int(g) for g in sharded.active_ids)


class TestServeIntegration:
    def test_query_service_over_sharded_backend(self, points, sharded):
        flat = NNCellIndex.build(points)
        queries = uniform_points(20, 3, seed=13)
        with QueryService(
            sharded, ServeConfig(max_wait_ms=0.0)
        ) as service:
            for q in queries:
                result = service.submit(q)
                gid, dist, __ = flat.nearest(q)
                assert result.point_id == gid
                assert result.distance == dist


class TestPersistence:
    def test_roundtrip_preserves_answers(self, tmp_path, points, sharded):
        target = tmp_path / "fleet"
        save_sharded_index(sharded, target)
        assert is_sharded_archive(target)
        loaded = load_sharded_index(target)
        assert len(loaded) == len(sharded)
        assert loaded.shard_sizes() == sharded.shard_sizes()
        queries = uniform_points(15, 3, seed=21)
        exp = sharded.query_batch(queries)
        got = loaded.query_batch(queries)
        assert np.array_equal(got[0], exp[0])
        assert np.array_equal(got[1], exp[1])

    def test_roundtrip_preserves_dynamic_routing(self, tmp_path):
        pts = uniform_points(10, 2, seed=31)
        index = ShardedNNCellIndex.build(
            pts, ShardConfig(n_shards=3, partitioner="hilbert")
        )
        index.delete(2)
        save_sharded_index(index, tmp_path / "dyn")
        loaded = load_sharded_index(tmp_path / "dyn")
        flat = NNCellIndex.build(pts)
        flat.delete(2)
        # Post-reload inserts allocate the same ids and route identically.
        p = np.array([0.25, 0.75])
        assert loaded.insert(p) == flat.insert(p)
        q = np.array([0.3, 0.7])
        assert loaded.nearest(q)[:2] == flat.nearest(q)[:2]

    def test_load_any_index_dispatches(self, tmp_path, points, sharded):
        flat = NNCellIndex.build(points)
        save_index(flat, tmp_path / "flat.npz")
        save_sharded_index(sharded, tmp_path / "fleet")
        assert isinstance(
            load_any_index(tmp_path / "flat.npz"), NNCellIndex
        )
        assert isinstance(
            load_any_index(tmp_path / "fleet"), ShardedNNCellIndex
        )

    def test_load_errors(self, tmp_path, sharded):
        with pytest.raises(FileNotFoundError):
            load_sharded_index(tmp_path / "missing")
        bare = tmp_path / "bare"
        bare.mkdir()
        with pytest.raises(ValueError):
            load_any_index(bare)  # directory without a manifest
        target = tmp_path / "fleet"
        save_sharded_index(sharded, target)
        manifest = target / "manifest.json"
        import json

        doc = json.loads(manifest.read_text())
        doc["format_version"] = 99
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_sharded_index(target)

    def test_plain_loader_rejects_sharded_archive(
        self, tmp_path, sharded
    ):
        target = tmp_path / "fleet"
        save_sharded_index(sharded, target)
        with pytest.raises((ValueError, OSError)):
            load_index(target)
