"""Property-based proof of the sharding layer's exactness contract.

For *any* query workload, partitioner, and shard count — and any
interleaved insert/delete sequence — every answer a
:class:`ShardedNNCellIndex` returns must be identical (same global ids,
bit-identical float64 distances) to an unsharded :class:`NNCellIndex`
over the same points.  Hypothesis drives the workload shapes; the
pre-built sharded fleet below keeps the (expensive) solution spaces the
constant.

Queries are drawn from continuous distributions, so exact distance ties
between *distinct* points have measure zero — the one case where the
unsharded ``k_nearest``'s unstable sort could order a tie differently
from the sharded ``(distance, id)`` merge (see docs/sharding.md).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nncell_index import NNCellIndex
from repro.data import uniform_points
from repro.shard import ShardConfig, ShardedNNCellIndex

_DIM = 3
_POINTS = uniform_points(40, _DIM, seed=101)
_FLAT = NNCellIndex.build(_POINTS)
#: The fleet under test: both partitioners, several shard counts,
#: including n_shards=1 (degenerate) and serial scatter (query_workers=1).
_SHARDED = [
    ShardedNNCellIndex.build(
        _POINTS,
        ShardConfig(n_shards=n, partitioner=kind, query_workers=workers),
    )
    for kind in ("hash", "hilbert")
    for n, workers in ((1, 0), (3, 0), (5, 1))
]


@st.composite
def query_arrays(draw):
    """A query batch straddling the data-space boundary (fallbacks too)."""
    n_queries = draw(st.integers(1, 30))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    return rng.uniform(-0.1, 1.1, size=(n_queries, _DIM))


@settings(max_examples=20, deadline=None)
@given(queries=query_arrays())
def test_nearest_bit_identical_across_fleet(queries):
    for sharded in _SHARDED:
        for q in queries:
            expected = _FLAT.nearest(q)
            got = sharded.nearest(q)
            assert got[0] == expected[0]
            # Bit-identical, not approximately equal: per-shard scans run
            # the same float64 arithmetic on the same operands.
            assert got[1] == expected[1]


@settings(max_examples=20, deadline=None)
@given(queries=query_arrays(), k=st.integers(1, 8))
def test_k_nearest_bit_identical_across_fleet(queries, k):
    for sharded in _SHARDED:
        for q in queries:
            exp_ids, exp_dists, __ = _FLAT.k_nearest(q, k)
            got_ids, got_dists, __ = sharded.k_nearest(q, k)
            assert got_ids == exp_ids
            assert got_dists == exp_dists


@settings(max_examples=20, deadline=None)
@given(queries=query_arrays(), batch_size=st.sampled_from([None, 1, 7]))
def test_query_batch_bit_identical_across_fleet(queries, batch_size):
    exp_ids, exp_dists, __ = _FLAT.query_batch(queries, batch_size=batch_size)
    for sharded in _SHARDED:
        got_ids, got_dists, __ = sharded.query_batch(
            queries, batch_size=batch_size
        )
        assert np.array_equal(got_ids, exp_ids)
        assert np.array_equal(got_dists, exp_dists)


@st.composite
def dynamic_scenarios(draw):
    """A fresh small database plus an interleaved update/query script."""
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    n_initial = draw(st.integers(4, 12))
    n_shards = draw(st.integers(1, 4))
    kind = draw(st.sampled_from(["hash", "hilbert"]))
    n_ops = draw(st.integers(1, 10))
    ops = []
    for __ in range(n_ops):
        ops.append(draw(st.sampled_from(["insert", "delete", "query"])))
    return rng, n_initial, n_shards, kind, ops


@settings(max_examples=15, deadline=None)
@given(scenario=dynamic_scenarios())
def test_dynamic_sequences_stay_bit_identical(scenario):
    rng, n_initial, n_shards, kind, ops = scenario
    points = rng.uniform(size=(n_initial, 2))
    flat = NNCellIndex.build(points)
    sharded = ShardedNNCellIndex.build(
        points, ShardConfig(n_shards=n_shards, partitioner=kind)
    )
    live = list(range(n_initial))
    for op in ops:
        if op == "insert" or len(live) <= 1:
            p = rng.uniform(size=2)
            fid = flat.insert(p)
            sid = sharded.insert(p)
            assert sid == fid  # same global id allocation
            live.append(fid)
        elif op == "delete":
            victim = int(rng.choice(live))
            flat.delete(victim)
            sharded.delete(victim)
            live.remove(victim)
        q = rng.uniform(-0.05, 1.05, size=2)
        assert sharded.nearest(q)[:2] == flat.nearest(q)[:2]
    assert np.array_equal(sharded.active_ids, flat.active_ids)
    queries = rng.uniform(size=(10, 2))
    exp = flat.query_batch(queries)
    got = sharded.query_batch(queries)
    assert np.array_equal(got[0], exp[0])
    assert np.array_equal(got[1], exp[1])
    sharded.close()
