"""Property-based tests (hypothesis) for the resilience contract.

Two levels:

* the gather loop itself, against scripted probe outcomes — answered
  and failed partition the shard set, delivery is exactly-once, and
  shards whose transient failures fit the retry budget always answer;
* the sharded index under arbitrary deterministic fault schedules —
  every answer is bit-identical to the unsharded truth index OR
  explicitly degraded naming the dead shards; a raised error is always
  typed.  **Never silently wrong** is the invariant all of resilience
  hangs on.
"""

import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosInjector, FaultPlan, ShardFaults
from repro.core.nncell_index import NNCellIndex
from repro.data import uniform_points
from repro.shard import (
    AllShardsFailed,
    ResilienceConfig,
    ShardConfig,
    ShardedNNCellIndex,
    ShardError,
    ShardProbeError,
)
from repro.shard.resilience import resilient_gather

N_SHARDS = 4


# ----------------------------------------------------------------------
# Level 1: the gather loop against scripted outcomes.
# ----------------------------------------------------------------------
class ScriptedProbes:
    """Per-shard scripts of "fail"/"ok"; exhausted scripts answer ok."""

    def __init__(self, pool, scripts):
        self.pool = pool
        self.scripts = {s: list(seq) for s, seq in scripts.items()}
        self.deliveries = Counter()
        self._lock = threading.Lock()

    def submit(self, shard):
        with self._lock:
            script = self.scripts.get(shard)
            action = script.pop(0) if script else "ok"
        return self.pool.submit(self._attempt, shard, action)

    def _attempt(self, shard, action):
        if action == "fail":
            raise RuntimeError(f"scripted failure on shard {shard}")
        with self._lock:
            self.deliveries[shard] += 1
        return f"answer-{shard}"


@st.composite
def gather_cases(draw):
    n_shards = draw(st.integers(1, 4))
    fails = {
        s: draw(st.integers(0, 4), label=f"fails[{s}]")
        for s in range(n_shards)
    }
    config = ResilienceConfig(
        max_retries=draw(st.integers(0, 3)),
        backoff_base_ms=0.0,
        allow_partial=True,
    )
    return n_shards, fails, config


@settings(max_examples=40, deadline=None)
@given(case=gather_cases())
def test_gather_partitions_shards_and_delivers_once(case):
    n_shards, fails, config = case
    scripts = {s: ["fail"] * n for s, n in fails.items()}
    guaranteed = {s for s, n in fails.items() if n <= config.max_retries}
    with ThreadPoolExecutor(max_workers=2 * n_shards) as pool:
        probes = ScriptedProbes(pool, scripts)
        try:
            results, report = resilient_gather(
                range(n_shards), probes.submit, config
            )
        except AllShardsFailed:
            # Legal only when no shard could possibly answer.
            assert not guaranteed
            return
    answered = {s for s, __ in results}
    failed = set(report.failed_shards)
    # Answered and failed partition the probed shards exactly.
    assert answered | failed == set(range(n_shards))
    assert answered & failed == set()
    assert answered == set(report.answered)
    # A budgeted transient failure is never a permanent casualty.
    assert guaranteed <= answered
    assert failed <= {
        s for s, n in fails.items() if n > config.max_retries
    }
    # Exactly-once delivery into the merge.
    shards_in_results = [s for s, __ in results]
    assert len(shards_in_results) == len(set(shards_in_results))
    assert report.degraded == bool(failed)


@settings(max_examples=10, deadline=None)
@given(
    hedge_after_ms=st.sampled_from([5.0, 20.0]),
    straggler_s=st.sampled_from([0.05, 0.15]),
)
def test_hedged_straggler_never_double_delivers(
    hedge_after_ms, straggler_s
):
    """Both hedge twins may finish; the merge sees the shard once."""
    config = ResilienceConfig(hedge_after_ms=hedge_after_ms)

    class SleepyProbes(ScriptedProbes):
        def _attempt(self, shard, action):
            if shard == 0:
                time.sleep(straggler_s)
            return super()._attempt(shard, action)

    with ThreadPoolExecutor(max_workers=8) as pool:
        probes = SleepyProbes(pool, {})
        results, report = resilient_gather(
            range(3), probes.submit, config
        )
        # Let any losing twin finish delivering before we count.
        time.sleep(straggler_s + 0.05)
    shards = [s for s, __ in results]
    assert shards == [0, 1, 2]
    assert len(set(shards)) == 3


# ----------------------------------------------------------------------
# Level 2: the sharded index under arbitrary fault schedules.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def points():
    return uniform_points(60, 3, seed=23)


@pytest.fixture(scope="module")
def truth(points):
    return NNCellIndex.build(points)


@pytest.fixture(scope="module")
def sharded(points):
    index = ShardedNNCellIndex.build(
        points, ShardConfig(n_shards=N_SHARDS)
    )
    yield index
    index.close()


@st.composite
def fault_schedules(draw):
    """A deterministic per-shard fault schedule plus a policy.

    ``fail_first`` counters are scheduling-independent, so the outcome
    of every schedule is exactly predictable: a shard dies iff its
    budgeted attempts (1 + max_retries) all fall inside its counter.
    """
    max_retries = draw(st.integers(0, 2))
    fails = {
        s: draw(st.integers(0, 4), label=f"fail_first[{s}]")
        for s in range(N_SHARDS)
    }
    allow_partial = draw(st.booleans())
    query_seed = draw(st.integers(0, 2 ** 16))
    return max_retries, fails, allow_partial, query_seed


@settings(max_examples=25, deadline=None)
@given(schedule=fault_schedules())
def test_never_silently_wrong(sharded, truth, schedule):
    max_retries, fails, allow_partial, query_seed = schedule
    expected_dead = {s for s, n in fails.items() if n > max_retries}
    query = uniform_points(1, 3, seed=query_seed)[0]
    tid, tdist, __ = truth.nearest(query)

    sharded.set_resilience(ResilienceConfig(
        max_retries=max_retries,
        backoff_base_ms=0.0,
        allow_partial=allow_partial,
    ))
    sharded.set_chaos(ChaosInjector(FaultPlan(shards={
        s: ShardFaults(fail_first=n) for s, n in fails.items() if n
    })))
    try:
        pid, dist, info = sharded.nearest(query)
    except ShardError as err:
        # A refusal must be typed and must name real casualties.
        if isinstance(err, AllShardsFailed):
            assert expected_dead == set(range(N_SHARDS))
        else:
            assert isinstance(err, ShardProbeError)
            assert not allow_partial
            assert err.failed_shards
            assert set(err.failed_shards) <= expected_dead
        return
    finally:
        sharded.set_chaos(None)
        sharded.set_resilience(None)

    if info.degraded:
        # Degraded answers say so and name exactly the dead shards.
        assert allow_partial
        assert set(info.failed_shards) == expected_dead
        assert info.shards_answered == N_SHARDS - len(expected_dead)
        # The degraded answer is still the exact nearest neighbor of
        # the surviving shards' points — never a fabricated result.
        assert dist >= tdist - 1e-12
    else:
        # Complete answers are bit-identical to the unsharded truth.
        assert expected_dead == set()
        assert (pid, dist) == (tid, tdist)
        assert info.shards_answered == N_SHARDS
