"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.obs.export import load_profile


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBuildAndQuery:
    def test_build_query_info_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, stdout, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "40",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        assert out.exists()
        assert "built index over 40 points" in stdout

        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.5,0.5,0.5",
        )
        assert code == 0
        assert "#1  point" in stdout

        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.5,0.5,0.5", "-k", "3",
        )
        assert code == 0
        assert "#3" in stdout

        code, stdout, __ = run(capsys, "info", str(out))
        assert code == 0
        assert "expected_candidates" in stdout

    def test_build_from_point_file(self, tmp_path, capsys):
        rng = np.random.default_rng(151)
        points = rng.uniform(size=(25, 3))
        npy = tmp_path / "points.npy"
        np.save(npy, points)
        out = tmp_path / "idx.npz"
        code, stdout, __ = run(
            capsys, "build", "--points", str(npy), "--out", str(out),
            "--selector", "nn-direction",
        )
        assert code == 0
        assert "25 points" in stdout

    def test_build_from_csv(self, tmp_path, capsys):
        csv = tmp_path / "points.csv"
        csv.write_text("0.1,0.2\n0.7,0.8\n0.4,0.5\n")
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--points", str(csv), "--out", str(out),
        )
        assert code == 0
        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.69,0.79",
        )
        assert code == 0
        assert "point 1" in stdout

    def test_build_with_decomposition(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, stdout, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "20",
            "--dim", "2", "--out", str(out), "--decompose", "--k-max", "4",
        )
        assert code == 0


class TestParallelAndBatch:
    def test_build_with_workers_matches_serial(self, tmp_path, capsys):
        serial_out = tmp_path / "serial.npz"
        parallel_out = tmp_path / "parallel.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "2", "--out", str(serial_out),
        )
        assert code == 0
        code, stdout, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "2", "--out", str(parallel_out),
            "--workers", "2", "--executor", "thread",
        )
        assert code == 0
        assert "built index over 30 points" in stdout
        serial = np.load(serial_out)
        parallel = np.load(parallel_out)
        assert sorted(serial.files) == sorted(parallel.files)
        for name in serial.files:
            assert np.array_equal(serial[name], parallel[name]), name

    def test_query_batch_file(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "40",
            "--dim", "3", "--out", str(out))
        rng = np.random.default_rng(77)
        batch = tmp_path / "queries.npy"
        np.save(batch, rng.uniform(size=(25, 3)))
        code, stdout, __ = run(
            capsys, "query", str(out), "--batch", str(batch),
            "--batch-size", "8",
        )
        assert code == 0
        assert "query 0  ->  point" in stdout
        assert "... (5 more)" in stdout
        assert "batch: 25 queries" in stdout

    def test_batch_rejects_k(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "10",
            "--dim", "2", "--out", str(out))
        batch = tmp_path / "q.npy"
        np.save(batch, np.zeros((2, 2)))
        code, __, stderr = run(
            capsys, "query", str(out), "--batch", str(batch), "-k", "2",
        )
        assert code == 1
        assert "-k must be 1" in stderr

    def test_batch_rejects_wrong_shape(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "10",
            "--dim", "2", "--out", str(out))
        batch = tmp_path / "q.npy"
        np.save(batch, np.zeros((2, 5)))
        code, __, stderr = run(
            capsys, "query", str(out), "--batch", str(batch),
        )
        assert code == 1
        assert "batch file" in stderr

    def test_batch_profile_document(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        profile = tmp_path / "batch_profile.json"
        run(capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "2", "--out", str(out))
        batch = tmp_path / "q.npy"
        np.save(batch, np.random.default_rng(5).uniform(size=(6, 2)))
        code, __, __ = run(
            capsys, "query", str(out), "--batch", str(batch),
            "--profile", str(profile),
        )
        assert code == 0
        doc = load_profile(profile)
        assert doc["meta"]["command"] == "query-batch"
        assert doc["meta"]["n_queries"] == 6
        assert doc["metrics"]["counters"]["query.batch.queries"] == 6


class TestErrorHandling:
    def test_missing_point_file(self, tmp_path, capsys):
        code, __, stderr = run(
            capsys, "build", "--points", str(tmp_path / "nope.npy"),
            "--out", str(tmp_path / "o.npz"),
        )
        assert code == 1
        assert "error" in stderr

    def test_wrong_query_dim(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "10",
            "--dim", "3", "--out", str(out))
        code, __, stderr = run(capsys, "query", str(out), "--point", "0.5")
        assert code == 1
        assert "3-d" in stderr

    def test_unparseable_point(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "10",
            "--dim", "2", "--out", str(out))
        code, __, stderr = run(capsys, "query", str(out), "--point", "a,b")
        assert code == 1

    def test_bad_experiment_param(self, capsys):
        code, __, stderr = run(
            capsys, "experiment", "figure2", "--param", "oops",
        )
        assert code == 1


class TestShardedCli:
    def test_build_query_info_sharded_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "fleet"
        code, stdout, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "40",
            "--dim", "3", "--out", str(out), "--shards", "3",
            "--partitioner", "hilbert",
        )
        assert code == 0
        assert out.is_dir()
        assert "shards (hilbert partitioner)" in stdout

        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.5,0.5,0.5", "-k", "3",
        )
        assert code == 0
        assert "#3" in stdout

        code, stdout, __ = run(capsys, "info", str(out))
        assert code == 0
        assert "sharding:" in stdout
        assert "3 shards (hilbert partitioner)" in stdout

    def test_sharded_query_matches_unsharded(self, tmp_path, capsys):
        flat = tmp_path / "idx.npz"
        fleet = tmp_path / "fleet"
        for target, extra in ((flat, []), (fleet, ["--shards", "4"])):
            code, __, __ = run(
                capsys, "build", "--dataset", "uniform", "--n", "40",
                "--dim", "3", "--out", str(target), *extra,
            )
            assert code == 0
        __, flat_out, __ = run(
            capsys, "query", str(flat), "--point", "0.3,0.6,0.9", "-k", "2",
        )
        __, fleet_out, __ = run(
            capsys, "query", str(fleet), "--point", "0.3,0.6,0.9", "-k", "2",
        )
        # Identical answer lines (ids and distances), modulo the path.
        flat_rows = [l for l in flat_out.splitlines() if l.startswith("#")]
        fleet_rows = [l for l in fleet_out.splitlines() if l.startswith("#")]
        assert flat_rows == fleet_rows

    def test_build_rejects_negative_shards(self, tmp_path, capsys):
        code, __, stderr = run(
            capsys, "build", "--dataset", "uniform", "--n", "10",
            "--dim", "2", "--out", str(tmp_path / "x"), "--shards", "-1",
        )
        assert code == 1


class TestStatsCommand:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        return out

    def test_stats_prints_table(self, index_path, capsys):
        code, stdout, __ = run(capsys, "stats", str(index_path))
        assert code == 0
        assert "Index statistics" in stdout
        assert "expected_candidates" in stdout

    def test_stats_live_collects_metrics(self, index_path, capsys):
        code, stdout, __ = run(
            capsys, "stats", str(index_path), "--live", "--queries", "5",
        )
        assert code == 0
        assert "Live metrics (5 sample queries)" in stdout
        assert "query.count" in stdout

    def test_info_and_stats_share_statistics_rendering(
        self, index_path, capsys
    ):
        __, info_out, __ = run(capsys, "info", str(index_path))
        __, stats_out, __ = run(capsys, "stats", str(index_path))
        # Both paths render through export.stats_table: same rows.
        info_rows = [l for l in info_out.splitlines()
                     if "expected_candidates" in l]
        stats_rows = [l for l in stats_out.splitlines()
                      if "expected_candidates" in l]
        assert info_rows == stats_rows


class TestProfileFlag:
    def test_build_profile_document(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        profile = tmp_path / "build_profile.json"
        code, stdout, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out), "--profile", str(profile),
        )
        assert code == 0
        assert f"(profile written to {profile})" in stdout
        doc = load_profile(profile)
        assert doc["meta"]["command"] == "build"
        assert doc["metrics"]["counters"]["build.cells"] == 30
        root_names = [s["name"] for s in doc["trace"]]
        assert "build.nncell" in root_names

    def test_query_profile_has_nested_spans(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        profile = tmp_path / "query_profile.json"
        run(capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out))
        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.5,0.5,0.5",
            "--profile", str(profile),
        )
        assert code == 0
        doc = load_profile(profile)
        assert doc["meta"]["command"] == "query"
        (root,) = [s for s in doc["trace"] if s["name"] == "query.nearest"]
        child_names = [c["name"] for c in root["children"]]
        assert "query.point_query" in child_names
        assert "query.candidate_scan" in child_names
        assert doc["metrics"]["counters"]["query.count"] == 1


class TestServeCommand:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        return out

    def serve(self, monkeypatch, capsys, index_path, stdin_text, *flags):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code, stdout, stderr = run(capsys, "serve", str(index_path), *flags)
        import json

        responses = [json.loads(line) for line in stdout.splitlines()]
        return code, responses, stderr

    def test_jsonl_roundtrip_matches_query(
        self, monkeypatch, capsys, index_path
    ):
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            '[0.5, 0.5, 0.5]\n{"id": 7, "point": [0.1, 0.2, 0.3]}\n',
        )
        assert code == 0
        assert len(responses) == 2
        assert all(r["ok"] for r in responses)
        assert responses[1]["id"] == 7
        assert responses[0]["source"] in ("batch", "serial", "scan")

        # The serving answer must agree with the one-shot query path.
        code, stdout, __ = run(
            capsys, "query", str(index_path), "--point", "0.5,0.5,0.5",
        )
        assert code == 0
        assert f"point {responses[0]['point_id']}" in stdout

    def test_bad_requests_get_typed_errors_in_order(
        self, monkeypatch, capsys, index_path
    ):
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            "not json\n"
            '{"id": 2, "point": [0.5]}\n'
            "[0.4, 0.4, 0.4]\n",
        )
        assert code == 0
        assert [r["ok"] for r in responses] == [False, False, True]
        assert responses[0]["error"] == "bad_request"
        assert responses[1]["error"] == "bad_request"
        assert responses[1]["id"] == 2
        assert "3-element" in responses[1]["message"]

    def test_blank_lines_skipped_and_stats_flag(
        self, monkeypatch, capsys, index_path
    ):
        code, responses, stderr = self.serve(
            monkeypatch, capsys, index_path,
            "\n[0.2, 0.2, 0.2]\n\n", "--stats",
        )
        assert code == 0
        assert len(responses) == 1
        assert responses[0]["ok"]
        assert "Serving statistics" in stderr
        assert "submitted" in stderr


class TestExplainCommand:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        return out

    def test_text_output_names_path_and_answer(self, index_path, capsys):
        code, stdout, __ = run(
            capsys, "explain", str(index_path), "--point", "0.5,0.5,0.5",
        )
        assert code == 0
        assert "path:" in stdout
        assert "<- answer" in stdout
        assert "nodes_visited" in stdout or "nodes visited" in stdout

    def test_json_output_matches_query(self, index_path, capsys):
        import json

        code, stdout, __ = run(
            capsys, "explain", str(index_path), "--point", "0.5,0.5,0.5",
            "--json",
        )
        assert code == 0
        doc = json.loads(stdout)
        assert doc["path"] in ("cell", "cell_retry")
        assert doc["n_candidates"] >= 1

        code, stdout, __ = run(
            capsys, "query", str(index_path), "--point", "0.5,0.5,0.5",
        )
        assert code == 0
        assert f"point {doc['nearest_id']}" in stdout

    def test_outside_data_space_explained(self, index_path, capsys):
        import json

        code, stdout, __ = run(
            capsys, "explain", str(index_path), "--point", "9,9,9",
            "--json",
        )
        assert code == 0
        assert json.loads(stdout)["path"] == "outside_data_space"

    def test_wrong_dimension_is_an_error(self, index_path, capsys):
        code, __, stderr = run(
            capsys, "explain", str(index_path), "--point", "0.5",
        )
        assert code == 1
        assert "error" in stderr


class TestServeTelemetry:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        return out

    def serve(self, monkeypatch, capsys, index_path, stdin_text, *flags):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code, stdout, stderr = run(capsys, "serve", str(index_path), *flags)
        responses = [json.loads(line) for line in stdout.splitlines()]
        return code, responses, stderr

    def test_explain_echo_on_request(
        self, monkeypatch, capsys, index_path
    ):
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            '{"point": [0.5, 0.5, 0.5], "explain": true}\n'
            "[0.4, 0.4, 0.4]\n",
        )
        assert code == 0
        assert responses[0]["ok"]
        explain = responses[0]["explain"]
        assert explain["nearest_id"] == responses[0]["point_id"]
        assert explain["path"] in ("cell", "cell_retry")
        # Requests that did not opt in carry no explain payload.
        assert "explain" not in responses[1]

    def test_metrics_port_announced_and_stats_table(
        self, monkeypatch, capsys, index_path
    ):
        code, responses, stderr = self.serve(
            monkeypatch, capsys, index_path,
            "[0.2, 0.2, 0.2]\n",
            "--metrics-port", "0", "--stats",
        )
        assert code == 0
        assert responses[0]["ok"]
        assert "metrics endpoint: http://127.0.0.1:" in stderr
        assert "Live telemetry" in stderr

    def test_events_flag_writes_jsonl(
        self, monkeypatch, capsys, index_path, tmp_path
    ):
        import json

        events_path = tmp_path / "events.jsonl"
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            "[0.3, 0.3, 0.3]\n",
            "--events", str(events_path),
        )
        assert code == 0
        assert responses[0]["ok"]
        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        assert any(r["kind"] == "flush" for r in records)

    def test_events_dir_must_exist(
        self, monkeypatch, capsys, index_path, tmp_path
    ):
        code, __, stderr = self.serve(
            monkeypatch, capsys, index_path, "",
            "--events", str(tmp_path / "missing" / "ev.jsonl"),
        )
        assert code == 1
        assert "error" in stderr

    def test_telemetry_torn_down_after_serve(
        self, monkeypatch, capsys, index_path
    ):
        from repro.obs import events as obs_events
        from repro.obs import metrics as obs_metrics

        code, __, __ = self.serve(
            monkeypatch, capsys, index_path,
            "[0.1, 0.1, 0.1]\n", "--metrics-port", "0",
        )
        assert code == 0
        assert not obs_metrics.enabled()
        assert obs_metrics.get_timeseries() is None
        assert not obs_events.enabled()


class TestStatsWatch:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "25",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        return out

    def test_watch_renders_live_table(self, index_path, capsys):
        code, stdout, __ = run(
            capsys, "stats", str(index_path), "--watch",
            "--interval", "0.2", "--duration", "0.5",
        )
        assert code == 0
        assert "Live telemetry" in stdout
        assert "queries)" in stdout  # final table is count-titled
        for window in ("1s", "10s", "60s"):
            assert window in stdout

    def test_watch_rejects_bad_interval(self, index_path, capsys):
        code, __, stderr = run(
            capsys, "stats", str(index_path), "--watch",
            "--interval", "0", "--duration", "0.2",
        )
        assert code == 1
        assert "interval" in stderr


class TestExperimentCommand:
    def test_figure2_runs(self, capsys):
        code, stdout, __ = run(
            capsys, "experiment", "figure2", "--param", "n_points=10",
        )
        assert code == 0
        assert "Figure 2" in stdout

    def test_csv_output(self, tmp_path, capsys):
        csv = tmp_path / "table.csv"
        code, stdout, __ = run(
            capsys, "experiment", "figure2", "--param", "n_points=10",
            "--csv", str(csv),
        )
        assert code == 0
        assert csv.exists()
        assert csv.read_text().startswith("distribution,")

    def test_tuple_params(self, capsys):
        code, stdout, __ = run(
            capsys, "experiment", "figure13",
            "--param", "dims=2,", "--param", "n_points=15",
            "--param", "k_max=4",
        )
        assert code == 0
        assert "Figure 13" in stdout


class TestTraceCommand:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        return out

    def test_top_renders_stage_attribution_table(self, index_path, capsys):
        code, stdout, __ = run(
            capsys, "trace", str(index_path), "top",
            "--queries", "20", "--threads", "2", "--limit", "5",
        )
        assert code == 0
        assert "Slowest requests" in stdout
        for column in ("trace_id", "total_ms", "coverage", "queue_ms",
                       "walk_ms", "deliver_ms"):
            assert column in stdout
        assert "20 queries" in stdout

    def test_show_prints_span_tree_and_critical_path(
        self, index_path, capsys
    ):
        code, stdout, __ = run(
            capsys, "trace", str(index_path), "show", "--queries", "10",
        )
        assert code == 0
        assert "critical path (coverage" in stdout
        assert "serve.request" in stdout
        assert "serve.queue_wait" in stdout
        assert "queue_wait" in stdout

    def test_show_unknown_trace_id_fails_cleanly(self, index_path, capsys):
        code, __, stderr = run(
            capsys, "trace", str(index_path), "show",
            "--queries", "5", "--trace-id", "doesnotexist",
        )
        assert code == 1
        assert "no stored trace" in stderr

    def test_export_writes_chrome_trace_json(
        self, index_path, tmp_path, capsys
    ):
        import json

        out = tmp_path / "trace.json"
        code, __, stderr = run(
            capsys, "trace", str(index_path), "export",
            "--queries", "10", "--out", str(out),
        )
        assert code == 0
        assert "trace events written" in stderr
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        phases = {e["ph"] for e in document["traceEvents"]}
        assert phases == {"M", "X"}
        names = {e.get("name") for e in document["traceEvents"]}
        assert "serve.request" in names
        assert "serve.flush" in names

    def test_export_to_stdout(self, index_path, capsys):
        import json

        code, stdout, __ = run(
            capsys, "trace", str(index_path), "export", "--queries", "5",
        )
        assert code == 0
        assert json.loads(stdout)["traceEvents"]

    def test_export_missing_parent_dir_fails_before_load(
        self, index_path, tmp_path, capsys
    ):
        code, __, stderr = run(
            capsys, "trace", str(index_path), "export",
            "--queries", "5", "--out", str(tmp_path / "nope" / "t.json"),
        )
        assert code == 1
        assert "does not exist" in stderr


class TestWatchAndServeTracing:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "20",
            "--dim", "3", "--out", str(out))
        return out

    def test_watch_renders_with_empty_workload(self, index_path, capsys):
        # Regression: --queries 0 used to divide by zero before the
        # first render; it must idle and still print all-zero windows.
        code, stdout, __ = run(
            capsys, "stats", str(index_path), "--watch",
            "--queries", "0", "--duration", "0.4", "--interval", "0.1",
        )
        assert code == 0
        assert "Live telemetry (0 queries)" in stdout

    def test_watch_rejects_negative_queries(self, index_path, capsys):
        code, __, stderr = run(
            capsys, "stats", str(index_path), "--watch", "--queries", "-1",
            "--duration", "0.1",
        )
        assert code == 1
        assert "--queries" in stderr

    def test_explain_echoes_a_trace_id(self, index_path, capsys):
        import re

        code, stdout, __ = run(
            capsys, "explain", str(index_path), "--point", "0.5,0.5,0.5",
        )
        assert code == 0
        match = re.search(r"^trace: ([0-9a-f]{16})$", stdout, re.M)
        assert match

    def test_explain_json_carries_the_trace_id(self, index_path, capsys):
        import json
        import re

        code, stdout, __ = run(
            capsys, "explain", str(index_path),
            "--point", "0.5,0.5,0.5", "--json",
        )
        assert code == 0
        document = json.loads(stdout)
        assert re.fullmatch(r"[0-9a-f]{16}", document["trace_id"])


class TestServeTracingProtocol:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "30",
            "--dim", "3", "--out", str(out))
        return out

    def serve(self, monkeypatch, capsys, index_path, stdin_text, *flags):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code, stdout, stderr = run(capsys, "serve", str(index_path), *flags)
        responses = [json.loads(line) for line in stdout.splitlines()]
        return code, responses, stderr

    def test_every_response_echoes_a_distinct_trace_id(
        self, monkeypatch, capsys, index_path
    ):
        import re

        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            "[0.5, 0.5, 0.5]\n[0.2, 0.2, 0.2]\n[0.8, 0.8, 0.8]\n",
            "--tracing",
        )
        assert code == 0
        ids = [r["trace_id"] for r in responses]
        assert all(re.fullmatch(r"[0-9a-f]{16}", tid) for tid in ids)
        assert len(set(ids)) == 3

    def test_trace_id_flows_without_the_tracing_flag(
        self, monkeypatch, capsys, index_path
    ):
        # Identity is unconditional; --tracing only adds the recording.
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path, "[0.5, 0.5, 0.5]\n",
        )
        assert code == 0
        assert len(responses[0]["trace_id"]) == 16

    def test_event_log_records_join_on_trace_ids(
        self, monkeypatch, capsys, index_path, tmp_path
    ):
        import json

        events_path = tmp_path / "events.jsonl"
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            "[0.3, 0.3, 0.3]\n",
            "--tracing", "--events", str(events_path),
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        flushes = [r for r in records if r["kind"] == "flush"]
        assert flushes
        assert all("trace_id" in r for r in flushes)

    def test_slo_flag_serves_and_answers(
        self, monkeypatch, capsys, index_path
    ):
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            "[0.5, 0.5, 0.5]\n", "--tracing", "--slo", "--slo-degrade",
        )
        assert code == 0
        assert responses[0]["ok"]
        assert responses[0]["trace_id"]


class TestChaosAndResilience:
    @pytest.fixture()
    def index_path(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "40",
            "--dim", "3", "--out", str(out))
        return out

    def serve(self, monkeypatch, capsys, index_path, stdin_text, *flags):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code, stdout, stderr = run(capsys, "serve", str(index_path), *flags)
        responses = [json.loads(line) for line in stdout.splitlines()]
        return code, responses, stderr

    def test_chaos_drill_passes_and_reports(self, index_path, capsys):
        code, stdout, __ = run(
            capsys, "chaos", str(index_path), "--shards", "4",
            "--queries", "30", "--threads", "2",
            "--fail-shard", "2", "--fail-p", "1.0",
            "--shard-retries", "1", "--allow-partial",
        )
        assert code == 0
        assert "chaos drill: PASSED" in stdout
        assert "degraded" in stdout

    def test_chaos_drill_json_report(self, index_path, capsys):
        import json

        code, stdout, __ = run(
            capsys, "chaos", str(index_path), "--shards", "4",
            "--queries", "20", "--threads", "2",
            "--fail-shard", "1", "--fail-p", "1.0",
            "--shard-retries", "0", "--allow-partial", "--json",
        )
        assert code == 0
        report = json.loads(stdout)
        assert report["passed"] is True
        assert report["untyped_errors"] == 0
        assert report["faulted_shards"] == [1]
        assert report["outcomes"].get("degraded", 0) > 0

    def test_chaos_drill_healthy_fleet(self, index_path, capsys):
        import json

        code, stdout, __ = run(
            capsys, "chaos", str(index_path), "--shards", "2",
            "--queries", "10", "--threads", "1", "--json",
        )
        assert code == 0
        report = json.loads(stdout)
        assert report["passed"] is True
        assert report["outcomes"] == {"ok": 10}

    def test_serve_resilience_flags_on_sharded_index(
        self, monkeypatch, capsys, index_path
    ):
        code, responses, __ = self.serve(
            monkeypatch, capsys, index_path,
            "[0.5, 0.5, 0.5]\n[0.2, 0.8, 0.4]\n",
            "--shards", "3", "--shard-timeout-ms", "500",
            "--hedge-after-ms", "100", "--allow-partial",
        )
        assert code == 0
        assert all(r["ok"] for r in responses)
        # Healthy fleet: nothing degraded, so no degraded fields.
        assert all("degraded" not in r for r in responses)

    def test_serve_resilience_flags_need_sharded_index(
        self, monkeypatch, capsys, index_path
    ):
        code, __, stderr = self.serve(
            monkeypatch, capsys, index_path,
            "[0.5, 0.5, 0.5]\n", "--allow-partial",
        )
        assert code != 0
        assert "sharded" in stderr


class TestAnalyzeAndReplayCommands:
    @pytest.fixture
    def captured_setup(self, tmp_path, capsys):
        """A built index plus a workload captured against it."""
        from repro.core.persistence import load_any_index
        from repro.obs import workload as obs_workload

        index_path = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "60",
            "--dim", "3", "--out", str(index_path),
        )
        assert code == 0
        capture = tmp_path / "capture.jsonl"
        index = load_any_index(index_path)
        with obs_workload.capturing(sink=capture):
            rng = np.random.default_rng(5)
            for q in rng.uniform(size=(12, 3)):
                index.nearest(q)
        return index_path, capture

    def test_replay_reports_bit_parity(self, captured_setup, capsys):
        index_path, capture = captured_setup
        code, stdout, __ = run(
            capsys, "replay", str(index_path), "--workload", str(capture),
        )
        assert code == 0
        assert "bit-identical" in stdout

    def test_replay_json_and_batch_mode(self, captured_setup, capsys):
        import json as json_mod

        index_path, capture = captured_setup
        code, stdout, __ = run(
            capsys, "replay", str(index_path), "--workload", str(capture),
            "--mode", "batch", "--json",
        )
        assert code == 0
        doc = json_mod.loads(stdout)
        assert doc["bit_identical"] is True
        assert doc["n_queries"] == 12
        assert doc["mode"] == "batch"

    def test_replay_doctored_capture_exits_nonzero(
        self, captured_setup, tmp_path, capsys
    ):
        import json as json_mod

        index_path, capture = captured_setup
        lines = capture.read_text().splitlines()
        doctored = [lines[0]]
        for line in lines[1:]:
            record = json_mod.loads(line)
            record["id"] += 1
            doctored.append(json_mod.dumps(record))
        bad = tmp_path / "doctored.jsonl"
        bad.write_text("\n".join(doctored) + "\n")
        code, stdout, __ = run(
            capsys, "replay", str(index_path), "--workload", str(bad),
        )
        assert code == 1
        assert "MISMATCHES" in stdout

    def test_analyze_balanced_unsharded_traffic(
        self, captured_setup, capsys
    ):
        index_path, capture = captured_setup
        code, stdout, __ = run(
            capsys, "analyze", str(index_path),
            "--workload", str(capture),
        )
        assert code == 0  # unsharded: nothing to convict
        assert "hot cells" in stdout

    def test_analyze_sharded_json_report(self, captured_setup, capsys):
        import json as json_mod

        index_path, capture = captured_setup
        code, stdout, __ = run(
            capsys, "analyze", str(index_path),
            "--workload", str(capture), "--shards", "2", "--json",
        )
        assert code in (0, 2)  # verdict depends on the random workload
        doc = json_mod.loads(stdout)
        assert sorted(doc["shards"]) == ["0", "1"]
        assert doc["format"] == "repro.analytics"
        assert "hot_cells" in doc and "verdict" in doc

    def test_serve_capture_writes_replayable_workload(
        self, tmp_path, capsys, monkeypatch
    ):
        import io

        index_path = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "40",
            "--dim", "3", "--out", str(index_path),
        )
        assert code == 0
        capture = tmp_path / "served.jsonl"
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('[0.5, 0.5, 0.5]\n[0.1, 0.9, 0.4]\n')
        )
        code, __, __ = run(
            capsys, "serve", str(index_path), "--capture", str(capture),
        )
        assert code == 0
        code, stdout, __ = run(
            capsys, "replay", str(index_path), "--workload", str(capture),
        )
        assert code == 0
        assert "replayed 2 queries" in stdout
