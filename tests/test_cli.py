"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBuildAndQuery:
    def test_build_query_info_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, stdout, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "40",
            "--dim", "3", "--out", str(out),
        )
        assert code == 0
        assert out.exists()
        assert "built index over 40 points" in stdout

        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.5,0.5,0.5",
        )
        assert code == 0
        assert "#1  point" in stdout

        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.5,0.5,0.5", "-k", "3",
        )
        assert code == 0
        assert "#3" in stdout

        code, stdout, __ = run(capsys, "info", str(out))
        assert code == 0
        assert "expected_candidates" in stdout

    def test_build_from_point_file(self, tmp_path, capsys):
        rng = np.random.default_rng(151)
        points = rng.uniform(size=(25, 3))
        npy = tmp_path / "points.npy"
        np.save(npy, points)
        out = tmp_path / "idx.npz"
        code, stdout, __ = run(
            capsys, "build", "--points", str(npy), "--out", str(out),
            "--selector", "nn-direction",
        )
        assert code == 0
        assert "25 points" in stdout

    def test_build_from_csv(self, tmp_path, capsys):
        csv = tmp_path / "points.csv"
        csv.write_text("0.1,0.2\n0.7,0.8\n0.4,0.5\n")
        out = tmp_path / "idx.npz"
        code, __, __ = run(
            capsys, "build", "--points", str(csv), "--out", str(out),
        )
        assert code == 0
        code, stdout, __ = run(
            capsys, "query", str(out), "--point", "0.69,0.79",
        )
        assert code == 0
        assert "point 1" in stdout

    def test_build_with_decomposition(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        code, stdout, __ = run(
            capsys, "build", "--dataset", "uniform", "--n", "20",
            "--dim", "2", "--out", str(out), "--decompose", "--k-max", "4",
        )
        assert code == 0


class TestErrorHandling:
    def test_missing_point_file(self, tmp_path, capsys):
        code, __, stderr = run(
            capsys, "build", "--points", str(tmp_path / "nope.npy"),
            "--out", str(tmp_path / "o.npz"),
        )
        assert code == 1
        assert "error" in stderr

    def test_wrong_query_dim(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "10",
            "--dim", "3", "--out", str(out))
        code, __, stderr = run(capsys, "query", str(out), "--point", "0.5")
        assert code == 1
        assert "3-d" in stderr

    def test_unparseable_point(self, tmp_path, capsys):
        out = tmp_path / "idx.npz"
        run(capsys, "build", "--dataset", "uniform", "--n", "10",
            "--dim", "2", "--out", str(out))
        code, __, stderr = run(capsys, "query", str(out), "--point", "a,b")
        assert code == 1

    def test_bad_experiment_param(self, capsys):
        code, __, stderr = run(
            capsys, "experiment", "figure2", "--param", "oops",
        )
        assert code == 1


class TestExperimentCommand:
    def test_figure2_runs(self, capsys):
        code, stdout, __ = run(
            capsys, "experiment", "figure2", "--param", "n_points=10",
        )
        assert code == 0
        assert "Figure 2" in stdout

    def test_csv_output(self, tmp_path, capsys):
        csv = tmp_path / "table.csv"
        code, stdout, __ = run(
            capsys, "experiment", "figure2", "--param", "n_points=10",
            "--csv", str(csv),
        )
        assert code == 0
        assert csv.exists()
        assert csv.read_text().startswith("distribution,")

    def test_tuple_params(self, capsys):
        code, stdout, __ = run(
            capsys, "experiment", "figure13",
            "--param", "dims=2,", "--param", "n_points=15",
            "--param", "k_max=4",
        )
        assert code == 0
        assert "Figure 13" in stdout
