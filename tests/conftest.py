"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# Make tests/helpers.py importable from nested test directories.
sys.path.insert(0, str(Path(__file__).parent))

from repro.data import uniform_points  # noqa: E402


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def points_2d():
    return uniform_points(40, 2, seed=1)


@pytest.fixture
def points_4d():
    return uniform_points(60, 4, seed=2)


@pytest.fixture
def points_8d():
    return uniform_points(80, 8, seed=3)
