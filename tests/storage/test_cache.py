"""Unit tests for the block-weighted LRU buffer pool."""

import pytest

from repro.storage.cache import LRUCache


class TestBasics:
    def test_hit_and_miss(self):
        cache = LRUCache(4)
        assert not cache.touch(1)
        cache.put(1, "a")
        assert cache.touch(1)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_len_and_used_blocks(self):
        cache = LRUCache(10)
        cache.put(1, "a", n_blocks=3)
        cache.put(2, "b", n_blocks=2)
        assert len(cache) == 2
        assert cache.used_blocks == 5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_rejects_bad_blocks(self):
        cache = LRUCache(4)
        with pytest.raises(ValueError):
            cache.put(1, "a", n_blocks=0)


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.touch(1)       # 2 becomes LRU
        cache.put(3, "c")    # evicts 2
        assert cache.touch(1)
        assert not cache.touch(2)
        assert cache.touch(3)

    def test_block_weighted_eviction(self):
        cache = LRUCache(4)
        cache.put(1, "a", n_blocks=2)
        cache.put(2, "b", n_blocks=2)
        cache.put(3, "c", n_blocks=2)  # must evict 1
        assert not cache.touch(1)
        assert cache.used_blocks <= 4

    def test_oversized_entry_admitted_alone(self):
        cache = LRUCache(2)
        cache.put(1, "a")
        cache.put(2, "huge", n_blocks=10)
        # Entry 2 is present even though it exceeds capacity on its own.
        assert cache.touch(2)
        assert len(cache) == 1

    def test_reput_updates_size(self):
        cache = LRUCache(6)
        cache.put(1, "a", n_blocks=2)
        cache.put(1, "a2", n_blocks=4)
        assert cache.used_blocks == 4
        assert len(cache) == 1

    def test_explicit_evict(self):
        cache = LRUCache(4)
        cache.put(1, "a", n_blocks=2)
        cache.evict(1)
        assert cache.used_blocks == 0
        cache.evict(1)  # idempotent

    def test_clear(self):
        cache = LRUCache(4)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.clear()
        assert len(cache) == 0
        assert cache.used_blocks == 0
