"""Unit tests for the block-weighted LRU buffer pool."""

import pytest

from repro.storage.cache import CacheCapacityError, LRUCache
from repro.storage.page import PageManager


class TestBasics:
    def test_hit_and_miss(self):
        cache = LRUCache(4)
        assert not cache.touch(1)
        cache.put(1, "a")
        assert cache.touch(1)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_len_and_used_blocks(self):
        cache = LRUCache(10)
        cache.put(1, "a", n_blocks=3)
        cache.put(2, "b", n_blocks=2)
        assert len(cache) == 2
        assert cache.used_blocks == 5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_rejects_bad_blocks(self):
        cache = LRUCache(4)
        with pytest.raises(ValueError):
            cache.put(1, "a", n_blocks=0)


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.touch(1)       # 2 becomes LRU
        cache.put(3, "c")    # evicts 2
        assert cache.touch(1)
        assert not cache.touch(2)
        assert cache.touch(3)

    def test_block_weighted_eviction(self):
        cache = LRUCache(4)
        cache.put(1, "a", n_blocks=2)
        cache.put(2, "b", n_blocks=2)
        cache.put(3, "c", n_blocks=2)  # must evict 1
        assert not cache.touch(1)
        assert cache.used_blocks <= 4

    def test_oversized_entry_raises_typed_error(self):
        # Regression: put() used to silently admit entries wider than
        # the whole pool, leaving used_blocks permanently above
        # capacity_blocks with nothing evictable.
        cache = LRUCache(2)
        cache.put(1, "a")
        with pytest.raises(CacheCapacityError):
            cache.put(2, "huge", n_blocks=10)
        # The refusal is also a ValueError, so untyped callers still fail.
        with pytest.raises(ValueError):
            cache.put(2, "huge", n_blocks=10)
        # Pool state is untouched by the refused insert.
        assert cache.touch(1)
        assert len(cache) == 1
        assert cache.used_blocks == 1

    def test_exact_capacity_entry_is_admitted(self):
        cache = LRUCache(4)
        cache.put(1, "a", n_blocks=4)
        assert cache.touch(1)
        assert cache.used_blocks == 4

    def test_page_manager_bypasses_oversized_supernode(self):
        # The PageManager must keep working when an X-tree supernode
        # outgrows the buffer pool: the page reads uncached (every read
        # physical) instead of raising.
        pages = PageManager(cache_pages=2)
        page_id = pages.allocate("supernode", n_blocks=8)
        assert pages.read(page_id) == "supernode"
        before = pages.stats.physical_reads
        pages.read(page_id)
        assert pages.stats.physical_reads == before + 8  # never cached
        # A page *resized* past capacity is dropped from the pool too.
        small = pages.allocate("node", n_blocks=1)
        pages.read(small)
        pages.write(small, "grown", n_blocks=8)
        before = pages.stats.physical_reads
        pages.read(small)
        assert pages.stats.physical_reads == before + 8

    def test_reput_updates_size(self):
        cache = LRUCache(6)
        cache.put(1, "a", n_blocks=2)
        cache.put(1, "a2", n_blocks=4)
        assert cache.used_blocks == 4
        assert len(cache) == 1

    def test_explicit_evict(self):
        cache = LRUCache(4)
        cache.put(1, "a", n_blocks=2)
        cache.evict(1)
        assert cache.used_blocks == 0
        cache.evict(1)  # idempotent

    def test_clear(self):
        cache = LRUCache(4)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.clear()
        assert len(cache) == 0
        assert cache.used_blocks == 0
