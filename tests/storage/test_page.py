"""Unit tests for the paged storage manager."""

import pytest

from repro.storage.page import DEFAULT_PAGE_SIZE, AccessStats, PageManager


class TestPageLifecycle:
    def test_allocate_read_write(self):
        pm = PageManager()
        pid = pm.allocate({"k": 1})
        assert pm.read(pid) == {"k": 1}
        pm.write(pid, {"k": 2})
        assert pm.read(pid) == {"k": 2}
        assert pm.n_pages == 1

    def test_free(self):
        pm = PageManager()
        pid = pm.allocate("x")
        pm.free(pid)
        assert pm.n_pages == 0
        with pytest.raises(KeyError):
            pm.read(pid)
        with pytest.raises(KeyError):
            pm.free(pid)

    def test_unique_ids(self):
        pm = PageManager()
        ids = {pm.allocate(i) for i in range(100)}
        assert len(ids) == 100

    def test_missing_page_errors(self):
        pm = PageManager()
        with pytest.raises(KeyError):
            pm.read(42)
        with pytest.raises(KeyError):
            pm.write(42, "x")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PageManager(page_size=0)
        with pytest.raises(ValueError):
            PageManager(cache_pages=-1)
        pm = PageManager()
        with pytest.raises(ValueError):
            pm.allocate("x", n_blocks=0)


class TestAccounting:
    def test_reads_and_writes_counted(self):
        pm = PageManager()
        pid = pm.allocate("a")  # 1 write
        pm.read(pid)
        pm.read(pid)
        pm.write(pid, "b")  # another write
        assert pm.stats.logical_reads == 2
        assert pm.stats.physical_reads == 2  # no cache configured
        assert pm.stats.logical_writes == 2

    def test_supernode_counts_blocks(self):
        pm = PageManager()
        pid = pm.allocate("big", n_blocks=3)
        assert pm.stats.logical_writes == 3
        pm.read(pid)
        assert pm.stats.logical_reads == 3
        assert pm.n_blocks_of(pid) == 3
        pm.write(pid, "bigger", n_blocks=4)
        assert pm.n_blocks_of(pid) == 4
        assert pm.total_blocks() == 4

    def test_snapshot_and_delta(self):
        pm = PageManager()
        pid = pm.allocate("a")
        before = pm.stats.snapshot()
        pm.read(pid)
        pm.read(pid)
        delta = pm.stats.delta_since(before)
        assert delta.logical_reads == 2
        assert delta.logical_writes == 0

    def test_reset(self):
        pm = PageManager()
        pid = pm.allocate("a")
        pm.read(pid)
        pm.reset_stats()
        assert pm.stats.logical_reads == 0
        assert pm.stats.logical_writes == 0

    def test_accessstats_defaults(self):
        stats = AccessStats()
        assert stats.logical_reads == 0
        stats.reset()
        assert stats.physical_writes == 0


class TestCachedReads:
    def test_cache_absorbs_repeat_reads(self):
        pm = PageManager(cache_pages=4)
        pid = pm.allocate("a")
        pm.read(pid)  # in cache from allocation
        pm.read(pid)
        assert pm.stats.logical_reads == 2
        assert pm.stats.physical_reads == 0

    def test_cache_eviction_causes_physical_read(self):
        pm = PageManager(cache_pages=2)
        pids = [pm.allocate(i) for i in range(3)]
        # Page 0 was evicted by allocations of 1 and 2.
        pm.read(pids[0])
        assert pm.stats.physical_reads == 1
        # Now 0 is hot again; reading it once more is free.
        pm.read(pids[0])
        assert pm.stats.physical_reads == 1

    def test_drop_cache(self):
        pm = PageManager(cache_pages=4)
        pid = pm.allocate("a")
        pm.drop_cache()
        pm.read(pid)
        assert pm.stats.physical_reads == 1

    def test_free_evicts_from_cache(self):
        pm = PageManager(cache_pages=4)
        pid = pm.allocate("a")
        pm.free(pid)
        # New page can reuse the slot without stale hits.
        pid2 = pm.allocate("b")
        pm.read(pid2)
        assert pm.read(pid2) == "b"


class TestSizing:
    def test_entries_per_page(self):
        pm = PageManager(page_size=4096)
        # 4064 usable bytes / 136-byte entries -> 29.
        assert pm.entries_per_page(136) == 29

    def test_entries_per_page_minimum_two(self):
        pm = PageManager(page_size=64)
        assert pm.entries_per_page(1000) == 2

    def test_entries_per_page_rejects_nonpositive(self):
        pm = PageManager()
        with pytest.raises(ValueError):
            pm.entries_per_page(0)

    def test_default_page_size_is_paper_block(self):
        assert DEFAULT_PAGE_SIZE == 4096
