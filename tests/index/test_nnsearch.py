"""Unit tests for the RKV and HS nearest-neighbor algorithms."""

import numpy as np
import pytest

from helpers import brute_k_nearest, brute_nearest
from repro.data import clustered_points, uniform_points
from repro.index.bulk import bulk_load
from repro.index.nnsearch import NNResult, hs_k_nearest, hs_nearest, rkv_nearest
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree


@pytest.fixture(params=["rstar", "xtree", "bulk"])
def tree_and_points(request):
    points = uniform_points(300, 5, seed=6)
    if request.param == "rstar":
        tree = RStarTree(5)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
    elif request.param == "xtree":
        tree = XTree(5)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
    else:
        tree = bulk_load(RStarTree(5), points, points, np.arange(300))
    return tree, points


class TestRKV:
    def test_matches_bruteforce(self, tree_and_points, rng):
        tree, points = tree_and_points
        for __ in range(40):
            q = rng.uniform(size=5)
            result = rkv_nearest(tree, q)
            true_id, true_dist = brute_nearest(q, points)
            assert result.nearest_distance == pytest.approx(true_dist)
            assert np.allclose(points[result.nearest_id], points[true_id])

    def test_query_outside_space(self, tree_and_points):
        tree, points = tree_and_points
        q = np.full(5, 2.0)
        result = rkv_nearest(tree, q)
        __, true_dist = brute_nearest(q, points)
        assert result.nearest_distance == pytest.approx(true_dist)

    def test_counts_pages_and_distances(self, tree_and_points, rng):
        tree, points = tree_and_points
        result = rkv_nearest(tree, rng.uniform(size=5))
        assert result.pages >= tree.height
        assert result.distance_computations > 0

    def test_empty_tree(self):
        tree = RStarTree(2)
        result = rkv_nearest(tree, [0.5, 0.5])
        assert result.ids == []
        with pytest.raises(ValueError):
            result.nearest_id
        with pytest.raises(ValueError):
            result.nearest_distance

    def test_single_point(self):
        tree = RStarTree(2)
        tree.insert_point([0.3, 0.3], 9)
        result = rkv_nearest(tree, [0.9, 0.9])
        assert result.nearest_id == 9

    def test_query_on_data_point(self, tree_and_points):
        tree, points = tree_and_points
        result = rkv_nearest(tree, points[17])
        assert result.nearest_distance == pytest.approx(0.0)


class TestHS:
    def test_matches_bruteforce(self, tree_and_points, rng):
        tree, points = tree_and_points
        for __ in range(40):
            q = rng.uniform(size=5)
            result = hs_nearest(tree, q)
            __, true_dist = brute_nearest(q, points)
            assert result.nearest_distance == pytest.approx(true_dist)

    def test_k_nearest_matches_bruteforce(self, tree_and_points, rng):
        tree, points = tree_and_points
        for k in (1, 3, 10):
            q = rng.uniform(size=5)
            result = hs_k_nearest(tree, q, k)
            __, true_dists = brute_k_nearest(q, points, k)
            assert len(result.ids) == k
            assert np.allclose(result.distances, true_dists)
            # Result is sorted by distance.
            assert result.distances == sorted(result.distances)

    def test_k_larger_than_database(self):
        points = uniform_points(5, 2, seed=7)
        tree = bulk_load(RStarTree(2), points, points, np.arange(5))
        result = hs_k_nearest(tree, [0.5, 0.5], 10)
        assert len(result.ids) == 5

    def test_k_must_be_positive(self, tree_and_points):
        tree, __ = tree_and_points
        with pytest.raises(ValueError):
            hs_k_nearest(tree, np.full(5, 0.5), 0)

    def test_hs_reads_no_more_pages_than_rkv(self, rng):
        """HS is I/O-optimal: never worse than RKV on page reads."""
        points = clustered_points(400, 6, seed=8)
        tree = bulk_load(RStarTree(6), points, points, np.arange(400))
        worse = 0
        for __ in range(20):
            q = rng.uniform(size=6)
            hs_pages = hs_nearest(tree, q).pages
            rkv_pages = rkv_nearest(tree, q).pages
            if hs_pages > rkv_pages:
                worse += 1
        assert worse == 0


class TestNNResult:
    def test_accessors(self):
        result = NNResult(ids=[3], distances=[0.5], pages=2)
        assert result.nearest_id == 3
        assert result.nearest_distance == 0.5
