"""Soak/stress tests for the index layer under adversarial workloads."""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.data import diagonal_points, grid_points, uniform_points
from repro.index.bulk import bulk_load
from repro.index.nnsearch import hs_k_nearest, rkv_nearest
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree


class TestAdversarialDistributions:
    def test_grid_data(self, rng):
        """Perfectly regular data creates massive sort ties in splits."""
        points = grid_points(5, 3)  # 125 points, many equal coordinates
        tree = RStarTree(3, max_entries=8)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        tree.validate()
        for __ in range(25):
            q = rng.uniform(size=3)
            __, true_dist = brute_nearest(q, points)
            assert rkv_nearest(tree, q).nearest_distance == pytest.approx(
                true_dist
            )

    def test_collinear_data(self, rng):
        points = diagonal_points(200, 4, jitter=0.0)
        tree = XTree(4, max_entries=8)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        tree.validate()
        for __ in range(25):
            q = rng.uniform(size=4)
            __, true_dist = brute_nearest(q, points)
            assert rkv_nearest(tree, q).nearest_distance == pytest.approx(
                true_dist
            )

    def test_one_coordinate_constant(self, rng):
        """Zero-extent dimension: volumes vanish, margins carry splits."""
        points = uniform_points(200, 3, seed=241)
        points[:, 1] = 0.5
        tree = RStarTree(3, max_entries=8)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        tree.validate()
        q = rng.uniform(size=3)
        __, true_dist = brute_nearest(q, points)
        assert rkv_nearest(tree, q).nearest_distance == pytest.approx(
            true_dist
        )

    def test_heavy_duplicates_with_deletions(self):
        """Many identical rectangles with interleaved deletes."""
        tree = RStarTree(2, max_entries=6)
        spot = np.array([0.5, 0.5])
        for i in range(100):
            tree.insert_point(spot, i)
        for i in range(0, 100, 2):
            assert tree.delete(spot, spot, i)
        tree.validate()
        assert len(tree) == 50
        remaining = sorted(e for __, __, e in tree.iter_leaf_entries())
        assert remaining == list(range(1, 100, 2))


class TestChurn:
    def test_insert_delete_churn_keeps_exactness(self, rng):
        """Long alternating insert/delete churn at constant size."""
        dim = 3
        points = {i: rng.uniform(size=dim) for i in range(120)}
        tree = RStarTree(dim, max_entries=8)
        for i, p in points.items():
            tree.insert_point(p, i)
        next_id = 120
        for step in range(300):
            victim = int(rng.choice(list(points)))
            assert tree.delete(points[victim], points[victim], victim)
            del points[victim]
            p = rng.uniform(size=dim)
            tree.insert_point(p, next_id)
            points[next_id] = p
            next_id += 1
            if step % 75 == 0:
                tree.validate()
        tree.validate()
        live = np.stack(list(points.values()))
        live_ids = list(points)
        for __ in range(20):
            q = rng.uniform(size=dim)
            idx, true_dist = brute_nearest(q, live)
            result = rkv_nearest(tree, q)
            assert result.nearest_distance == pytest.approx(true_dist)
            assert result.nearest_id in live_ids

    def test_knn_consistency_through_growth(self, rng):
        """k-NN answers remain sorted-consistent as the tree grows."""
        dim = 4
        tree = bulk_load(
            RStarTree(dim), *(lambda p: (p, p))(uniform_points(64, dim,
                                                               seed=242)),
            np.arange(64),
        )
        all_points = [uniform_points(64, dim, seed=242)]
        for batch in range(3):
            extra = uniform_points(40, dim, seed=243 + batch)
            base = sum(len(p) for p in all_points)
            for i, p in enumerate(extra):
                tree.insert_point(p, base + i)
            all_points.append(extra)
            stacked = np.vstack(all_points)
            q = rng.uniform(size=dim)
            result = hs_k_nearest(tree, q, 5)
            dists = np.sort(np.linalg.norm(stacked - q, axis=1))[:5]
            assert np.allclose(result.distances, dists)
        tree.validate()
