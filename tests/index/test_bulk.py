"""Unit tests for STR bulk loading."""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.data import uniform_points
from repro.index.bulk import bulk_load
from repro.index.nnsearch import rkv_nearest
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree


class TestBulkLoad:
    @pytest.mark.parametrize("n", [1, 5, 37, 200, 1500])
    def test_valid_tree_at_many_sizes(self, n):
        points = uniform_points(n, 4, seed=n)
        tree = bulk_load(RStarTree(4), points, points, np.arange(n))
        tree.validate()
        assert len(tree) == n

    def test_all_entries_present(self):
        points = uniform_points(333, 3, seed=14)
        tree = bulk_load(RStarTree(3), points, points, np.arange(333))
        ids = sorted(eid for __, __, eid in tree.iter_leaf_entries())
        assert ids == list(range(333))

    def test_queries_match_insertion_built_tree(self, rng):
        points = uniform_points(400, 5, seed=15)
        bulk = bulk_load(RStarTree(5), points, points, np.arange(400))
        for __ in range(25):
            q = rng.uniform(size=5)
            result = rkv_nearest(bulk, q)
            __, true_dist = brute_nearest(q, points)
            assert result.nearest_distance == pytest.approx(true_dist)

    def test_works_for_xtree(self):
        points = uniform_points(500, 6, seed=16)
        tree = bulk_load(XTree(6), points, points, np.arange(500))
        tree.validate()

    def test_rectangles(self, rng):
        lows = rng.uniform(0.0, 0.5, size=(250, 3))
        highs = lows + rng.uniform(0.0, 0.3, size=(250, 3))
        tree = bulk_load(RStarTree(3), lows, highs, np.arange(250))
        tree.validate()
        for i in range(0, 250, 25):
            assert i in tree.range_query(lows[i], highs[i])

    def test_dynamic_insert_after_bulk(self):
        points = uniform_points(300, 3, seed=17)
        tree = bulk_load(RStarTree(3), points, points, np.arange(300))
        for i in range(50):
            tree.insert_point(np.full(3, (i + 1) / 52.0), 300 + i)
        tree.validate()
        assert len(tree) == 350

    def test_rejects_nonempty_tree(self):
        points = uniform_points(10, 2, seed=0)
        tree = RStarTree(2)
        tree.insert_point([0.5, 0.5], 99)
        with pytest.raises(ValueError):
            bulk_load(tree, points, points, np.arange(10))

    def test_rejects_mismatched_input(self):
        tree = RStarTree(2)
        with pytest.raises(ValueError):
            bulk_load(tree, np.zeros((5, 2)), np.zeros((4, 2)), np.arange(5))
        with pytest.raises(ValueError):
            bulk_load(tree, np.zeros((5, 3)), np.zeros((5, 3)), np.arange(5))
        with pytest.raises(ValueError):
            bulk_load(tree, np.zeros((5, 2)), np.zeros((5, 2)),
                      np.arange(5), fill=0.0)

    def test_empty_input_is_noop(self):
        tree = RStarTree(2)
        bulk_load(tree, np.zeros((0, 2)), np.zeros((0, 2)), [])
        assert len(tree) == 0
        tree.validate()

    def test_fill_factor_controls_leaf_count(self):
        points = uniform_points(1000, 2, seed=18)
        dense = bulk_load(RStarTree(2), points, points, np.arange(1000),
                          fill=1.0)
        sparse = bulk_load(RStarTree(2), points, points, np.arange(1000),
                           fill=0.5)
        dense_leaves = sum(
            1 for __, node in dense.iter_nodes() if node.is_leaf
        )
        sparse_leaves = sum(
            1 for __, node in sparse.iter_nodes() if node.is_leaf
        )
        assert dense_leaves < sparse_leaves
