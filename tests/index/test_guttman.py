"""Tests for the classic Guttman R-tree baseline."""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.data import uniform_points
from repro.index.guttman import GuttmanRTree, _quadratic_split_indices
from repro.index.nnsearch import hs_nearest, rkv_nearest
from repro.index.rstar import RStarTree


def build(points, **kwargs):
    tree = GuttmanRTree(points.shape[1], **kwargs)
    for i, p in enumerate(points):
        tree.insert_point(p, i)
    return tree


class TestQuadraticSplit:
    def test_groups_partition_entries(self, rng):
        lows = rng.uniform(0.0, 0.5, size=(20, 3))
        highs = lows + rng.uniform(0.0, 0.3, size=(20, 3))
        g1, g2 = _quadratic_split_indices(lows, highs, 8)
        combined = sorted(list(g1) + list(g2))
        assert combined == list(range(20))
        assert len(g1) >= 8 and len(g2) >= 8

    def test_seeds_are_far_apart(self):
        """PickSeeds selects the wasteful pair: two opposite corners."""
        lows = np.array([[0.0, 0.0], [0.9, 0.9], [0.1, 0.1], [0.2, 0.1]])
        highs = lows + 0.05
        g1, g2 = _quadratic_split_indices(lows, highs, 1)
        seeds = {int(g1[0]), int(g2[0])}
        assert seeds == {0, 1}

    def test_minimum_fill_respected(self, rng):
        lows = rng.uniform(size=(11, 2))
        highs = lows
        g1, g2 = _quadratic_split_indices(lows, highs, 4)
        assert min(len(g1), len(g2)) >= 4


class TestGuttmanTree:
    def test_structure_valid(self):
        points = uniform_points(400, 3, seed=211)
        tree = build(points)
        tree.validate()
        assert len(tree) == 400

    def test_nn_queries_exact(self, rng):
        points = uniform_points(300, 4, seed=212)
        tree = build(points)
        for __ in range(40):
            q = rng.uniform(size=4)
            __, true_dist = brute_nearest(q, points)
            assert rkv_nearest(tree, q).nearest_distance == pytest.approx(
                true_dist
            )
            assert hs_nearest(tree, q).nearest_distance == pytest.approx(
                true_dist
            )

    def test_deletion_and_condense(self):
        points = uniform_points(200, 2, seed=213)
        tree = build(points)
        for i in range(150):
            assert tree.delete(points[i], points[i], i)
        tree.validate()
        assert len(tree) == 50

    def test_no_forced_reinsert(self, rng):
        """Guttman splits immediately on overflow: inserting a batch never
        triggers the R* reinsertion path (asserted via split counts —
        a Guttman tree ends up with at least as many nodes)."""
        points = uniform_points(300, 3, seed=214)
        guttman = build(points, max_entries=10)
        rstar = RStarTree(3, max_entries=10)
        for i, p in enumerate(points):
            rstar.insert_point(p, i)
        guttman_nodes = sum(1 for __ in guttman.iter_nodes())
        rstar_nodes = sum(1 for __ in rstar.iter_nodes())
        assert guttman_nodes >= rstar_nodes * 0.8

    def test_rstar_packs_no_worse_on_average(self, rng):
        """The R*-tree's heuristics should not lose to Guttman's on leaf
        overlap for uniform data (the motivation for R* baselines)."""
        from repro.geometry.mbr import total_pairwise_overlap

        points = uniform_points(500, 2, seed=215)
        guttman = build(points, max_entries=16)
        rstar = RStarTree(2, max_entries=16)
        for i, p in enumerate(points):
            rstar.insert_point(p, i)

        def directory_overlap(tree):
            rects = [
                node.mbr()
                for __, node in tree.iter_nodes()
                if node.is_leaf
            ]
            return total_pairwise_overlap(rects)

        assert directory_overlap(rstar) <= directory_overlap(guttman) * 1.5
