"""Unit tests for the sequential-scan baseline."""

import numpy as np
import pytest

from helpers import brute_k_nearest, brute_nearest
from repro.data import uniform_points
from repro.index.linear_scan import LinearScan


class TestLinearScan:
    def test_nearest_matches_bruteforce(self, rng):
        points = uniform_points(200, 6, seed=9)
        scan = LinearScan(points)
        for __ in range(30):
            q = rng.uniform(size=6)
            result = scan.nearest(q)
            true_id, true_dist = brute_nearest(q, points)
            assert result.nearest_id == true_id
            assert result.nearest_distance == pytest.approx(true_dist)

    def test_k_nearest(self, rng):
        points = uniform_points(150, 4, seed=10)
        scan = LinearScan(points)
        q = rng.uniform(size=4)
        result = scan.k_nearest(q, 7)
        ids, dists = brute_k_nearest(q, points, 7)
        assert np.allclose(result.distances, dists)
        assert result.ids == [int(i) for i in ids]

    def test_k_must_be_positive(self):
        scan = LinearScan(uniform_points(10, 2, seed=0))
        with pytest.raises(ValueError):
            scan.k_nearest([0.5, 0.5], 0)

    def test_reads_every_page(self):
        points = uniform_points(500, 8, seed=11)
        scan = LinearScan(points)
        result = scan.nearest(np.full(8, 0.5))
        assert result.pages == scan.pages.n_pages
        assert result.distance_computations == 500

    def test_within_radius_matches_bruteforce(self, rng):
        points = uniform_points(200, 3, seed=12)
        scan = LinearScan(points)
        c = rng.uniform(size=3)
        r = 0.3
        found = set(scan.within_radius(c, r).tolist())
        brute = {
            i for i, p in enumerate(points)
            if np.linalg.norm(p - c) <= r + 1e-12
        }
        assert found == brute

    def test_len(self):
        scan = LinearScan(uniform_points(42, 2, seed=0))
        assert len(scan) == 42

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearScan(np.zeros((0, 3)))

    def test_pagination_respects_page_size(self):
        points = uniform_points(100, 8, seed=13)
        scan = LinearScan(points, page_size=1024)
        # 8-d points: 72 bytes each; (1024 - 32) / 72 = 13 per page.
        assert scan.pages.n_pages == int(np.ceil(100 / 13))
