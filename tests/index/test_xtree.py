"""Unit tests for the X-tree (supernodes, overlap-minimal splits)."""

import numpy as np
import pytest

from repro.data import uniform_points
from repro.index.rstar import RStarTree
from repro.index.xtree import MAX_OVERLAP, XTree, _split_overlap_ratio
from repro.index.node import Node


def build_xtree(points, **kwargs):
    tree = XTree(points.shape[1], **kwargs)
    for i, p in enumerate(points):
        tree.insert_point(p, i)
    return tree


class TestBasics:
    def test_is_an_rstar_tree(self):
        assert issubclass(XTree, RStarTree)

    def test_insert_query_roundtrip(self):
        points = uniform_points(300, 6, seed=1)
        tree = build_xtree(points)
        tree.validate()
        for i in range(0, 300, 30):
            assert i in tree.point_query(points[i])

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            XTree(2, max_overlap=1.5)

    def test_default_threshold(self):
        assert XTree(2).max_overlap == MAX_OVERLAP == 0.2


class TestSupernodes:
    def test_overlapping_rectangles_force_supernodes(self, rng):
        """Heavily overlapping rectangle entries leave no good split, so
        directory nodes must grow into supernodes."""
        tree = XTree(4, max_overlap=0.0, max_entries=8)
        for i in range(400):
            low = rng.uniform(0.0, 0.2, size=4)
            high = rng.uniform(0.8, 1.0, size=4)
            tree.insert(low, high, i)
        tree.validate()
        stats = tree.supernode_stats()
        assert stats["supernodes"] >= 1
        assert stats["supernode_blocks"] > stats["supernodes"]

    def test_supernode_reads_count_blocks(self, rng):
        tree = XTree(4, max_overlap=0.0, max_entries=8)
        for i in range(400):
            low = rng.uniform(0.0, 0.2, size=4)
            high = rng.uniform(0.8, 1.0, size=4)
            tree.insert(low, high, i)
        if tree.supernode_stats()["supernodes"] == 0:
            pytest.skip("no supernode formed")
        tree.pages.reset_stats()
        tree.point_query(np.full(4, 0.5))
        # A traversal that crosses a supernode reads multiple blocks.
        assert tree.pages.stats.logical_reads > tree.height

    def test_point_data_rarely_needs_supernodes(self):
        points = uniform_points(500, 2, seed=3)
        tree = build_xtree(points)
        assert tree.supernode_stats()["supernodes"] == 0

    def test_supernode_capacity_extends(self, rng):
        tree = XTree(2, max_entries=8, max_overlap=0.0)
        # Identical rectangles cannot be separated overlap-free.
        for i in range(64):
            tree.insert([0.4, 0.4], [0.6, 0.6], i)
        tree.validate()  # capacity check honours supernode blocks


class TestOverlapMinimalSplit:
    def test_separable_dimension_found(self):
        tree = XTree(2, max_entries=8)
        node = Node(
            False,
            1,
            np.array([[0.0, 0.0], [0.2, 0.0], [0.55, 0.0], [0.8, 0.0]]),
            np.array([[0.1, 1.0], [0.5, 1.0], [0.7, 1.0], [1.0, 1.0]]),
            np.arange(4, dtype=np.int64),
        )
        split = tree._overlap_minimal_split(node)
        assert split is not None
        g1, g2 = split
        assert _split_overlap_ratio(g1, g2) == pytest.approx(0.0)

    def test_inseparable_returns_none(self):
        tree = XTree(2, max_entries=8)
        lows = np.tile([0.1, 0.1], (6, 1))
        highs = np.tile([0.9, 0.9], (6, 1))
        node = Node(False, 1, lows, highs, np.arange(6, dtype=np.int64))
        assert tree._overlap_minimal_split(node) is None

    def test_split_overlap_ratio_degenerate_union(self):
        a = Node(True, 0, np.zeros((2, 2)), np.zeros((2, 2)),
                 np.arange(2, dtype=np.int64))
        b = Node(True, 0, np.ones((2, 2)), np.ones((2, 2)),
                 np.arange(2, dtype=np.int64))
        assert _split_overlap_ratio(a, b) == 0.0


class TestQueriesMatchRStar:
    def test_same_answers_as_rstar(self, rng):
        points = uniform_points(400, 5, seed=4)
        xt = build_xtree(points)
        rt = RStarTree(5)
        for i, p in enumerate(points):
            rt.insert_point(p, i)
        for __ in range(20):
            c = rng.uniform(size=5)
            r = float(rng.uniform(0.1, 0.4))
            assert set(xt.sphere_query(c, r).tolist()) == set(
                rt.sphere_query(c, r).tolist()
            )

    def test_deletions_keep_validity(self):
        points = uniform_points(300, 3, seed=5)
        tree = build_xtree(points)
        for i in range(0, 300, 3):
            assert tree.delete(points[i], points[i], i)
        tree.validate()
        assert len(tree) == 200
