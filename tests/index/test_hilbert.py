"""Tests for the Hilbert curve and Hilbert-packed bulk loading."""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.data import clustered_points, uniform_points
from repro.index.hilbert import _hilbert_key, hilbert_bulk_load, hilbert_indices
from repro.index.nnsearch import rkv_nearest
from repro.index.rstar import RStarTree


class TestHilbertCurve:
    @pytest.mark.parametrize("dim,bits", [(2, 2), (2, 3), (3, 2)])
    def test_bijection(self, dim, bits):
        """The curve visits every grid cell exactly once."""
        side = 1 << bits
        keys = set()
        for flat in range(side ** dim):
            coords = []
            rest = flat
            for __ in range(dim):
                coords.append(rest % side)
                rest //= side
            keys.add(_hilbert_key(coords, bits))
        assert keys == set(range(side ** dim))

    def test_adjacency_2d(self):
        """Consecutive curve positions are grid neighbors (the defining
        locality property of the Hilbert curve)."""
        inverse = {}
        for x in range(8):
            for y in range(8):
                inverse[_hilbert_key([x, y], 3)] = (x, y)
        for k in range(63):
            (x1, y1), (x2, y2) = inverse[k], inverse[k + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_vectorised_indices(self, rng):
        pts = rng.uniform(size=(50, 3))
        keys = hilbert_indices(pts, bits=5)
        assert keys.shape == (50,)
        assert keys.dtype == np.int64
        for i in range(0, 50, 10):
            grid = np.clip((pts[i] * 32).astype(np.int64), 0, 31)
            assert keys[i] == _hilbert_key(grid.tolist(), 5)

    def test_rejects_bad_parameters(self, rng):
        pts = rng.uniform(size=(5, 8))
        with pytest.raises(ValueError):
            hilbert_indices(pts, bits=0)
        with pytest.raises(ValueError):
            hilbert_indices(pts, bits=8)  # 64 bits > budget


class TestHilbertBulkLoad:
    @pytest.mark.parametrize("n", [1, 30, 500])
    def test_valid_tree(self, n):
        points = uniform_points(n, 4, seed=n + 200)
        tree = hilbert_bulk_load(RStarTree(4), points, points, np.arange(n))
        tree.validate()
        assert len(tree) == n

    def test_queries_exact(self, rng):
        points = uniform_points(400, 5, seed=201)
        tree = hilbert_bulk_load(RStarTree(5), points, points,
                                 np.arange(400))
        for __ in range(30):
            q = rng.uniform(size=5)
            result = rkv_nearest(tree, q)
            __, true_dist = brute_nearest(q, points)
            assert result.nearest_distance == pytest.approx(true_dist)

    def test_rejects_nonempty_tree(self):
        points = uniform_points(10, 2, seed=202)
        tree = RStarTree(2)
        tree.insert_point([0.5, 0.5], 0)
        with pytest.raises(ValueError):
            hilbert_bulk_load(tree, points, points, np.arange(10))

    def test_locality_on_clustered_data(self):
        """Hilbert packing produces leaf regions competitive with STR in
        total margin (the locality claim, loosely quantified)."""
        from repro.index.bulk import bulk_load

        points = clustered_points(800, 3, seed=203)
        str_tree = bulk_load(RStarTree(3), points, points, np.arange(800))
        hil_tree = hilbert_bulk_load(RStarTree(3), points, points,
                                     np.arange(800))

        def leaf_margin(tree):
            return sum(
                node.mbr().margin()
                for __, node in tree.iter_nodes()
                if node.is_leaf
            )

        assert leaf_margin(hil_tree) <= leaf_margin(str_tree) * 2.0
