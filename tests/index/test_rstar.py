"""Unit and invariant tests for the R*-tree."""

import numpy as np
import pytest

from repro.data import uniform_points
from repro.index.rstar import RStarTree


def build_tree(points, **kwargs):
    tree = RStarTree(points.shape[1], **kwargs)
    for i, p in enumerate(points):
        tree.insert_point(p, i)
    return tree


class TestInsertion:
    def test_empty_tree(self):
        tree = RStarTree(3)
        assert len(tree) == 0
        assert tree.height == 1
        tree.validate()

    def test_single_insert(self):
        tree = RStarTree(2)
        tree.insert_point([0.5, 0.5], 7)
        assert len(tree) == 1
        assert list(tree.point_query([0.5, 0.5])) == [7]
        tree.validate()

    def test_grows_and_stays_valid(self):
        points = uniform_points(300, 3, seed=1)
        tree = build_tree(points)
        assert len(tree) == 300
        assert tree.height >= 2
        tree.validate()

    def test_insert_many(self):
        points = uniform_points(50, 2, seed=2)
        tree = RStarTree(2)
        tree.insert_many(points, points, range(50))
        assert len(tree) == 50
        tree.validate()

    def test_rejects_bad_entries(self):
        tree = RStarTree(2)
        with pytest.raises(ValueError):
            tree.insert([0.1], [0.2], 0)  # wrong dim
        with pytest.raises(ValueError):
            tree.insert([0.5, 0.5], [0.1, 0.1], 0)  # low > high

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            RStarTree(0)

    def test_duplicate_points_allowed(self):
        tree = RStarTree(2)
        for i in range(80):
            tree.insert_point([0.5, 0.5], i)
        assert len(tree) == 80
        tree.validate()
        assert len(tree.point_query([0.5, 0.5])) == 80

    def test_rectangle_entries(self, rng):
        tree = RStarTree(2)
        lows = rng.uniform(0.0, 0.5, size=(150, 2))
        highs = lows + rng.uniform(0.0, 0.4, size=(150, 2))
        for i in range(150):
            tree.insert(lows[i], highs[i], i)
        tree.validate()
        # Every inserted rectangle is found by a range query on itself.
        for i in range(0, 150, 10):
            found = tree.range_query(lows[i], highs[i])
            assert i in found


class TestQueries:
    def setup_method(self):
        self.points = uniform_points(250, 4, seed=3)
        self.tree = build_tree(self.points)

    def test_point_query_exact_match_only(self, rng):
        for i in range(0, 250, 25):
            hits = self.tree.point_query(self.points[i])
            assert i in hits

    def test_point_query_miss(self):
        # A location not equal to any stored point returns nothing.
        assert self.tree.point_query(np.full(4, 0.5)).size == 0

    def test_range_query_matches_bruteforce(self, rng):
        for __ in range(20):
            low = rng.uniform(0.0, 0.6, size=4)
            high = low + rng.uniform(0.1, 0.4, size=4)
            found = set(self.tree.range_query(low, high).tolist())
            brute = {
                i for i, p in enumerate(self.points)
                if np.all(p >= low) and np.all(p <= high)
            }
            assert found == brute

    def test_sphere_query_matches_bruteforce(self, rng):
        for __ in range(20):
            c = rng.uniform(size=4)
            r = float(rng.uniform(0.1, 0.5))
            found = set(self.tree.sphere_query(c, r).tolist())
            brute = {
                i for i, p in enumerate(self.points)
                if np.linalg.norm(p - c) <= r + 1e-12
            }
            assert found == brute

    def test_leaves_containing(self, rng):
        q = rng.uniform(size=4)
        leaves = self.tree.leaves_containing(q)
        for leaf in leaves:
            assert leaf.is_leaf
            assert leaf.mbr().contains_point(q, atol=1e-12)

    def test_leaves_intersecting_sphere(self, rng):
        c = rng.uniform(size=4)
        leaves = self.tree.leaves_intersecting_sphere(c, 0.2)
        for leaf in leaves:
            assert leaf.mbr().intersects_sphere(c, 0.2)

    def test_iter_leaf_entries_complete(self):
        ids = sorted(eid for __, __, eid in self.tree.iter_leaf_entries())
        assert ids == list(range(250))


class TestDeletion:
    def test_delete_returns_false_for_missing(self):
        tree = build_tree(uniform_points(30, 2, seed=4))
        assert not tree.delete([0.5, 0.5], [0.5, 0.5], 999)

    def test_delete_all_points(self):
        points = uniform_points(120, 3, seed=5)
        tree = build_tree(points)
        order = np.random.default_rng(0).permutation(120)
        for count, i in enumerate(order):
            assert tree.delete(points[i], points[i], int(i))
            if count % 20 == 0:
                tree.validate()
        assert len(tree) == 0

    def test_delete_then_query(self):
        points = uniform_points(150, 3, seed=6)
        tree = build_tree(points)
        for i in range(0, 150, 2):
            tree.delete(points[i], points[i], i)
        tree.validate()
        remaining = set(eid for __, __, eid in tree.iter_leaf_entries())
        assert remaining == set(range(1, 150, 2))

    def test_update_entry(self):
        points = uniform_points(60, 2, seed=7)
        tree = build_tree(points)
        new_pos = np.array([0.123, 0.456])
        tree.update_entry(points[5], points[5], new_pos, new_pos, 5)
        tree.validate()
        assert 5 in tree.point_query(new_pos)
        assert 5 not in tree.point_query(points[5])

    def test_update_missing_raises(self):
        tree = build_tree(uniform_points(10, 2, seed=8))
        with pytest.raises(KeyError):
            tree.update_entry([0.9, 0.9], [0.9, 0.9], [0.1, 0.1],
                              [0.1, 0.1], 999)

    def test_root_shrinks_after_mass_deletion(self):
        points = uniform_points(400, 2, seed=9)
        tree = build_tree(points)
        height_before = tree.height
        for i in range(380):
            tree.delete(points[i], points[i], i)
        tree.validate()
        assert tree.height <= height_before


class TestStructure:
    def test_fanout_derived_from_page_size(self):
        tree = RStarTree(8, page_size=4096)
        # entry = 2*8*8 + 8 = 136 bytes; (4096-32)/136 = 29.
        assert tree.max_entries == 29
        assert tree.min_entries == max(2, int(0.4 * 29))

    def test_explicit_max_entries(self):
        tree = RStarTree(2, max_entries=10)
        assert tree.max_entries == 10

    def test_small_max_entries_clamped(self):
        tree = RStarTree(2, max_entries=2)
        assert tree.max_entries >= 4

    def test_page_accounting_grows_with_queries(self):
        points = uniform_points(200, 4, seed=10)
        tree = build_tree(points)
        tree.pages.reset_stats()
        tree.point_query(points[0])
        assert tree.pages.stats.logical_reads >= tree.height

    def test_validate_catches_corruption(self):
        tree = build_tree(uniform_points(400, 2, seed=11))
        root = tree._read(tree.root_id)
        assert not root.is_leaf  # need a directory level to corrupt
        # Corrupt a parent MBR so it no longer covers its child.
        root.lows = root.lows + 0.25
        tree._write(tree.root_id, root)
        with pytest.raises(AssertionError):
            tree.validate()
