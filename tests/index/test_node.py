"""Unit tests for the shared index node representation."""

import numpy as np
import pytest

from repro.index.node import Node, entry_bytes


def make_node(n=5, dim=3, is_leaf=True, seed=0):
    rng = np.random.default_rng(seed)
    lows = rng.uniform(0.0, 0.5, size=(n, dim))
    highs = lows + rng.uniform(0.0, 0.5, size=(n, dim))
    return Node(is_leaf, 0 if is_leaf else 1, lows, highs,
                np.arange(n, dtype=np.int64))


class TestConstruction:
    def test_empty(self):
        node = Node.empty(True, 0, 4)
        assert node.n_entries == 0
        assert node.dim == 4
        assert node.is_leaf

    def test_validation(self):
        with pytest.raises(ValueError):
            Node(True, 0, np.zeros((2, 2)), np.zeros((3, 2)),
                 np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            Node(True, 0, np.zeros(2), np.zeros(2),
                 np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            Node(True, 0, np.zeros((2, 2)), np.zeros((2, 2)),
                 np.zeros(3, dtype=np.int64))

    def test_mbr(self):
        node = make_node()
        rect = node.mbr()
        assert np.allclose(rect.low, node.lows.min(axis=0))
        assert np.allclose(rect.high, node.highs.max(axis=0))

    def test_mbr_of_empty_raises(self):
        with pytest.raises(ValueError):
            Node.empty(True, 0, 2).mbr()


class TestManipulation:
    def test_append(self):
        node = make_node(n=3, dim=2)
        node.append(np.array([0.1, 0.1]), np.array([0.2, 0.2]), 99)
        assert node.n_entries == 4
        assert node.ids[-1] == 99

    def test_extend(self):
        node = make_node(n=2, dim=2)
        node.extend(np.zeros((3, 2)), np.ones((3, 2)), [7, 8, 9])
        assert node.n_entries == 5
        assert list(node.ids[-3:]) == [7, 8, 9]

    def test_take_is_copy(self):
        node = make_node(n=5)
        sub = node.take([0, 2])
        assert sub.n_entries == 2
        sub.lows[0, 0] = 42.0
        assert node.lows[0, 0] != 42.0

    def test_remove_at(self):
        node = make_node(n=4)
        victim = int(node.ids[1])
        node.remove_at(1)
        assert node.n_entries == 3
        assert victim not in node.ids

    def test_replace_at(self):
        node = make_node(n=3, dim=2)
        node.replace_at(0, np.array([0.0, 0.0]), np.array([1.0, 1.0]), 55)
        assert node.ids[0] == 55
        assert np.allclose(node.highs[0], [1.0, 1.0])

    def test_replace_at_out_of_range(self):
        node = make_node(n=3)
        with pytest.raises(IndexError):
            node.replace_at(10, np.zeros(3), np.ones(3), 1)

    def test_find_child(self):
        node = make_node(n=4, is_leaf=False)
        assert node.find_child(2) == 2
        with pytest.raises(KeyError):
            node.find_child(77)

    def test_entries_iteration(self):
        node = make_node(n=3)
        rows = list(node.entries())
        assert len(rows) == 3
        low, high, eid = rows[1]
        assert np.allclose(low, node.lows[1])
        assert eid == int(node.ids[1])

    def test_repr(self):
        assert "leaf" in repr(make_node())
        assert "dir" in repr(make_node(is_leaf=False))


class TestEntryBytes:
    def test_formula(self):
        # Two float64 vectors plus an 8-byte id.
        assert entry_bytes(8) == 2 * 8 * 8 + 8
        assert entry_bytes(2, id_bytes=4) == 36
