"""Tests for the simulated parallel NN search ([Ber+ 97] baseline)."""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.data import clustered_points, uniform_points
from repro.index.bulk import bulk_load
from repro.index.parallel import (
    parallel_nearest,
    proximity_declustering,
    round_robin_declustering,
)
from repro.index.rstar import RStarTree


@pytest.fixture(scope="module")
def tree_and_points():
    points = uniform_points(500, 5, seed=131)
    tree = bulk_load(
        RStarTree(5, leaf_entry_bytes=5 * 8 + 8), points, points,
        np.arange(500),
    )
    return tree, points


class TestDeclustering:
    @pytest.mark.parametrize(
        "strategy", [round_robin_declustering, proximity_declustering]
    )
    def test_assignment_covers_all_leaves(self, tree_and_points, strategy):
        tree, __ = tree_and_points
        assignment = strategy(tree, 4)
        leaves = {
            pid for pid, node in tree.iter_nodes() if node.is_leaf
        }
        assert set(assignment) == leaves
        assert set(assignment.values()) <= set(range(4))

    @pytest.mark.parametrize(
        "strategy", [round_robin_declustering, proximity_declustering]
    )
    def test_balanced_loads(self, tree_and_points, strategy):
        tree, __ = tree_and_points
        assignment = strategy(tree, 4)
        loads = [0, 0, 0, 0]
        for disk in assignment.values():
            loads[disk] += 1
        assert max(loads) - min(loads) <= max(2, len(assignment) // 4)

    def test_single_disk(self, tree_and_points):
        tree, __ = tree_and_points
        assignment = round_robin_declustering(tree, 1)
        assert set(assignment.values()) == {0}

    def test_rejects_bad_disk_count(self, tree_and_points):
        tree, __ = tree_and_points
        with pytest.raises(ValueError):
            round_robin_declustering(tree, 0)
        with pytest.raises(ValueError):
            proximity_declustering(tree, 0)


class TestParallelNearest:
    @pytest.mark.parametrize("n_disks", [1, 2, 4, 8])
    def test_exact_answers(self, tree_and_points, rng, n_disks):
        tree, points = tree_and_points
        assignment = proximity_declustering(tree, n_disks)
        for __ in range(30):
            q = rng.uniform(size=5)
            result = parallel_nearest(tree, q, assignment, n_disks)
            __, true_dist = brute_nearest(q, points)
            assert result.nearest_distance == pytest.approx(true_dist)

    def test_rounds_bounded_by_pages(self, tree_and_points, rng):
        tree, __ = tree_and_points
        assignment = proximity_declustering(tree, 4)
        result = parallel_nearest(tree, rng.uniform(size=5), assignment, 4)
        assert 1 <= result.rounds <= result.pages
        assert result.speedup_over_serial() >= 1.0

    def test_more_disks_never_more_rounds(self, rng):
        """Parallelism helps: mean rounds are non-increasing in disks."""
        points = clustered_points(600, 4, seed=132)
        tree = bulk_load(
            RStarTree(4, leaf_entry_bytes=4 * 8 + 8), points, points,
            np.arange(600),
        )
        queries = rng.uniform(size=(25, 4))
        mean_rounds = []
        for n_disks in (1, 4, 16):
            assignment = proximity_declustering(tree, n_disks)
            rounds = [
                parallel_nearest(tree, q, assignment, n_disks).rounds
                for q in queries
            ]
            mean_rounds.append(float(np.mean(rounds)))
        assert mean_rounds[0] >= mean_rounds[1] >= mean_rounds[2] - 1e-9

    def test_single_disk_equals_serial_page_count(self, tree_and_points, rng):
        tree, __ = tree_and_points
        assignment = round_robin_declustering(tree, 1)
        result = parallel_nearest(tree, rng.uniform(size=5), assignment, 1)
        assert result.rounds == result.pages

    def test_single_leaf_tree(self, rng):
        points = uniform_points(10, 2, seed=133)
        tree = bulk_load(RStarTree(2), points, points, np.arange(10))
        assignment = round_robin_declustering(tree, 4)
        result = parallel_nearest(tree, [0.5, 0.5], assignment, 4)
        __, true_dist = brute_nearest([0.5, 0.5], points)
        assert result.nearest_distance == pytest.approx(true_dist)

    def test_rejects_bad_disks(self, tree_and_points):
        tree, __ = tree_and_points
        with pytest.raises(ValueError):
            parallel_nearest(tree, np.full(5, 0.5), {}, 0)

    def test_empty_result_accessors(self):
        from repro.index.parallel import ParallelNNResult

        empty = ParallelNNResult()
        with pytest.raises(ValueError):
            empty.nearest_id
        with pytest.raises(ValueError):
            empty.nearest_distance
        assert empty.speedup_over_serial() == 1.0
