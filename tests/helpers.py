"""Shared reference implementations for tests (brute-force baselines)."""

import numpy as np


def brute_nearest(query, points):
    """Reference nearest neighbor: (index, distance)."""
    diffs = np.asarray(points) - np.asarray(query)
    dist_sq = np.einsum("ij,ij->i", diffs, diffs)
    idx = int(np.argmin(dist_sq))
    return idx, float(np.sqrt(dist_sq[idx]))


def brute_k_nearest(query, points, k):
    """Reference k-NN: (indices, distances) sorted ascending."""
    diffs = np.asarray(points) - np.asarray(query)
    dist = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
    order = np.argsort(dist)[:k]
    return order, dist[order]
