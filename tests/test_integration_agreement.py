"""Cross-system integration: every search path gives the same answer.

One shared dataset, five independent machines — linear scan, R*-tree RKV,
X-tree HS, declustered parallel search, and the NN-cell solution-space
index — must agree on every query.  This is the strongest end-to-end
statement the repository makes: the paper's approach is exactly as
correct as exhaustive search, across all the substrates built here.
"""

import numpy as np
import pytest

from repro.core.candidates import SelectorKind
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import clustered_points, fourier_points, uniform_points
from repro.eval.costmodel import expected_leaf_accesses
from repro.index.bulk import bulk_load
from repro.index.linear_scan import LinearScan
from repro.index.nnsearch import hs_nearest, rkv_nearest
from repro.index.parallel import parallel_nearest, proximity_declustering
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree


@pytest.fixture(
    scope="module",
    params=["uniform", "clustered", "fourier"],
)
def world(request):
    dim = 5
    n = 250
    if request.param == "uniform":
        points = uniform_points(n, dim, seed=181)
    elif request.param == "clustered":
        points = clustered_points(n, dim, seed=182)
    else:
        points = fourier_points(n, dim=dim, seed=183)
    ids = np.arange(n)
    rstar = bulk_load(
        RStarTree(dim, leaf_entry_bytes=8 * dim + 8), points, points, ids
    )
    xtree = bulk_load(
        XTree(dim, leaf_entry_bytes=8 * dim + 8), points, points, ids
    )
    scan = LinearScan(points)
    cells = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    assignment = proximity_declustering(rstar, 4)
    return points, rstar, xtree, scan, cells, assignment


def test_all_systems_agree_on_nn_distance(world, rng):
    points, rstar, xtree, scan, cells, assignment = world
    for __ in range(50):
        q = rng.uniform(size=points.shape[1])
        answers = {
            "scan": scan.nearest(q).nearest_distance,
            "rkv(r*)": rkv_nearest(rstar, q).nearest_distance,
            "hs(x)": hs_nearest(xtree, q).nearest_distance,
            "parallel": parallel_nearest(
                rstar, q, assignment, 4
            ).nearest_distance,
            "nn-cell": cells.nearest(q)[1],
        }
        reference = answers.pop("scan")
        for name, value in answers.items():
            assert value == pytest.approx(reference), (
                f"{name} disagrees with the scan at query {q}"
            )


def test_all_systems_agree_on_data_points(world):
    points, rstar, xtree, scan, cells, assignment = world
    for i in range(0, points.shape[0], 25):
        q = points[i]
        assert scan.nearest(q).nearest_distance == pytest.approx(0.0)
        assert rkv_nearest(rstar, q).nearest_distance == pytest.approx(0.0)
        assert hs_nearest(xtree, q).nearest_distance == pytest.approx(0.0)
        assert cells.nearest(q)[1] == pytest.approx(0.0)


def test_cost_model_brackets_measured_tree_accesses(rng):
    """The [BBKK 97]-style analytic estimate and the measured R*-tree
    leaf accesses agree within an order of magnitude on uniform data —
    a sanity link between the theory that motivates the paper and the
    simulator the experiments run on."""
    n, dim = 1500, 6
    points = uniform_points(n, dim, seed=184)
    tree = bulk_load(
        RStarTree(dim, leaf_entry_bytes=8 * dim + 8),
        points, points, np.arange(n),
    )
    points_per_page = tree.leaf_max_entries
    predicted = expected_leaf_accesses(n, dim, points_per_page)
    measured = float(np.mean([
        rkv_nearest(tree, rng.uniform(size=dim)).pages for __ in range(30)
    ]))
    assert predicted / 10 <= measured <= predicted * 10 + tree.height
