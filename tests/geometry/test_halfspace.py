"""Unit tests for bisector half-spaces and constraint systems."""

import numpy as np
import pytest

from repro.geometry.halfspace import (
    HalfspaceSystem,
    bisector,
    bisectors_from_points,
    box_inside_halfspace,
    box_intersects_halfspace,
)
from repro.geometry.mbr import MBR


class TestBisector:
    def test_midpoint_on_plane(self, rng):
        for __ in range(50):
            p = rng.uniform(size=3)
            q = rng.uniform(size=3)
            a, b = bisector(p, q)
            mid = (p + q) / 2.0
            assert float(a @ mid) == pytest.approx(b, abs=1e-9)

    def test_sides(self, rng):
        p = np.array([0.2, 0.2])
        q = np.array([0.8, 0.8])
        a, b = bisector(p, q)
        # Points nearer to p satisfy the constraint.
        assert float(a @ p) < b
        assert float(a @ q) > b
        x = np.array([0.3, 0.1])  # closer to p
        assert float(a @ x) <= b

    def test_equivalence_with_distance_comparison(self, rng):
        for __ in range(100):
            p, q, x = rng.uniform(size=(3, 4))
            a, b = bisector(p, q)
            closer_to_p = np.sum((x - p) ** 2) <= np.sum((x - q) ** 2)
            assert (float(a @ x) <= b + 1e-12) == closer_to_p

    def test_vectorised_matches_scalar(self, rng):
        center = rng.uniform(size=3)
        others = rng.uniform(size=(10, 3))
        a_mat, b_vec = bisectors_from_points(center, others)
        for i in range(10):
            a, b = bisector(center, others[i])
            assert np.allclose(a_mat[i], a)
            assert b_vec[i] == pytest.approx(b)

    def test_vectorised_rejects_1d(self):
        with pytest.raises(ValueError):
            bisectors_from_points([0.5], np.array([0.1]))


class TestBoxHalfspaceTests:
    def test_box_inside(self):
        box = MBR([0.0, 0.0], [0.3, 0.3])
        # Half-space x0 + x1 <= 1 contains the box.
        assert box_inside_halfspace(box, np.array([1.0, 1.0]), 1.0)
        # x0 + x1 <= 0.5 cuts it (corner (0.3, 0.3) violates).
        assert not box_inside_halfspace(box, np.array([1.0, 1.0]), 0.5)

    def test_box_intersects(self):
        box = MBR([0.5, 0.5], [1.0, 1.0])
        # x0 <= 0.6 includes a slab of the box.
        assert box_intersects_halfspace(box, np.array([1.0, 0.0]), 0.6)
        # x0 <= 0.4 misses it entirely.
        assert not box_intersects_halfspace(box, np.array([1.0, 0.0]), 0.4)

    def test_negative_coefficients(self):
        box = MBR([0.0], [1.0])
        # -x0 <= -0.5 means x0 >= 0.5: intersects but not contains.
        a = np.array([-1.0])
        assert box_intersects_halfspace(box, a, -0.5)
        assert not box_inside_halfspace(box, a, -0.5)


class TestHalfspaceSystem:
    def make_cell(self, rng, n=12, dim=3, center_idx=0):
        pts = rng.uniform(size=(n, dim))
        others = np.delete(pts, center_idx, axis=0)
        ids = np.delete(np.arange(n), center_idx)
        system = HalfspaceSystem.nn_cell(
            pts[center_idx], others, MBR.unit_cube(dim), point_ids=ids
        )
        return pts, system

    def test_center_is_member(self, rng):
        pts, system = self.make_cell(rng)
        assert system.contains(pts[0])
        assert system.violations(pts[0]) == 0

    def test_contains_matches_nn_semantics(self, rng):
        pts, system = self.make_cell(rng)
        for __ in range(200):
            x = rng.uniform(size=3)
            dists = np.linalg.norm(pts - x, axis=1)
            is_nn = int(np.argmin(dists)) == 0
            if abs(np.sort(dists)[0] - np.sort(dists)[1]) < 1e-9:
                continue  # skip ties
            assert system.contains(x) == is_nn

    def test_empty_system_is_whole_box(self):
        system = HalfspaceSystem.empty(MBR.unit_cube(2))
        assert system.n_constraints == 0
        assert system.contains([0.5, 0.5])
        assert not system.contains([1.5, 0.5])

    def test_with_constraint_appends(self, rng):
        pts, system = self.make_cell(rng)
        a = np.array([1.0, 0.0, 0.0])
        bigger = system.with_constraint(a, 0.9, point_id=99)
        assert bigger.n_constraints == system.n_constraints + 1
        assert bigger.references(99)
        assert not system.references(99)

    def test_without_point_removes_rows(self, rng):
        pts, system = self.make_cell(rng)
        reduced = system.without_point(3)
        assert reduced.n_constraints == system.n_constraints - 1
        assert not reduced.references(3)

    def test_clipped_to(self, rng):
        pts, system = self.make_cell(rng)
        clip = MBR([0.0, 0.0, 0.0], [0.5, 0.5, 0.5])
        clipped = system.clipped_to(clip)
        assert clipped.n_constraints == system.n_constraints
        assert clipped.box.high[0] == 0.5

    def test_clipped_to_disjoint_raises(self, rng):
        pts, system = self.make_cell(rng)
        with pytest.raises(ValueError):
            system.clipped_to(MBR([2.0, 2.0, 2.0], [3.0, 3.0, 3.0]))

    def test_reduced_to_box_preserves_membership(self, rng):
        """Within the clip box, the reduced system accepts exactly the
        same points as the full one."""
        pts, system = self.make_cell(rng, n=25)
        clip = MBR(pts[0] - 0.2, pts[0] + 0.2).intersection(system.box)
        reduced = system.reduced_to_box(clip)
        assert reduced.n_constraints <= system.n_constraints
        for __ in range(300):
            x = rng.uniform(clip.low, clip.high)
            assert reduced.contains(x) == system.contains(x)

    def test_reduced_to_box_drops_far_constraints(self, rng):
        pts = np.array([[0.5, 0.5], [0.52, 0.5], [0.9, 0.9]])
        system = HalfspaceSystem.nn_cell(
            pts[0], pts[1:], MBR.unit_cube(2), point_ids=np.array([1, 2])
        )
        tiny = MBR([0.49, 0.49], [0.515, 0.51])
        reduced = system.reduced_to_box(tiny)
        # The bisector with the far point (0.9, 0.9) cannot cut the tiny
        # box; the one with the close point must stay.
        assert reduced.n_constraints == 1
        assert reduced.point_ids[0] == 1

    def test_distances_to_planes_are_half_point_distances(self, rng):
        pts, system = self.make_cell(rng)
        dist = system.distances_to_planes(pts[0])
        point_dist = np.linalg.norm(pts[1:] - pts[0], axis=1)
        assert np.allclose(dist, point_dist / 2.0)

    def test_validation_errors(self):
        box = MBR.unit_cube(2)
        with pytest.raises(ValueError):
            HalfspaceSystem(np.zeros(3), np.zeros(3), box)  # A not 2-d
        with pytest.raises(ValueError):
            HalfspaceSystem(np.zeros((2, 2)), np.zeros(3), box)
        with pytest.raises(ValueError):
            HalfspaceSystem(np.zeros((2, 3)), np.zeros(2), box)
        with pytest.raises(ValueError):
            HalfspaceSystem(
                np.zeros((2, 2)), np.zeros(2), box, point_ids=np.zeros(3)
            )

    def test_repr(self, rng):
        __, system = self.make_cell(rng)
        assert "n_constraints=11" in repr(system)
