"""Unit tests for the MBR rectangle algebra."""

import numpy as np
import pytest

from repro.geometry.mbr import (
    MBR,
    contains_point_arrays,
    intersect_arrays,
    mbr_of_points,
    overlap_volume_arrays,
    total_pairwise_overlap,
    union_all,
)


class TestConstruction:
    def test_basic_bounds(self):
        rect = MBR([0.0, 0.1], [0.5, 0.9])
        assert rect.dim == 2
        assert np.allclose(rect.extents, [0.5, 0.8])
        assert np.allclose(rect.center, [0.25, 0.5])

    def test_rejects_low_above_high(self):
        with pytest.raises(ValueError):
            MBR([0.5], [0.2])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MBR([0.0, 0.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR([], [])

    def test_rejects_matrix_bounds(self):
        with pytest.raises(ValueError):
            MBR(np.zeros((2, 2)), np.ones((2, 2)))

    def test_from_point_is_degenerate(self):
        rect = MBR.from_point([0.3, 0.4, 0.5])
        assert rect.volume() == 0.0
        assert rect.is_degenerate()
        assert rect.contains_point([0.3, 0.4, 0.5])

    def test_unit_cube(self):
        cube = MBR.unit_cube(5)
        assert cube.volume() == pytest.approx(1.0)
        assert cube.margin() == pytest.approx(5.0)

    def test_unit_cube_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            MBR.unit_cube(0)

    def test_bounds_are_immutable(self):
        rect = MBR.unit_cube(2)
        with pytest.raises(ValueError):
            rect.low[0] = 0.5

    def test_tiny_negative_extent_clamped(self):
        rect = MBR([0.5], [0.5 - 1e-15])
        assert rect.extents[0] == 0.0


class TestPredicates:
    def test_contains_point_boundary(self):
        rect = MBR([0.0, 0.0], [1.0, 1.0])
        assert rect.contains_point([0.0, 1.0])
        assert not rect.contains_point([1.0001, 0.5])
        assert rect.contains_point([1.0001, 0.5], atol=1e-3)

    def test_contains_rect(self):
        outer = MBR([0.0, 0.0], [1.0, 1.0])
        inner = MBR([0.2, 0.2], [0.8, 0.8])
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_intersects(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.4, 0.4], [1.0, 1.0])
        c = MBR([0.6, 0.6], [1.0, 1.0])
        assert a.intersects(b)
        assert not a.intersects(c)
        # Touching rectangles intersect.
        d = MBR([0.5, 0.0], [1.0, 0.5])
        assert a.intersects(d)

    def test_intersects_sphere(self):
        rect = MBR([0.0, 0.0], [1.0, 1.0])
        assert rect.intersects_sphere([0.5, 0.5], 0.01)
        assert rect.intersects_sphere([1.5, 0.5], 0.5)
        assert not rect.intersects_sphere([1.5, 0.5], 0.49)
        # Corner distance: sqrt(2*0.25) ~ 0.707.
        assert rect.intersects_sphere([1.5, 1.5], 0.71)
        assert not rect.intersects_sphere([1.5, 1.5], 0.70)


class TestCombination:
    def test_union(self):
        a = MBR([0.0, 0.2], [0.4, 0.6])
        b = MBR([0.3, 0.0], [0.9, 0.5])
        u = a.union(b)
        assert np.allclose(u.low, [0.0, 0.0])
        assert np.allclose(u.high, [0.9, 0.6])

    def test_union_point(self):
        rect = MBR([0.2, 0.2], [0.4, 0.4]).union_point([0.9, 0.1])
        assert np.allclose(rect.low, [0.2, 0.1])
        assert np.allclose(rect.high, [0.9, 0.4])

    def test_intersection(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.25, 0.25], [1.0, 1.0])
        inter = a.intersection(b)
        assert inter is not None
        assert np.allclose(inter.low, [0.25, 0.25])
        assert np.allclose(inter.high, [0.5, 0.5])

    def test_intersection_disjoint_is_none(self):
        a = MBR([0.0], [0.4])
        b = MBR([0.6], [1.0])
        assert a.intersection(b) is None

    def test_overlap_volume(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.25, 0.25], [0.75, 0.75])
        assert a.overlap_volume(b) == pytest.approx(0.0625)
        c = MBR([0.9, 0.9], [1.0, 1.0])
        assert a.overlap_volume(c) == 0.0

    def test_enlargement(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.5, 0.5], [1.0, 1.0])
        assert a.enlargement(b) == pytest.approx(1.0 - 0.25)
        assert a.enlargement(a) == pytest.approx(0.0)

    def test_split_at(self):
        rect = MBR([0.0, 0.0], [1.0, 2.0])
        lower, upper = rect.split_at(1, 0.5)
        assert np.allclose(lower.high, [1.0, 0.5])
        assert np.allclose(upper.low, [0.0, 0.5])
        assert lower.volume() + upper.volume() == pytest.approx(rect.volume())

    def test_split_at_clamps_value(self):
        rect = MBR([0.0], [1.0])
        lower, upper = rect.split_at(0, 5.0)
        assert lower.volume() == pytest.approx(1.0)
        assert upper.volume() == pytest.approx(0.0)

    def test_split_at_bad_dim(self):
        with pytest.raises(IndexError):
            MBR([0.0], [1.0]).split_at(3, 0.5)


class TestGridCell:
    def test_partition_covers_rect(self):
        rect = MBR([0.0, 0.0], [1.0, 2.0])
        counts = [2, 3]
        total = 0.0
        for i in range(2):
            for j in range(3):
                cell = rect.grid_cell(counts, [i, j])
                total += cell.volume()
        assert total == pytest.approx(rect.volume())

    def test_last_cell_reaches_boundary(self):
        rect = MBR([0.0], [1.0])
        cell = rect.grid_cell([3], [2])
        assert cell.high[0] == rect.high[0]

    def test_rejects_bad_index(self):
        rect = MBR([0.0], [1.0])
        with pytest.raises(ValueError):
            rect.grid_cell([2], [2])
        with pytest.raises(ValueError):
            rect.grid_cell([0], [0])


class TestDunder:
    def test_equality_and_hash(self):
        a = MBR([0.0, 0.1], [0.5, 0.9])
        b = MBR([0.0, 0.1], [0.5, 0.9])
        c = MBR([0.0, 0.1], [0.5, 0.8])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not an mbr"

    def test_approx_equal(self):
        a = MBR([0.0], [1.0])
        b = MBR([1e-12], [1.0 - 1e-12])
        assert a.approx_equal(b)
        assert not a.approx_equal(MBR([0.1], [1.0]))

    def test_repr_mentions_bounds(self):
        assert "low" in repr(MBR([0.0], [1.0]))

    def test_as_array_copies(self):
        rect = MBR([0.0], [1.0])
        arr = rect.as_array()
        arr[0, 0] = 99.0
        assert rect.low[0] == 0.0


class TestFreeFunctions:
    def test_mbr_of_points(self, rng):
        pts = rng.uniform(size=(30, 3))
        rect = mbr_of_points(pts)
        assert np.allclose(rect.low, pts.min(axis=0))
        assert np.allclose(rect.high, pts.max(axis=0))

    def test_mbr_of_points_rejects_empty(self):
        with pytest.raises(ValueError):
            mbr_of_points(np.zeros((0, 2)))

    def test_union_all(self):
        rects = [MBR([i / 10, 0.0], [i / 10 + 0.1, 0.5]) for i in range(5)]
        u = union_all(rects)
        assert np.allclose(u.low, [0.0, 0.0])
        assert np.allclose(u.high, [0.5, 0.5])

    def test_union_all_rejects_empty(self):
        with pytest.raises(ValueError):
            union_all([])

    def test_intersect_arrays_matches_scalar(self, rng):
        lows = rng.uniform(0.0, 0.5, size=(20, 3))
        highs = lows + rng.uniform(0.0, 0.5, size=(20, 3))
        probe = MBR([0.3, 0.3, 0.3], [0.6, 0.6, 0.6])
        mask = intersect_arrays(lows, highs, probe)
        for i in range(20):
            assert mask[i] == MBR(lows[i], highs[i]).intersects(probe)

    def test_contains_point_arrays_matches_scalar(self, rng):
        lows = rng.uniform(0.0, 0.5, size=(20, 3))
        highs = lows + rng.uniform(0.0, 0.5, size=(20, 3))
        q = rng.uniform(size=3)
        mask = contains_point_arrays(lows, highs, q)
        for i in range(20):
            assert mask[i] == MBR(lows[i], highs[i]).contains_point(q)

    def test_overlap_volume_arrays_matches_scalar(self, rng):
        lows = rng.uniform(0.0, 0.5, size=(20, 3))
        highs = lows + rng.uniform(0.0, 0.5, size=(20, 3))
        probe = MBR([0.2] * 3, [0.7] * 3)
        vols = overlap_volume_arrays(lows, highs, probe)
        for i in range(20):
            assert vols[i] == pytest.approx(
                MBR(lows[i], highs[i]).overlap_volume(probe)
            )

    def test_total_pairwise_overlap(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.25, 0.25], [0.75, 0.75])
        c = MBR([0.9, 0.9], [1.0, 1.0])
        assert total_pairwise_overlap([a, b, c]) == pytest.approx(0.0625)
        assert total_pairwise_overlap([a]) == 0.0
