"""Unit tests for distance functions and RKV pruning bounds."""

import numpy as np
import pytest

from repro.geometry.distance import (
    distances_to_points,
    euclidean,
    euclidean_sq,
    maxdist_sq,
    mindist_sq,
    mindist_sq_arrays,
    minmaxdist_sq,
    minmaxdist_sq_arrays,
    nearest_of,
    pairwise_sq,
)


class TestPointDistances:
    def test_euclidean(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)
        assert euclidean_sq([0.0, 0.0], [3.0, 4.0]) == pytest.approx(25.0)

    def test_pairwise_matches_direct(self, rng):
        pts = rng.uniform(size=(15, 4))
        mat = pairwise_sq(pts)
        for i in range(15):
            for j in range(15):
                assert mat[i, j] == pytest.approx(
                    euclidean_sq(pts[i], pts[j]), abs=1e-9
                )

    def test_pairwise_diagonal_nonnegative(self, rng):
        pts = rng.uniform(size=(50, 8))
        mat = pairwise_sq(pts)
        assert np.all(mat >= 0.0)
        assert np.allclose(np.diag(mat), 0.0, atol=1e-9)

    def test_distances_to_points(self, rng):
        pts = rng.uniform(size=(20, 3))
        q = rng.uniform(size=3)
        dists = distances_to_points(q, pts)
        expected = [euclidean_sq(q, p) for p in pts]
        assert np.allclose(dists, expected)

    def test_nearest_of(self, rng):
        pts = rng.uniform(size=(25, 5))
        q = rng.uniform(size=5)
        idx, dist = nearest_of(q, pts)
        expected = np.linalg.norm(pts - q, axis=1)
        assert idx == int(np.argmin(expected))
        assert dist == pytest.approx(float(np.min(expected)))


class TestRectBounds:
    def setup_method(self):
        self.low = np.array([0.2, 0.2])
        self.high = np.array([0.6, 0.8])

    def test_mindist_inside_is_zero(self):
        assert mindist_sq([0.4, 0.5], self.low, self.high) == 0.0

    def test_mindist_outside(self):
        # Query left of the rect: distance to the nearest face.
        assert mindist_sq([0.0, 0.5], self.low, self.high) == pytest.approx(
            0.04
        )
        # Diagonal corner query.
        assert mindist_sq([0.0, 0.0], self.low, self.high) == pytest.approx(
            0.08
        )

    def test_maxdist_is_farthest_corner(self):
        # From the origin the farthest corner is (0.6, 0.8).
        assert maxdist_sq([0.0, 0.0], self.low, self.high) == pytest.approx(
            0.36 + 0.64
        )

    def test_ordering_mindist_minmax_maxdist(self, rng):
        for __ in range(200):
            low = rng.uniform(0.0, 0.5, size=4)
            high = low + rng.uniform(0.01, 0.5, size=4)
            q = rng.uniform(-0.5, 1.5, size=4)
            mind = mindist_sq(q, low, high)
            minmax = minmaxdist_sq(q, low, high)
            maxd = maxdist_sq(q, low, high)
            assert mind <= minmax + 1e-12
            assert minmax <= maxd + 1e-12

    def test_minmaxdist_bounds_an_object_on_faces(self, rng):
        """MINMAXDIST upper-bounds the distance to the nearest point of a
        set whose every face of the MBR touches some member."""
        for __ in range(50):
            pts = rng.uniform(size=(30, 3))
            low, high = pts.min(axis=0), pts.max(axis=0)
            q = rng.uniform(-0.5, 1.5, size=3)
            nn_sq = float(np.min(np.sum((pts - q) ** 2, axis=1)))
            assert nn_sq <= minmaxdist_sq(q, low, high) + 1e-9

    def test_degenerate_rect_all_bounds_equal(self):
        p = np.array([0.3, 0.7])
        q = [0.1, 0.1]
        mind = mindist_sq(q, p, p)
        assert mind == pytest.approx(minmaxdist_sq(q, p, p))
        assert mind == pytest.approx(maxdist_sq(q, p, p))
        assert mind == pytest.approx(euclidean_sq(q, p))


class TestVectorisedBounds:
    def test_mindist_arrays_match_scalar(self, rng):
        lows = rng.uniform(0.0, 0.5, size=(20, 4))
        highs = lows + rng.uniform(0.01, 0.5, size=(20, 4))
        q = rng.uniform(size=4)
        vec = mindist_sq_arrays(q, lows, highs)
        for i in range(20):
            assert vec[i] == pytest.approx(mindist_sq(q, lows[i], highs[i]))

    def test_minmaxdist_arrays_match_scalar(self, rng):
        lows = rng.uniform(0.0, 0.5, size=(20, 4))
        highs = lows + rng.uniform(0.01, 0.5, size=(20, 4))
        q = rng.uniform(size=4)
        vec = minmaxdist_sq_arrays(q, lows, highs)
        for i in range(20):
            assert vec[i] == pytest.approx(
                minmaxdist_sq(q, lows[i], highs[i])
            )
