"""Property-based tests for the index substrate.

Random insert/delete/query interleavings on the R*-tree and X-tree must
preserve structural invariants and query equivalence with brute force.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bulk import bulk_load
from repro.index.nnsearch import hs_nearest, rkv_nearest
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree


@st.composite
def point_sets(draw, max_points=120):
    n = draw(st.integers(5, max_points))
    dim = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    return rng.uniform(size=(n, dim))


@settings(max_examples=25, deadline=None)
@given(points=point_sets(), tree_kind=st.sampled_from(["rstar", "xtree"]))
def test_insertion_preserves_invariants_and_nn(points, tree_kind):
    cls = RStarTree if tree_kind == "rstar" else XTree
    tree = cls(points.shape[1], max_entries=8)
    for i, p in enumerate(points):
        tree.insert_point(p, i)
    tree.validate()
    rng = np.random.default_rng(0)
    for __ in range(5):
        q = rng.uniform(size=points.shape[1])
        dist = np.min(np.linalg.norm(points - q, axis=1))
        assert abs(rkv_nearest(tree, q).nearest_distance - dist) < 1e-9
        assert abs(hs_nearest(tree, q).nearest_distance - dist) < 1e-9


@settings(max_examples=20, deadline=None)
@given(points=point_sets(max_points=80), data=st.data())
def test_random_deletions_keep_answers_exact(points, data):
    n, dim = points.shape
    tree = bulk_load(RStarTree(dim, max_entries=8), points, points,
                     np.arange(n))
    n_delete = data.draw(st.integers(0, n - 1))
    victims = data.draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=n_delete,
            max_size=n_delete,
            unique=True,
        )
    )
    for v in victims:
        assert tree.delete(points[v], points[v], v)
    tree.validate()
    alive = np.asarray(sorted(set(range(n)) - set(victims)))
    rng = np.random.default_rng(1)
    for __ in range(5):
        q = rng.uniform(size=dim)
        dist = np.min(np.linalg.norm(points[alive] - q, axis=1))
        assert abs(rkv_nearest(tree, q).nearest_distance - dist) < 1e-9


@settings(max_examples=25, deadline=None)
@given(points=point_sets(max_points=100), data=st.data())
def test_range_queries_exact_after_bulk_load(points, data):
    n, dim = points.shape
    tree = bulk_load(RStarTree(dim, max_entries=8), points, points,
                     np.arange(n))
    low = np.asarray(
        data.draw(
            st.lists(st.floats(0.0, 0.8), min_size=dim, max_size=dim)
        )
    )
    high = low + np.asarray(
        data.draw(
            st.lists(st.floats(0.0, 0.5), min_size=dim, max_size=dim)
        )
    )
    found = set(tree.range_query(low, high).tolist())
    brute = {
        i for i, p in enumerate(points)
        if np.all(p >= low) and np.all(p <= high)
    }
    assert found == brute
