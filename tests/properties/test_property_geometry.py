"""Property-based tests (hypothesis) for the geometry substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry.distance import (
    maxdist_sq,
    mindist_sq,
    minmaxdist_sq,
)
from repro.geometry.halfspace import bisector
from repro.geometry.mbr import MBR


def rects(dim):
    """Strategy producing valid MBRs in [-1, 2]^dim."""
    coords = hnp.arrays(
        np.float64,
        (2, dim),
        elements=st.floats(-1.0, 2.0, allow_nan=False),
    )
    return coords.map(
        lambda a: MBR(np.minimum(a[0], a[1]), np.maximum(a[0], a[1]))
    )


def points(dim):
    return hnp.arrays(
        np.float64, (dim,), elements=st.floats(-1.0, 2.0, allow_nan=False)
    )


DIM = 3


@settings(max_examples=150, deadline=None)
@given(a=rects(DIM), b=rects(DIM))
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains(a, atol=1e-12)
    assert u.contains(b, atol=1e-12)


@settings(max_examples=150, deadline=None)
@given(a=rects(DIM), b=rects(DIM))
def test_overlap_symmetric_and_bounded(a, b):
    ov = a.overlap_volume(b)
    assert ov == b.overlap_volume(a)
    assert 0.0 <= ov <= min(a.volume(), b.volume()) + 1e-12


@settings(max_examples=150, deadline=None)
@given(a=rects(DIM), b=rects(DIM))
def test_intersection_consistent_with_predicates(a, b):
    inter = a.intersection(b)
    if inter is None:
        assert not a.intersects(b) or a.overlap_volume(b) == 0.0
    else:
        assert a.intersects(b)
        assert a.contains(inter, atol=1e-12)
        assert b.contains(inter, atol=1e-12)
        assert inter.volume() <= min(a.volume(), b.volume()) + 1e-12


@settings(max_examples=150, deadline=None)
@given(rect=rects(DIM), q=points(DIM))
def test_distance_bound_ordering(rect, q):
    mind = mindist_sq(q, rect.low, rect.high)
    minmax = minmaxdist_sq(q, rect.low, rect.high)
    maxd = maxdist_sq(q, rect.low, rect.high)
    assert mind <= minmax + 1e-9
    assert minmax <= maxd + 1e-9


@settings(max_examples=150, deadline=None)
@given(rect=rects(DIM), q=points(DIM))
def test_mindist_zero_iff_inside(rect, q):
    inside = rect.contains_point(q)
    mind = mindist_sq(q, rect.low, rect.high)
    outside_gap = float(
        np.max(np.clip(np.maximum(rect.low - q, q - rect.high), 0.0, None))
    )
    if inside:
        assert mind == 0.0
    elif outside_gap > 1e-6:  # clearly outside: beyond fp underflow range
        assert mind > 0.0


@settings(max_examples=150, deadline=None)
@given(p=points(DIM), q=points(DIM), x=points(DIM))
def test_bisector_matches_distance_comparison(p, q, x):
    a, b = bisector(p, q)
    lhs = float(a @ x)
    closer_to_p = np.sum((x - p) ** 2) <= np.sum((x - q) ** 2) + 1e-9
    if lhs < b - 1e-9:
        assert closer_to_p
    if lhs > b + 1e-9:
        assert not closer_to_p


@settings(max_examples=100, deadline=None)
@given(rect=rects(DIM), data=st.data())
def test_split_preserves_volume(rect, data):
    dim = data.draw(st.integers(0, DIM - 1))
    frac = data.draw(st.floats(0.0, 1.0))
    value = rect.low[dim] + frac * (rect.high[dim] - rect.low[dim])
    lower, upper = rect.split_at(dim, value)
    assert lower.volume() + upper.volume() <= rect.volume() + 1e-9
    assert rect.contains(lower, atol=1e-12)
    assert rect.contains(upper, atol=1e-12)
