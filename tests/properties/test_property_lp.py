"""Property-based tests for the LP substrate.

The central property: the from-scratch simplex and scipy's HiGHS agree on
status and optimal objective for arbitrary box-bounded systems — the LP
layer is the foundation of every approximation guarantee upstream.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.interface import maximize


@st.composite
def lp_problems(draw):
    d = draw(st.integers(2, 5))
    m = draw(st.integers(0, 12))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31)))
    a = rng.normal(size=(m, d))
    # Mix of feasible and infeasible systems: offset rows around a base
    # point by signed slack.
    x0 = rng.uniform(0.0, 1.0, size=d)
    slack = draw(
        st.lists(st.floats(-0.4, 0.8), min_size=m, max_size=m)
    )
    b = a @ x0 + np.asarray(slack)
    c = rng.normal(size=d)
    return c, a, b, np.zeros(d), np.ones(d)


@settings(max_examples=100, deadline=None)
@given(problem=lp_problems())
def test_simplex_agrees_with_scipy(problem):
    c, a, b, lb, ub = problem
    ours = maximize(c, a, b, lb, ub, backend="simplex")
    ref = maximize(c, a, b, lb, ub, backend="scipy")
    assert ours.status == ref.status
    if ours.status == "optimal":
        assert abs(ours.objective - ref.objective) < 1e-6


@settings(max_examples=100, deadline=None)
@given(problem=lp_problems())
def test_optimal_solutions_are_feasible(problem):
    c, a, b, lb, ub = problem
    res = maximize(c, a, b, lb, ub, backend="simplex")
    if res.status != "optimal":
        return
    assert np.all(res.x >= lb - 1e-9)
    assert np.all(res.x <= ub + 1e-9)
    if a.shape[0]:
        assert np.all(a @ res.x <= b + 1e-6)


@settings(max_examples=60, deadline=None)
@given(problem=lp_problems(), scale=st.floats(0.1, 10.0))
def test_objective_scaling_invariance(problem, scale):
    """Scaling the objective scales the optimum but not the argmax set."""
    c, a, b, lb, ub = problem
    base = maximize(c, a, b, lb, ub, backend="simplex")
    scaled = maximize(scale * c, a, b, lb, ub, backend="simplex")
    assert base.status == scaled.status
    if base.status == "optimal":
        assert abs(scaled.objective - scale * base.objective) < 1e-6


@settings(max_examples=60, deadline=None)
@given(problem=lp_problems())
def test_adding_constraints_never_improves(problem):
    """Monotonicity: dropping rows can only increase the maximum — the
    LP-level statement behind Lemma 1."""
    c, a, b, lb, ub = problem
    if a.shape[0] < 2:
        return
    full = maximize(c, a, b, lb, ub, backend="simplex")
    half = maximize(c, a[::2], b[::2], lb, ub, backend="simplex")
    if full.status == "optimal":
        assert half.status == "optimal"
        assert half.objective >= full.objective - 1e-7
