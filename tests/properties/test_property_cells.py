"""Property-based tests for the paper's core guarantees.

* no false dismissals: the cell index always returns the exact nearest
  neighbor, for arbitrary point sets, selectors and decompositions;
* Lemma 1 as a property: constraint subsets only enlarge approximations;
* NN-cells tile the data space: every generic point has exactly one owner.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximation import approximate_cell
from repro.core.candidates import SelectorKind
from repro.core.constraints import cell_system
from repro.core.decomposition import DecompositionConfig
from repro.core.nncell_index import BuildConfig, NNCellIndex


@st.composite
def small_point_sets(draw):
    n = draw(st.integers(3, 35))
    dim = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    return rng.uniform(size=(n, dim))


@settings(max_examples=15, deadline=None)
@given(
    points=small_point_sets(),
    selector=st.sampled_from(list(SelectorKind)),
    decompose=st.booleans(),
)
def test_no_false_dismissals(points, selector, decompose):
    config = BuildConfig(
        selector=selector,
        decompose=decompose,
        decomposition=DecompositionConfig(k_max=4),
    )
    index = NNCellIndex.build(points, config)
    rng = np.random.default_rng(7)
    for __ in range(10):
        q = rng.uniform(size=points.shape[1])
        __, dist, __ = index.nearest(q)
        true_dist = float(np.min(np.linalg.norm(points - q, axis=1)))
        assert abs(dist - true_dist) < 1e-9


@settings(max_examples=25, deadline=None)
@given(points=small_point_sets(), data=st.data())
def test_lemma1_subset_monotonicity(points, data):
    n = points.shape[0]
    center = data.draw(st.integers(0, n - 1))
    others = [i for i in range(n) if i != center]
    subset_size = data.draw(st.integers(1, len(others)))
    subset = data.draw(
        st.lists(
            st.sampled_from(others),
            min_size=subset_size,
            max_size=subset_size,
            unique=True,
        )
    )
    full = approximate_cell(
        cell_system(points, center, others), center=points[center]
    )
    partial = approximate_cell(
        cell_system(points, center, subset), center=points[center]
    )
    assert partial.contains(full, atol=1e-7)


@settings(max_examples=15, deadline=None)
@given(points=small_point_sets())
def test_cells_tile_the_data_space(points):
    """Each generic query point lies in the (exact) cell of its NN and in
    no other exact cell; with approximations it lies in >= 1 rectangle."""
    n = points.shape[0]
    index = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.CORRECT)
    )
    rng = np.random.default_rng(11)
    for __ in range(10):
        q = rng.uniform(size=points.shape[1])
        dists = np.linalg.norm(points - q, axis=1)
        order = np.argsort(dists)
        if dists[order[1]] - dists[order[0]] < 1e-6:
            continue  # near-tie: ownership numerically ambiguous
        owner = int(order[0])
        inside = [
            i for i in range(n)
            if index.constraint_system(i).contains(q)
        ]
        assert inside == [owner]


@settings(max_examples=15, deadline=None)
@given(points=small_point_sets(), data=st.data())
def test_dynamic_insert_preserves_exactness(points, data):
    index = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    dim = points.shape[1]
    extra = data.draw(st.integers(1, 4))
    rng = np.random.default_rng(13)
    for __ in range(extra):
        index.insert(rng.uniform(size=dim))
    live = index.points[index.active_ids]
    for __ in range(8):
        q = rng.uniform(size=dim)
        __, dist, __ = index.nearest(q)
        true_dist = float(np.min(np.linalg.norm(live - q, axis=1)))
        assert abs(dist - true_dist) < 1e-9
