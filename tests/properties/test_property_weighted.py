"""Property-based tests for the weighted-metric extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weighted import WeightedNNCellIndex, weighted_distances
from repro.geometry.halfspace import bisectors_from_points


@st.composite
def weighted_worlds(draw):
    dim = draw(st.integers(2, 4))
    n = draw(st.integers(3, 25))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    points = rng.uniform(size=(n, dim))
    weights = np.asarray(
        draw(
            st.lists(
                st.floats(0.05, 20.0),
                min_size=dim,
                max_size=dim,
            )
        )
    )
    return points, weights


@settings(max_examples=15, deadline=None)
@given(world=weighted_worlds(), max_constraints=st.sampled_from([None, 6]))
def test_weighted_index_always_exact(world, max_constraints):
    points, weights = world
    index = WeightedNNCellIndex(
        points, weights, max_constraints=max_constraints
    )
    rng = np.random.default_rng(5)
    for __ in range(8):
        q = rng.uniform(size=points.shape[1])
        pid, dist = index.nearest(q)
        true = np.sqrt(weighted_distances(q, points, weights))
        assert abs(dist - float(true.min())) < 1e-9


@settings(max_examples=50, deadline=None)
@given(world=weighted_worlds())
def test_weighted_bisector_separates_correctly(world):
    points, weights = world
    p, q = points[0], points[1]
    if np.allclose(p, q):
        return
    a, b = bisectors_from_points(p, q[None, :], weights=weights)
    rng = np.random.default_rng(6)
    for __ in range(20):
        x = rng.uniform(size=points.shape[1])
        lhs = float(a[0] @ x)
        closer = float(weights @ (x - p) ** 2) <= float(
            weights @ (x - q) ** 2
        )
        if lhs < b[0] - 1e-9:
            assert closer
        elif lhs > b[0] + 1e-9:
            assert not closer
