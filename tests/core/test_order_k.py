"""Tests for the order-k extension (the paper's future work)."""

import itertools

import numpy as np
import pytest

from helpers import brute_k_nearest
from repro.core.order_k import (
    OrderKIndex,
    _order_k_system,
    enumerate_order_k_cells,
)
from repro.data import clustered_points, uniform_points
from repro.geometry.mbr import MBR


class TestOrderKSystem:
    def test_semantics(self, rng):
        """x in cell(A) iff the k-NN set of x is exactly A."""
        points = uniform_points(10, 2, seed=81)
        members = frozenset({0, 1})
        system, pairs = _order_k_system(points, members, MBR.unit_cube(2))
        assert system.n_constraints == 2 * 8
        assert pairs.shape == (16, 2)
        for __ in range(200):
            x = rng.uniform(size=2)
            dists = np.linalg.norm(points - x, axis=1)
            knn = set(np.argsort(dists)[:2].tolist())
            if system.contains(x):
                assert knn == set(members)


class TestEnumeration:
    def test_cells_tile_the_space_2d(self, rng):
        """Every generic query point lies in exactly one order-k cell."""
        points = uniform_points(12, 2, seed=82)
        cells = enumerate_order_k_cells(points, k=2)
        member_sets = [c.members for c in cells]
        assert len(set(member_sets)) == len(member_sets)  # unique
        for __ in range(150):
            x = rng.uniform(size=2)
            dists = np.linalg.norm(points - x, axis=1)
            knn = frozenset(np.argsort(dists)[:2].tolist())
            assert knn in member_sets, f"k-set {set(knn)} not enumerated"

    def test_matches_exhaustive_enumeration(self):
        """BFS finds exactly the k-sets with non-empty cells (checked
        against trying all C(n, k) subsets by LP feasibility)."""
        from repro.core.approximation import approximate_cell

        points = uniform_points(8, 2, seed=83)
        cells = enumerate_order_k_cells(points, k=2)
        found = {c.members for c in cells}
        box = MBR.unit_cube(2)
        expected = set()
        for combo in itertools.combinations(range(8), 2):
            system, __ = _order_k_system(points, frozenset(combo), box)
            if approximate_cell(system, prune=False) is not None:
                expected.add(frozenset(combo))
        assert found == expected

    def test_k_one_matches_order_one_cells(self):
        points = uniform_points(10, 2, seed=84)
        cells = enumerate_order_k_cells(points, k=1)
        owners = {next(iter(c.members)) for c in cells}
        assert owners == set(range(10))

    def test_rejects_bad_k(self):
        points = uniform_points(5, 2, seed=85)
        with pytest.raises(ValueError):
            enumerate_order_k_cells(points, k=0)
        with pytest.raises(ValueError):
            enumerate_order_k_cells(points, k=5)


class TestOrderKIndex:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_nearest_matches_bruteforce(self, k, rng):
        points = uniform_points(15, 2, seed=86)
        index = OrderKIndex(points, k=k)
        for __ in range(60):
            q = rng.uniform(size=2)
            ids, dists = index.k_nearest(q)
            __, true_dists = brute_k_nearest(q, points, k)
            assert np.allclose(dists, true_dists)

    def test_clustered_data(self, rng):
        points = clustered_points(14, 2, n_clusters=3, seed=87)
        index = OrderKIndex(points, k=2)
        for __ in range(40):
            q = rng.uniform(size=2)
            ids, dists = index.k_nearest(q)
            __, true_dists = brute_k_nearest(q, points, 2)
            assert np.allclose(dists, true_dists)

    def test_three_dimensional(self, rng):
        points = uniform_points(10, 3, seed=88)
        index = OrderKIndex(points, k=2)
        for __ in range(30):
            q = rng.uniform(size=3)
            __, dists = index.k_nearest(q)
            __, true_dists = brute_k_nearest(q, points, 2)
            assert np.allclose(dists, true_dists)

    def test_query_outside_box_rejected(self):
        index = OrderKIndex(uniform_points(8, 2, seed=89), k=2)
        with pytest.raises(ValueError):
            index.k_nearest([1.5, 0.5])

    def test_stats(self):
        index = OrderKIndex(uniform_points(8, 2, seed=90), k=2)
        stats = index.stats()
        assert stats["k"] == 2
        assert stats["n_cells"] >= 8

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            OrderKIndex(np.array([[0.5, 0.5]]), k=1)
