"""Unit tests for the LP-based MBR approximation (Definition 3)."""

import numpy as np
import pytest

from repro.core.approximation import approximate_cell, lp_call_count
from repro.core.constraints import cell_system
from repro.data import uniform_points
from repro.geometry.halfspace import HalfspaceSystem
from repro.geometry.mbr import MBR


class TestApproximateCell:
    def test_no_constraints_gives_box(self):
        system = HalfspaceSystem.empty(MBR.unit_cube(3))
        mbr = approximate_cell(system)
        assert mbr == MBR.unit_cube(3)

    def test_known_2d_cell(self):
        """Two points at (0.25, 0.5) and (0.75, 0.5): the bisector is the
        vertical line x = 0.5; the left cell's MBR is [0, 0.5] x [0, 1]."""
        points = np.array([[0.25, 0.5], [0.75, 0.5]])
        system = cell_system(points, 0, [1])
        mbr = approximate_cell(system, center=points[0])
        assert np.allclose(mbr.low, [0.0, 0.0], atol=1e-7)
        assert np.allclose(mbr.high, [0.5, 1.0], atol=1e-7)

    def test_grid_cells_tile_exactly(self):
        """On a regular grid, NN-cell MBRs are exactly the grid cells
        (the paper's best case, Figure 2c/d)."""
        from repro.data import grid_points

        points = grid_points(3, 2)  # 9 points at cell centres
        n = len(points)
        for i in range(n):
            system = cell_system(points, i, np.arange(n))
            mbr = approximate_cell(system, center=points[i])
            assert np.allclose(mbr.extents, 1.0 / 3.0, atol=1e-7)
        # And the total volume is the data-space volume.
        total = 0.0
        for i in range(n):
            system = cell_system(points, i, np.arange(n))
            total += approximate_cell(system, center=points[i]).volume()
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_contains_cell_member_points(self, rng):
        """Any point whose NN is the centre lies inside the MBR."""
        points = uniform_points(30, 3, seed=22)
        for center in (0, 7, 15):
            system = cell_system(points, center, np.arange(30))
            mbr = approximate_cell(system, center=points[center])
            for __ in range(300):
                x = rng.uniform(size=3)
                dists = np.linalg.norm(points - x, axis=1)
                if int(np.argmin(dists)) == center:
                    assert mbr.contains_point(x, atol=1e-7)

    def test_infeasible_subbox_returns_none(self):
        points = np.array([[0.25, 0.5], [0.75, 0.5]])
        system = cell_system(points, 0, [1])
        # Clip to a box entirely on the other point's side.
        clipped = system.clipped_to(MBR([0.8, 0.0], [1.0, 1.0]))
        assert approximate_cell(clipped) is None

    def test_center_guard_under_roundoff(self):
        """The returned MBR always contains the supplied centre even if
        the LP optimum is shaved by solver tolerance."""
        points = uniform_points(40, 4, seed=23)
        system = cell_system(points, 0, np.arange(40))
        mbr = approximate_cell(system, center=points[0])
        assert mbr.contains_point(points[0], atol=0.0)

    def test_lp_call_counter_increases(self):
        before = lp_call_count()
        points = uniform_points(10, 2, seed=24)
        system = cell_system(points, 0, np.arange(10))
        approximate_cell(system, center=points[0])
        assert lp_call_count() > before


class TestPruningFastPath:
    def test_pruned_equals_unpruned(self, rng):
        """The exact-pruning fast path must return the identical MBR."""
        points = uniform_points(120, 3, seed=25)
        for center in range(0, 120, 17):
            system = cell_system(points, center, np.arange(120))
            fast = approximate_cell(system, center=points[center], prune=True)
            slow = approximate_cell(system, center=points[center], prune=False)
            assert fast.approx_equal(slow, atol=1e-6), (
                f"pruning changed the MBR for centre {center}"
            )

    def test_prune_skipped_for_small_systems(self, rng):
        points = uniform_points(8, 3, seed=26)
        system = cell_system(points, 0, np.arange(8))
        mbr = approximate_cell(system, center=points[0], prune=True)
        assert mbr is not None

    def test_backends_agree(self):
        points = uniform_points(50, 4, seed=27)
        system = cell_system(points, 0, np.arange(50))
        a = approximate_cell(system, backend="simplex", center=points[0])
        b = approximate_cell(system, backend="scipy", center=points[0])
        assert a.approx_equal(b, atol=1e-6)
