"""Lemma 1: optimized selectors never shrink the approximation.

For every point set and every optimised strategy (Point, Sphere,
NN-Direction), the MBR approximation computed from the strategy's
constraint subset must *contain* the Correct approximation — the paper's
no-false-dismissal argument hinges on this.
"""

import numpy as np
import pytest

from repro.core.approximation import approximate_cell
from repro.core.candidates import CandidateSelector, SelectorKind, SelectorParams
from repro.core.constraints import cell_system
from repro.data import clustered_points, uniform_points
from repro.index.bulk import bulk_load
from repro.index.xtree import XTree

OPTIMIZED = [SelectorKind.POINT, SelectorKind.SPHERE, SelectorKind.NN_DIRECTION]


def build_tree(points):
    return bulk_load(
        XTree(points.shape[1]), points, points, np.arange(len(points))
    )


@pytest.mark.parametrize("kind", OPTIMIZED)
@pytest.mark.parametrize(
    "points",
    [
        uniform_points(60, 2, seed=31),
        uniform_points(60, 4, seed=32),
        uniform_points(40, 6, seed=33),
        clustered_points(60, 3, seed=34),
    ],
    ids=["uniform-2d", "uniform-4d", "uniform-6d", "clustered-3d"],
)
def test_optimized_approximation_contains_correct(points, kind):
    tree = build_tree(points)
    selector = CandidateSelector(points, tree, kind, SelectorParams())
    n = len(points)
    for center in range(0, n, max(1, n // 12)):
        correct_system = cell_system(points, center, np.arange(n))
        correct_mbr = approximate_cell(correct_system, center=points[center])
        subset = selector.candidates(center)
        subset_system = cell_system(points, center, subset)
        subset_mbr = approximate_cell(subset_system, center=points[center])
        assert subset_mbr.contains(correct_mbr, atol=1e-7), (
            f"{kind.value} approximation lost part of the correct cell "
            f"for centre {center}"
        )


def test_subset_monotonicity(rng):
    """More constraints never enlarge the approximation (the generalised
    form of Lemma 1: MBR(S1) ⊇ MBR(S2) whenever S1 ⊆ S2)."""
    points = uniform_points(50, 3, seed=35)
    center = 0
    all_ids = np.arange(1, 50)
    for __ in range(10):
        small = rng.choice(all_ids, size=8, replace=False)
        extra = rng.choice(
            np.setdiff1d(all_ids, small), size=12, replace=False
        )
        big = np.concatenate([small, extra])
        mbr_small = approximate_cell(
            cell_system(points, center, small), center=points[center]
        )
        mbr_big = approximate_cell(
            cell_system(points, center, big), center=points[center]
        )
        assert mbr_small.contains(mbr_big, atol=1e-7)


def test_correct_is_tightest_in_volume():
    points = uniform_points(80, 4, seed=36)
    tree = build_tree(points)
    n = len(points)
    correct_volumes = []
    for center in range(0, n, 10):
        system = cell_system(points, center, np.arange(n))
        correct_volumes.append(
            approximate_cell(system, center=points[center]).volume()
        )
    for kind in OPTIMIZED:
        selector = CandidateSelector(points, tree, kind, SelectorParams())
        for i, center in enumerate(range(0, n, 10)):
            subset_system = cell_system(
                points, center, selector.candidates(center)
            )
            vol = approximate_cell(
                subset_system, center=points[center]
            ).volume()
            assert vol >= correct_volumes[i] - 1e-9
