"""Unit tests for NN-cell constraint system assembly."""

import numpy as np
import pytest

from repro.core.constraints import cell_system, cell_system_for_point
from repro.geometry.mbr import MBR


class TestCellSystem:
    def test_semantics_match_nn_definition(self, rng, points_4d):
        """x is in cell(P) iff no opponent is strictly closer."""
        system = cell_system(points_4d, 0, np.arange(len(points_4d)))
        for __ in range(200):
            x = rng.uniform(size=4)
            dists = np.linalg.norm(points_4d - x, axis=1)
            expected = dists[0] <= np.min(dists) + 1e-12
            assert system.contains(x) == expected

    def test_center_excluded_from_candidates(self, points_4d):
        system = cell_system(points_4d, 5, [5, 1, 2])
        assert system.n_constraints == 2
        assert not system.references(5)

    def test_point_ids_recorded(self, points_4d):
        system = cell_system(points_4d, 0, [3, 7, 9])
        assert sorted(system.point_ids.tolist()) == [3, 7, 9]

    def test_default_box_is_unit_cube(self, points_4d):
        system = cell_system(points_4d, 0, [1])
        assert np.allclose(system.box.low, 0.0)
        assert np.allclose(system.box.high, 1.0)

    def test_custom_box(self, points_4d):
        box = MBR(np.full(4, -1.0), np.full(4, 2.0))
        system = cell_system(points_4d, 0, [1], box=box)
        assert system.box is box

    def test_rejects_bad_center(self, points_4d):
        with pytest.raises(IndexError):
            cell_system(points_4d, len(points_4d), [0])

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            cell_system(np.array([0.5, 0.6]), 0, [1])

    def test_empty_candidates(self, points_4d):
        system = cell_system(points_4d, 0, [])
        assert system.n_constraints == 0
        assert system.contains([0.9, 0.9, 0.9, 0.9])


class TestCellSystemForPoint:
    def test_matches_indexed_version(self, points_4d):
        # Building "for point" with the same opponents gives identical
        # constraint rows.
        indexed = cell_system(points_4d, 0, [1, 2, 3])
        loose = cell_system_for_point(
            points_4d[0], points_4d[[1, 2, 3]], [1, 2, 3]
        )
        assert np.allclose(indexed.a, loose.a)
        assert np.allclose(indexed.b, loose.b)

    def test_insert_path_semantics(self, rng, points_4d):
        new_point = rng.uniform(size=4)
        opponents = points_4d[:10]
        system = cell_system_for_point(new_point, opponents, range(10))
        for __ in range(100):
            x = rng.uniform(size=4)
            d_new = np.linalg.norm(x - new_point)
            d_opp = float(np.min(np.linalg.norm(opponents - x, axis=1)))
            assert system.contains(x) == (d_new <= d_opp + 1e-12)
