"""Integration tests for the NN-cell index (build and query)."""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.core.candidates import SelectorKind
from repro.core.decomposition import DecompositionConfig
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import clustered_points, grid_points, uniform_points

ALL_SELECTORS = list(SelectorKind)


class TestBuild:
    def test_build_registers_every_cell(self, points_4d):
        index = NNCellIndex.build(points_4d)
        assert len(index) == len(points_4d)
        for i in range(len(points_4d)):
            assert len(index.cell_rectangles(i)) >= 1

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            NNCellIndex.build(np.zeros((0, 3)))

    def test_rejects_points_outside_data_space(self):
        with pytest.raises(ValueError):
            NNCellIndex.build(np.array([[0.5, 1.5]]))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BuildConfig(index_kind="btree")
        with pytest.raises(ValueError):
            BuildConfig(query_atol=-1.0)

    def test_single_point_owns_whole_space(self, rng):
        index = NNCellIndex.build(np.array([[0.3, 0.7]]))
        for __ in range(20):
            pid, __, info = index.nearest(rng.uniform(size=2))
            assert pid == 0
            assert not info.fallback

    def test_non_bulk_build_equivalent(self, rng):
        points = uniform_points(40, 3, seed=51)
        bulk = NNCellIndex.build(points, BuildConfig(bulk=True))
        slow = NNCellIndex.build(points, BuildConfig(bulk=False))
        for __ in range(25):
            q = rng.uniform(size=3)
            assert bulk.nearest(q)[0] == slow.nearest(q)[0]

    def test_rstar_index_kind(self, rng):
        points = uniform_points(50, 3, seed=52)
        index = NNCellIndex.build(points, BuildConfig(index_kind="rstar"))
        for __ in range(25):
            q = rng.uniform(size=3)
            true_id, __ = brute_nearest(q, points)
            assert index.nearest(q)[0] == true_id

    def test_stats_fields(self, points_4d):
        index = NNCellIndex.build(points_4d)
        stats = index.stats()
        assert stats["n_points"] == len(points_4d)
        assert stats["n_rectangles"] >= stats["n_points"]
        assert stats["expected_candidates"] >= 1.0 - 1e-9


@pytest.mark.parametrize("selector", ALL_SELECTORS)
class TestQueryCorrectness:
    """No false dismissals (Lemma 2) for every selector strategy."""

    def test_matches_bruteforce_uniform(self, selector, rng):
        points = uniform_points(80, 4, seed=53)
        index = NNCellIndex.build(points, BuildConfig(selector=selector))
        for __ in range(60):
            q = rng.uniform(size=4)
            pid, dist, info = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)
            assert not info.fallback

    def test_matches_bruteforce_clustered(self, selector, rng):
        points = clustered_points(70, 3, seed=54)
        index = NNCellIndex.build(points, BuildConfig(selector=selector))
        for __ in range(60):
            q = rng.uniform(size=3)
            pid, dist, __ = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)

    def test_with_decomposition(self, selector, rng):
        points = uniform_points(50, 3, seed=55)
        config = BuildConfig(
            selector=selector,
            decompose=True,
            decomposition=DecompositionConfig(k_max=8),
        )
        index = NNCellIndex.build(points, config)
        for __ in range(50):
            q = rng.uniform(size=3)
            __, dist, __ = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)


class TestQueryEdgeCases:
    def test_query_on_data_point(self, points_4d):
        index = NNCellIndex.build(points_4d)
        pid, dist, __ = index.nearest(points_4d[13])
        assert pid == 13
        assert dist == pytest.approx(0.0)

    def test_query_outside_data_space_falls_back(self, points_4d):
        index = NNCellIndex.build(points_4d)
        q = np.full(4, 1.5)
        pid, dist, info = index.nearest(q)
        assert info.fallback
        true_id, true_dist = brute_nearest(q, points_4d)
        assert dist == pytest.approx(true_dist)

    def test_query_on_cell_boundary(self):
        """Boundaries between grid cells are the worst numeric case."""
        points = grid_points(3, 2)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.CORRECT)
        )
        # Exactly on the vertical boundary x = 1/3.
        pid, dist, info = index.nearest(np.array([1.0 / 3.0, 0.1]))
        assert dist == pytest.approx(
            brute_nearest([1.0 / 3.0, 0.1], points)[1]
        )

    def test_query_at_corners(self, points_4d):
        index = NNCellIndex.build(points_4d)
        for corner in (np.zeros(4), np.ones(4)):
            __, dist, info = index.nearest(corner)
            assert dist == pytest.approx(brute_nearest(corner, points_4d)[1])
            assert not info.fallback

    def test_rejects_wrong_dim_query(self, points_4d):
        index = NNCellIndex.build(points_4d)
        with pytest.raises(ValueError):
            index.nearest([0.5, 0.5])

    def test_query_info_counts(self, points_4d, rng):
        index = NNCellIndex.build(points_4d)
        __, __, info = index.nearest(rng.uniform(size=4))
        assert info.n_candidates >= 1
        assert info.pages >= 1
        assert info.distance_computations == info.n_candidates

    def test_grid_single_candidate(self):
        """On the regular grid every query has exactly one candidate —
        the paper's best case where a point query touches one cell."""
        points = grid_points(4, 2)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.CORRECT)
        )
        rng = np.random.default_rng(56)
        for __ in range(40):
            q = rng.uniform(0.01, 0.99, size=2)
            # Stay away from exact boundaries for the single-candidate claim.
            if np.any(np.abs((q * 4) - np.round(q * 4)) < 0.02):
                continue
            __, __, info = index.nearest(q)
            assert info.n_candidates == 1

    def test_within_radius_matches_bruteforce(self, points_4d, rng):
        index = NNCellIndex.build(points_4d)
        for __ in range(20):
            c = rng.uniform(size=4)
            r = float(rng.uniform(0.1, 0.5))
            found = set(index.within_radius(c, r).tolist())
            brute = {
                i for i, p in enumerate(points_4d)
                if np.linalg.norm(p - c) <= r + 1e-12
            }
            assert found == brute

    def test_within_radius_validation(self, points_4d):
        index = NNCellIndex.build(points_4d)
        with pytest.raises(ValueError):
            index.within_radius(np.full(4, 0.5), -0.1)
        with pytest.raises(ValueError):
            index.within_radius([0.5, 0.5], 0.1)

    def test_nearest_batch(self, points_4d, rng):
        index = NNCellIndex.build(points_4d)
        queries = rng.uniform(size=(10, 4))
        ids, dists = index.nearest_batch(queries)
        for i, q in enumerate(queries):
            pid, dist, __ = index.nearest(q)
            assert ids[i] == pid
            assert dists[i] == pytest.approx(dist)

    def test_nearest_batch_validation(self, points_4d):
        index = NNCellIndex.build(points_4d)
        with pytest.raises(ValueError):
            index.nearest_batch(np.zeros((3, 2)))

    def test_introspection_accessors(self, points_4d):
        index = NNCellIndex.build(points_4d)
        system = index.constraint_system(0)
        assert system.n_constraints >= 1
        rects = index.all_cell_rectangles()
        assert len(rects) == index.stats()["n_rectangles"]
        with pytest.raises(KeyError):
            index.cell_rectangles(9999)
        with pytest.raises(KeyError):
            index.constraint_system(9999)
