"""Unit tests for the MBR decomposition (Definition 5, Section 3)."""

import numpy as np
import pytest

from repro.core.approximation import approximate_cell
from repro.core.constraints import cell_system
from repro.core.decomposition import (
    DecompositionConfig,
    decompose_cell,
    decompose_cell_greedy,
    obliqueness_scores,
    partition_counts,
)
from repro.data import uniform_points


@pytest.fixture
def cell_3d():
    points = uniform_points(25, 3, seed=41)
    system = cell_system(points, 0, np.arange(25))
    mbr = approximate_cell(system, center=points[0])
    return points, system, mbr


class TestPartitionCounts:
    def test_respects_k_max(self):
        config = DecompositionConfig(k_max=100)
        scores = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        counts = partition_counts(scores, config)
        assert int(np.prod(counts)) <= 100

    def test_counts_non_increasing_in_obliqueness(self):
        config = DecompositionConfig(k_max=100)
        scores = np.array([9.0, 5.0, 2.0, 0.5])
        counts = partition_counts(scores, config)
        order = np.argsort(scores)[::-1]
        ordered = counts[order]
        assert all(
            ordered[i] >= ordered[i + 1] for i in range(len(ordered) - 1)
        )

    def test_paper_constant_count_table(self):
        """Reconstructed table for k_max = 100: d'=2 -> n<=10, d'=3 ->
        n<=4, d'=4 -> 3, d'=5,6 -> 2.  (The paper's d'=7 with n=2 gives
        k=128, slightly above the budget — its own text tolerates that.)"""
        for d_prime, expected in [(2, 10), (3, 4), (4, 3), (5, 2), (6, 2)]:
            n_base = int(100 ** (1.0 / d_prime))
            assert n_base == expected
        # With the budget raised to 128, seven dimensions split in two.
        assert int(128 ** (1.0 / 7.0)) == 2

    def test_k_max_one_means_no_split(self):
        config = DecompositionConfig(k_max=1)
        counts = partition_counts(np.array([3.0, 2.0]), config)
        assert counts.tolist() == [1, 1]

    def test_zero_scores_no_split(self):
        config = DecompositionConfig(k_max=50)
        counts = partition_counts(np.zeros(4), config)
        assert counts.tolist() == [1, 1, 1, 1]

    def test_max_dims_bound(self):
        config = DecompositionConfig(k_max=10 ** 9, max_dims=2)
        counts = partition_counts(np.ones(6), config)
        assert int(np.sum(counts > 1)) <= 2

    def test_never_more_than_seven_dims(self):
        config = DecompositionConfig(k_max=2 ** 20, max_dims=20)
        counts = partition_counts(np.ones(12), config)
        assert int(np.sum(counts > 1)) <= 7

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DecompositionConfig(k_max=0)
        with pytest.raises(ValueError):
            DecompositionConfig(max_dims=0)
        with pytest.raises(ValueError):
            DecompositionConfig(heuristic="magic")


class TestObliquenessScores:
    def test_extent_heuristic_is_mbr_extent(self, cell_3d):
        __, system, mbr = cell_3d
        scores = obliqueness_scores(
            system, mbr, DecompositionConfig(heuristic="extent")
        )
        assert np.allclose(scores, mbr.extents)

    def test_trial_heuristic_in_unit_range(self, cell_3d):
        __, system, mbr = cell_3d
        scores = obliqueness_scores(
            system, mbr, DecompositionConfig(heuristic="trial")
        )
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)

    def test_trial_detects_oblique_dimension(self):
        """A diagonal 2-d cell is oblique in both axes; a axis-aligned
        slab cell is oblique in neither."""
        # Diagonal neighbors: bisector at 45 degrees -> oblique cell.
        diag = np.array([[0.3, 0.3], [0.7, 0.7]])
        system = cell_system(diag, 0, [1])
        mbr = approximate_cell(system, center=diag[0])
        config = DecompositionConfig(heuristic="trial")
        diag_scores = obliqueness_scores(system, mbr, config)
        # Axis-aligned neighbors: bisector vertical -> rectangular cell.
        straight = np.array([[0.3, 0.5], [0.7, 0.5]])
        system2 = cell_system(straight, 0, [1])
        mbr2 = approximate_cell(system2, center=straight[0])
        straight_scores = obliqueness_scores(system2, mbr2, config)
        assert np.max(diag_scores) > np.max(straight_scores) + 0.05


class TestDecomposeCell:
    @pytest.mark.parametrize("heuristic", ["extent", "trial"])
    def test_pieces_cover_the_cell(self, cell_3d, rng, heuristic):
        """No false dismissals (Lemma 2): every point of the cell lies in
        some decomposed piece."""
        points, system, mbr = cell_3d
        config = DecompositionConfig(k_max=8, heuristic=heuristic)
        pieces = decompose_cell(system, mbr, config)
        assert len(pieces) >= 1
        for __ in range(400):
            x = rng.uniform(size=3)
            if system.contains(x):
                assert any(p.contains_point(x, atol=1e-7) for p in pieces)

    def test_decomposition_reduces_volume(self, cell_3d):
        __, system, mbr = cell_3d
        config = DecompositionConfig(k_max=16)
        pieces = decompose_cell(system, mbr, config)
        total = sum(p.volume() for p in pieces)
        assert total <= mbr.volume() + 1e-9

    def test_pieces_inside_original_mbr(self, cell_3d):
        __, system, mbr = cell_3d
        pieces = decompose_cell(system, mbr, DecompositionConfig(k_max=27))
        for piece in pieces:
            assert mbr.contains(piece, atol=1e-7)

    def test_k_max_one_returns_plain_mbr(self, cell_3d):
        __, system, mbr = cell_3d
        pieces = decompose_cell(system, mbr, DecompositionConfig(k_max=1))
        assert pieces == [mbr]

    def test_degenerate_cell_not_split(self):
        """A zero-extent cell (duplicate point neighborhood) survives."""
        points = np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.9]])
        system = cell_system(points, 0, [1, 2])
        mbr = approximate_cell(system, center=points[0])
        pieces = decompose_cell(system, mbr, DecompositionConfig(k_max=8))
        assert len(pieces) >= 1

    def test_piece_count_bounded_by_k_max(self, cell_3d):
        __, system, mbr = cell_3d
        for k_max in (2, 4, 9, 30):
            pieces = decompose_cell(
                system, mbr, DecompositionConfig(k_max=k_max)
            )
            assert len(pieces) <= k_max


class TestGreedyStrategy:
    def test_pieces_cover_the_cell(self, cell_3d, rng):
        points, system, mbr = cell_3d
        config = DecompositionConfig(k_max=8, strategy="greedy")
        pieces = decompose_cell(system, mbr, config)
        assert 1 <= len(pieces) <= 8
        for __ in range(400):
            x = rng.uniform(size=3)
            if system.contains(x):
                assert any(p.contains_point(x, atol=1e-7) for p in pieces)

    def test_beats_or_matches_grid_at_same_budget(self, cell_3d):
        """The adaptive splitter spends the piece budget at least as well
        as the fixed grid (its first split is the grid's best split, and
        it only keeps splitting while volume drops)."""
        __, system, mbr = cell_3d
        grid = decompose_cell(
            system, mbr, DecompositionConfig(k_max=8, strategy="grid")
        )
        greedy = decompose_cell(
            system, mbr, DecompositionConfig(k_max=8, strategy="greedy")
        )
        grid_volume = sum(p.volume() for p in grid)
        greedy_volume = sum(p.volume() for p in greedy)
        assert greedy_volume <= grid_volume * 1.05 + 1e-12

    def test_monotone_volume_in_budget(self, cell_3d):
        __, system, mbr = cell_3d
        volumes = []
        for k_max in (1, 2, 4, 8):
            pieces = decompose_cell_greedy(
                system, mbr, DecompositionConfig(k_max=k_max,
                                                 strategy="greedy")
            )
            volumes.append(sum(p.volume() for p in pieces))
        assert all(
            volumes[i] >= volumes[i + 1] - 1e-9
            for i in range(len(volumes) - 1)
        )

    def test_k_max_one_returns_base_approximation(self, cell_3d):
        __, system, mbr = cell_3d
        pieces = decompose_cell_greedy(
            system, mbr, DecompositionConfig(k_max=1, strategy="greedy")
        )
        assert len(pieces) == 1
        assert mbr.contains(pieces[0], atol=1e-7)

    def test_stops_when_no_gain(self):
        """An axis-aligned box cell cannot be improved by splitting: the
        greedy strategy must stop immediately instead of burning budget."""
        points = np.array([[0.25, 0.5], [0.75, 0.5]])
        from repro.core.constraints import cell_system as make_system
        from repro.core.approximation import approximate_cell as approx

        system = make_system(points, 0, [1])
        mbr = approx(system, center=points[0])
        pieces = decompose_cell_greedy(
            system, mbr, DecompositionConfig(k_max=16, strategy="greedy")
        )
        assert len(pieces) == 1

    def test_index_integration(self, rng):
        """NNCellIndex built with the greedy strategy stays exact."""
        from repro.core.nncell_index import BuildConfig, NNCellIndex
        from repro.data import uniform_points

        points = uniform_points(40, 3, seed=191)
        config = BuildConfig(
            decompose=True,
            decomposition=DecompositionConfig(k_max=6, strategy="greedy"),
        )
        index = NNCellIndex.build(points, config)
        for __ in range(40):
            q = rng.uniform(size=3)
            __, dist, __info = index.nearest(q)
            true = float(np.min(np.linalg.norm(points - q, axis=1)))
            assert dist == pytest.approx(true)

    def test_config_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            DecompositionConfig(strategy="quadtree")
