"""Tests for exact k-NN on the order-1 solution-space index."""

import numpy as np
import pytest

from helpers import brute_k_nearest
from repro.core.candidates import SelectorKind
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import clustered_points, uniform_points


@pytest.fixture(scope="module")
def index_and_points():
    points = uniform_points(150, 4, seed=141)
    index = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    return index, points


class TestKNearest:
    @pytest.mark.parametrize("k", [1, 2, 5, 12])
    def test_matches_bruteforce(self, index_and_points, rng, k):
        index, points = index_and_points
        for __ in range(40):
            q = rng.uniform(size=4)
            ids, dists, __info = index.k_nearest(q, k)
            __, true_dists = brute_k_nearest(q, points, k)
            assert len(ids) == k
            assert np.allclose(dists, true_dists)
            assert dists == sorted(dists)

    def test_k_one_matches_nearest(self, index_and_points, rng):
        index, __ = index_and_points
        q = rng.uniform(size=4)
        pid, dist, __ = index.nearest(q)
        ids, dists, __ = index.k_nearest(q, 1)
        assert ids == [pid]
        assert dists[0] == pytest.approx(dist)

    def test_k_exceeding_database(self, rng):
        points = uniform_points(6, 3, seed=142)
        index = NNCellIndex.build(points)
        ids, dists, __ = index.k_nearest(rng.uniform(size=3), 20)
        assert len(ids) == 6
        assert set(ids) == set(range(6))

    def test_k_must_be_positive(self, index_and_points):
        index, __ = index_and_points
        with pytest.raises(ValueError):
            index.k_nearest(np.full(4, 0.5), 0)

    def test_wrong_dim_rejected(self, index_and_points):
        index, __ = index_and_points
        with pytest.raises(ValueError):
            index.k_nearest([0.5, 0.5], 2)

    def test_outside_data_space_falls_back(self, index_and_points, rng):
        index, points = index_and_points
        q = np.full(4, 1.3)
        ids, dists, info = index.k_nearest(q, 4)
        assert info.fallback
        __, true_dists = brute_k_nearest(q, points, 4)
        assert np.allclose(dists, true_dists)

    def test_clustered_data(self, rng):
        points = clustered_points(100, 3, seed=143)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
        )
        for __ in range(30):
            q = rng.uniform(size=3)
            __, dists, __info = index.k_nearest(q, 4)
            __, true_dists = brute_k_nearest(q, points, 4)
            assert np.allclose(dists, true_dists)

    def test_after_dynamic_updates(self, rng):
        points = uniform_points(40, 3, seed=144)
        index = NNCellIndex.build(points)
        for __ in range(5):
            index.insert(rng.uniform(size=3))
        index.delete(7)
        live = index.points[index.active_ids]
        for __ in range(20):
            q = rng.uniform(size=3)
            __, dists, __info = index.k_nearest(q, 3)
            __, true_dists = brute_k_nearest(q, live, 3)
            assert np.allclose(dists, true_dists)

    def test_info_accounting(self, index_and_points, rng):
        index, __ = index_and_points
        __, __, info = index.k_nearest(rng.uniform(size=4), 3)
        assert info.pages > 0
        assert info.distance_computations > 0
