"""explain(): parity with nearest(), path labels, JSON view, events."""

import numpy as np
import pytest

from repro.core.nncell_index import (
    NNCellIndex,
    QueryInfo,
    fallback_reason,
)
from repro.data import uniform_points
from repro.obs import events


@pytest.fixture(autouse=True)
def clean_event_state():
    events.disable()
    events._log = None
    yield
    events.disable()
    events._log = None


@pytest.fixture(scope="module")
def index():
    return NNCellIndex.build(uniform_points(60, 3, seed=11))


class TestFallbackReason:
    def test_fast_path_has_no_reason(self):
        assert fallback_reason(QueryInfo(fallback=False)) is None

    def test_outside_data_space(self):
        info = QueryInfo(fallback=True, retried_atol=False)
        assert fallback_reason(info) == "outside_data_space"

    def test_empty_point_query(self):
        info = QueryInfo(fallback=True, retried_atol=True)
        assert fallback_reason(info) == "empty_point_query"


class TestExplainParity:
    def test_agrees_with_nearest_on_random_queries(self, index):
        rng = np.random.default_rng(4)
        for q in rng.uniform(0, 1, size=(25, 3)):
            nid, ndist, __ = index.nearest(q)
            explain = index.explain(q)
            assert explain.nearest_id == nid
            assert explain.nearest_distance == pytest.approx(ndist)

    def test_agrees_on_exact_data_points(self, index):
        for pid in (0, 17, 59):
            q = index.points[pid]
            explain = index.explain(q)
            assert explain.nearest_id == index.nearest(q)[0]
            assert explain.nearest_distance == pytest.approx(0.0)

    def test_candidates_sorted_and_include_answer(self, index):
        explain = index.explain(np.full(3, 0.5))
        distances = [d for __, d in explain.candidates]
        assert distances == sorted(distances)
        assert explain.candidates[0] == (
            explain.nearest_id, explain.nearest_distance
        )
        # Every candidate owner appears in the hit rectangles.
        owners = {owner for owner, __ in explain.rectangles}
        assert {pid for pid, __ in explain.candidates} <= owners


class TestExplainPaths:
    def test_interior_query_takes_cell_path(self, index):
        explain = index.explain(np.full(3, 0.5))
        assert explain.path in ("cell", "cell_retry")
        assert explain.rectangles
        assert explain.nodes_visited > 0
        assert explain.pages > 0

    def test_outside_data_space_falls_back(self, index):
        explain = index.explain(np.full(3, 25.0))
        assert explain.path == "outside_data_space"
        assert explain.rectangles == []
        assert explain.candidates == []
        # The fallback still produces the true nearest neighbour.
        assert explain.nearest_id == index.nearest(np.full(3, 25.0))[0]

    def test_rejects_wrong_dimension(self, index):
        with pytest.raises(ValueError):
            index.explain([0.5, 0.5])


class TestExplainAsDict:
    def test_json_ready_shape(self, index):
        doc = index.explain(np.full(3, 0.4)).as_dict()
        assert doc["path"] in (
            "cell", "cell_retry", "empty_point_query", "outside_data_space"
        )
        assert doc["n_candidates"] == len(doc["candidates"])
        assert doc["n_rectangles"] == len(doc["rectangles"])
        assert all(
            set(r) == {"owner", "low", "high"} for r in doc["rectangles"]
        )
        assert all(
            set(c) == {"id", "distance"} for c in doc["candidates"]
        )
        import json

        json.dumps(doc)  # must not raise (no numpy scalars left)


class TestQueryEvents:
    def test_nearest_emits_query_event_when_enabled(self, index):
        with events.collecting() as log:
            index.nearest(np.full(3, 0.5))
        (record,) = log.records("query")
        assert record["outcome"] in ("cell", "fallback")
        assert record["duration_ms"] >= 0.0
        assert record["fallback_reason"] is None or isinstance(
            record["fallback_reason"], str
        )

    def test_fallback_query_reports_reason(self, index):
        with events.collecting() as log:
            index.nearest(np.full(3, 25.0))
        (record,) = log.records("query")
        assert record["outcome"] == "fallback"
        assert record["fallback_reason"] == "outside_data_space"

    def test_disabled_events_leave_no_trace(self, index):
        index.nearest(np.full(3, 0.5))
        assert events.get_log() is None
