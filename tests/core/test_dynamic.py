"""Dynamic-update tests: inserts shrink cells, deletes grow them.

Every test validates the central contract: after any update sequence,
``nearest()`` agrees with brute force over the live points (the paper's
Section 2, "the dynamic case").
"""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.core.candidates import SelectorKind
from repro.core.decomposition import DecompositionConfig
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import uniform_points


def check_queries(index, rng, n_queries=30):
    live_ids = index.active_ids
    live_points = index.points[live_ids]
    for __ in range(n_queries):
        q = rng.uniform(size=index.dim)
        pid, dist, __ = index.nearest(q)
        __, true_dist = brute_nearest(q, live_points)
        assert dist == pytest.approx(true_dist), f"query {q} wrong"


class TestInsert:
    def test_insert_then_query(self, rng):
        points = uniform_points(40, 3, seed=61)
        index = NNCellIndex.build(points)
        for __ in range(15):
            index.insert(rng.uniform(size=3))
        assert len(index) == 55
        check_queries(index, rng)

    def test_insert_returns_sequential_ids(self, rng):
        index = NNCellIndex.build(uniform_points(10, 2, seed=62))
        assert index.insert(rng.uniform(size=2)) == 10
        assert index.insert(rng.uniform(size=2)) == 11

    def test_insert_rejects_outside_space(self):
        index = NNCellIndex.build(uniform_points(10, 2, seed=63))
        with pytest.raises(ValueError):
            index.insert([0.5, 1.5])
        with pytest.raises(ValueError):
            index.insert([0.5])

    def test_inserted_point_is_its_own_nn(self, rng):
        index = NNCellIndex.build(uniform_points(30, 3, seed=64))
        p = rng.uniform(size=3)
        new_id = index.insert(p)
        pid, dist, __ = index.nearest(p)
        assert pid == new_id
        assert dist == pytest.approx(0.0)

    def test_existing_cells_only_shrink(self, rng):
        """An insert may shrink other cells' rectangles, never grow them."""
        points = uniform_points(25, 2, seed=65)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.CORRECT)
        )
        before = {
            i: index.cell_rectangles(i)[0] for i in range(25)
        }
        index.insert(rng.uniform(size=2))
        for i in range(25):
            after = index.cell_rectangles(i)[0]
            assert before[i].contains(after, atol=1e-7), (
                f"cell {i} grew after an insert"
            )

    def test_insert_near_existing_point(self, rng):
        index = NNCellIndex.build(uniform_points(30, 3, seed=66))
        base = index.points[4]
        near = np.clip(base + 1e-6, 0.0, 1.0)
        index.insert(near)
        check_queries(index, rng, n_queries=20)

    def test_insert_with_decomposition(self, rng):
        config = BuildConfig(
            selector=SelectorKind.NN_DIRECTION,
            decompose=True,
            decomposition=DecompositionConfig(k_max=4),
        )
        index = NNCellIndex.build(uniform_points(25, 3, seed=67), config)
        for __ in range(8):
            index.insert(rng.uniform(size=3))
        check_queries(index, rng, n_queries=20)


class TestDelete:
    def test_delete_then_query(self, rng):
        points = uniform_points(40, 3, seed=68)
        index = NNCellIndex.build(points)
        for victim in (3, 17, 25, 39, 0):
            index.delete(victim)
        assert len(index) == 35
        check_queries(index, rng)

    def test_delete_unknown_raises(self):
        index = NNCellIndex.build(uniform_points(10, 2, seed=69))
        with pytest.raises(KeyError):
            index.delete(99)
        index.delete(5)
        with pytest.raises(KeyError):
            index.delete(5)  # already gone

    def test_cannot_delete_last_point(self):
        index = NNCellIndex.build(np.array([[0.5, 0.5]]))
        with pytest.raises(ValueError):
            index.delete(0)

    def test_deleted_point_never_returned(self, rng):
        points = uniform_points(30, 2, seed=70)
        index = NNCellIndex.build(points)
        index.delete(7)
        # Query exactly at the deleted location.
        pid, dist, __ = index.nearest(points[7])
        assert pid != 7
        assert dist > 0.0

    def test_neighbors_cell_grows_back(self, rng):
        """Deleting a point hands its region to the neighbors."""
        points = uniform_points(20, 2, seed=71)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.CORRECT)
        )
        victim = 9
        location = points[victim].copy()
        index.delete(victim)
        pid, __, info = index.nearest(location)
        live = index.active_ids
        __, true_dist = brute_nearest(location, index.points[live])
        assert pid == int(live[np.argmin(
            np.linalg.norm(index.points[live] - location, axis=1))])


class TestMixedWorkload:
    @pytest.mark.parametrize(
        "selector", [SelectorKind.NN_DIRECTION, SelectorKind.SPHERE]
    )
    def test_randomized_sequence(self, selector, rng):
        points = uniform_points(30, 3, seed=72)
        index = NNCellIndex.build(points, BuildConfig(selector=selector))
        for step in range(60):
            op = rng.choice(["insert", "delete", "query"])
            if op == "insert":
                index.insert(rng.uniform(size=3))
            elif op == "delete" and len(index) > 2:
                index.delete(int(rng.choice(index.active_ids)))
            else:
                check_queries(index, rng, n_queries=3)
        check_queries(index, rng, n_queries=20)
        index.cell_tree.validate()
        index.data_tree.validate()

    def test_reinsert_after_delete_same_location(self, rng):
        index = NNCellIndex.build(uniform_points(20, 2, seed=73))
        spot = index.points[3].copy()
        index.delete(3)
        new_id = index.insert(spot)
        pid, dist, __ = index.nearest(spot)
        assert pid == new_id
        assert dist == pytest.approx(0.0)
        check_queries(index, rng, n_queries=15)

    def test_shrink_to_two_and_rebuild(self, rng):
        index = NNCellIndex.build(uniform_points(10, 2, seed=74))
        for victim in range(8):
            index.delete(victim)
        assert len(index) == 2
        check_queries(index, rng, n_queries=10)
        for __ in range(10):
            index.insert(rng.uniform(size=2))
        check_queries(index, rng, n_queries=15)
