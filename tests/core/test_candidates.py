"""Unit tests for the four candidate-selection strategies."""

import numpy as np
import pytest

from repro.core.candidates import (
    CandidateSelector,
    SelectorKind,
    SelectorParams,
    sphere_radius,
)
from repro.data import uniform_points
from repro.index.bulk import bulk_load
from repro.index.xtree import XTree


@pytest.fixture
def dataset():
    points = uniform_points(150, 4, seed=21)
    tree = bulk_load(XTree(4), points, points, np.arange(150))
    return points, tree


def make_selector(points, tree, kind, **params):
    return CandidateSelector(points, tree, kind, SelectorParams(**params))


class TestSphereRadius:
    def test_formula(self):
        assert sphere_radius(1000, 4) == pytest.approx(
            2.0 * (1.0 / 1000) ** 0.25
        )

    def test_factor_scales(self):
        assert sphere_radius(100, 2, factor=1.0) == pytest.approx(
            0.5 * sphere_radius(100, 2, factor=2.0)
        )

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            sphere_radius(0, 4)
        with pytest.raises(ValueError):
            sphere_radius(10, 0)


class TestCorrect:
    def test_returns_all_other_points(self, dataset):
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.CORRECT)
        ids = selector.candidates(7)
        assert len(ids) == len(points) - 1
        assert 7 not in ids

    def test_works_without_tree(self, dataset):
        points, __ = dataset
        selector = CandidateSelector(points, None, SelectorKind.CORRECT)
        assert len(selector.candidates(0)) == len(points) - 1


class TestPoint:
    def test_returns_points_of_covering_leaves(self, dataset):
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.POINT)
        ids = selector.candidates(3)
        assert 3 not in ids
        # Every leaf whose region contains the point contributes all its
        # entries, so the set must cover the point's own leaf (minus it).
        own_leaf_ids = set()
        for leaf in tree.leaves_containing(points[3]):
            own_leaf_ids.update(int(i) for i in leaf.ids)
        own_leaf_ids.discard(3)
        assert own_leaf_ids <= set(ids.tolist())

    def test_requires_tree(self, dataset):
        points, __ = dataset
        with pytest.raises(ValueError):
            CandidateSelector(points, None, SelectorKind.POINT)


class TestSphere:
    def test_covers_all_points_within_radius(self, dataset):
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.SPHERE)
        radius = sphere_radius(150, 4)
        ids = set(selector.candidates(5).tolist())
        within = {
            i for i, p in enumerate(points)
            if i != 5 and np.linalg.norm(p - points[5]) <= radius
        }
        assert within <= ids

    def test_radius_factor_grows_candidates(self, dataset):
        points, tree = dataset
        small = make_selector(points, tree, SelectorKind.SPHERE,
                              sphere_radius_factor=0.5)
        large = make_selector(points, tree, SelectorKind.SPHERE,
                              sphere_radius_factor=4.0)
        assert len(small.candidates(0)) <= len(large.candidates(0))

    def test_requires_tree(self, dataset):
        points, __ = dataset
        with pytest.raises(ValueError):
            CandidateSelector(points, None, SelectorKind.SPHERE)


class TestNNDirection:
    def test_bounded_size(self, dataset):
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.NN_DIRECTION)
        for i in range(0, 150, 15):
            ids = selector.candidates(i)
            assert 1 <= len(ids) <= 4 * points.shape[1]
            assert i not in ids

    def test_contains_directional_nearest(self, dataset):
        """For each axis direction the nearest point in that half-space
        must be among the candidates."""
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.NN_DIRECTION)
        center_id = 11
        ids = set(selector.candidates(center_id).tolist())
        diff = points - points[center_id]
        dist = np.linalg.norm(diff, axis=1)
        for axis in range(4):
            for sign in (1.0, -1.0):
                side = np.flatnonzero(sign * diff[:, axis] > 0)
                if side.size:
                    nearest = side[np.argmin(dist[side])]
                    assert int(nearest) in ids

    def test_works_without_tree(self, dataset):
        points, __ = dataset
        selector = CandidateSelector(points, None, SelectorKind.NN_DIRECTION)
        assert len(selector.candidates(0)) >= 1


class TestDynamicBookkeeping:
    def test_set_active_excludes_deleted(self, dataset):
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.CORRECT)
        selector.set_active(4, False)
        ids = selector.candidates(0)
        assert 4 not in ids
        assert len(ids) == len(points) - 2

    def test_extend_points(self, dataset, rng):
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.CORRECT)
        selector.extend_points(rng.uniform(size=(3, 4)))
        assert selector.n_points == len(points) + 3
        assert len(selector.candidates(0)) == len(points) + 2

    def test_candidates_for_new_point(self, dataset, rng):
        points, tree = dataset
        selector = make_selector(points, tree, SelectorKind.NN_DIRECTION)
        ids = selector.candidates_for_point(rng.uniform(size=4))
        assert len(ids) >= 1

    def test_minimum_candidates_topped_up(self):
        # Two coincident points: NN-Direction has no usable direction;
        # the top-up must still return the other point.
        points = np.array([[0.5, 0.5], [0.5, 0.5]])
        selector = CandidateSelector(points, None, SelectorKind.NN_DIRECTION)
        ids = selector.candidates(0)
        assert ids.tolist() == [1]

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            CandidateSelector(np.zeros(5), None, SelectorKind.CORRECT)
