"""Failure-injection and degenerate-input tests for the NN-cell index.

The query path has layered safety nets (tolerance retry, branch-and-bound
fallback); these tests force each layer to fire and assert answers stay
exact.  Degenerate datasets (duplicates, collinear points, boundary
points) stress the geometry where Voronoi cells lose full dimensionality.
"""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.core.candidates import SelectorKind
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import diagonal_points, uniform_points


class TestSafetyNets:
    def test_fallback_when_solution_space_is_sabotaged(self, rng):
        """If every cell rectangle vanishes from the solution-space index
        (injected corruption), queries must fall back to branch-and-bound
        on the data index and stay exact."""
        points = uniform_points(40, 3, seed=171)
        index = NNCellIndex.build(points)
        for pid in list(index.active_ids):
            index._replace_cell_in_tree(int(pid), [])
            index._cell_rects[int(pid)] = []
        for __ in range(20):
            q = rng.uniform(size=3)
            pid, dist, info = index.nearest(q)
            assert info.fallback or info.retried_atol
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)

    def test_zero_atol_still_exact(self, rng):
        """With query_atol = 0 boundary queries may slip through cell
        cracks; the retry/fallback chain must keep answers exact."""
        points = uniform_points(60, 2, seed=172)
        index = NNCellIndex.build(points, BuildConfig(query_atol=0.0))
        # Hammer axis-aligned boundary coordinates.
        for x in np.linspace(0.0, 1.0, 21):
            for y in (0.0, 0.5, 1.0):
                q = np.array([x, y])
                __, dist, __info = index.nearest(q)
                __, true_dist = brute_nearest(q, points)
                assert dist == pytest.approx(true_dist)


class TestDegenerateData:
    def test_duplicate_points(self, rng):
        points = np.vstack([
            uniform_points(10, 3, seed=173),
            uniform_points(10, 3, seed=173),  # exact duplicates
        ])
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.CORRECT)
        )
        for __ in range(25):
            q = rng.uniform(size=3)
            __, dist, __info = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)

    def test_all_points_identical(self, rng):
        points = np.tile([0.3, 0.7], (8, 1))
        index = NNCellIndex.build(points)
        pid, dist, __ = index.nearest(rng.uniform(size=2))
        assert 0 <= pid < 8

    def test_collinear_points(self, rng):
        """Diagonal data: cells are parallel slabs, MBRs near-total."""
        points = diagonal_points(12, 3, jitter=0.0)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.CORRECT)
        )
        for __ in range(40):
            q = rng.uniform(size=3)
            __, dist, __info = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)

    def test_points_on_cube_boundary(self, rng):
        rng_local = np.random.default_rng(174)
        points = rng_local.uniform(size=(30, 3))
        # Snap a third of the coordinates onto the data-space boundary.
        mask = rng_local.uniform(size=points.shape) < 0.33
        points[mask] = np.round(points[mask])
        index = NNCellIndex.build(points)
        for __ in range(30):
            q = rng.uniform(size=3)
            __, dist, __info = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)

    def test_two_point_database(self, rng):
        points = np.array([[0.25, 0.25], [0.75, 0.75]])
        index = NNCellIndex.build(points)
        assert index.nearest([0.2, 0.2])[0] == 0
        assert index.nearest([0.8, 0.8])[0] == 1

    def test_single_dimension(self, rng):
        """d = 1: cells are intervals; everything still works."""
        points = np.sort(rng.uniform(size=(15, 1)), axis=0)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.CORRECT)
        )
        for __ in range(30):
            q = rng.uniform(size=1)
            __, dist, __info = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)


class TestCustomDataSpace:
    def test_non_unit_box(self, rng):
        from repro.geometry.mbr import MBR

        box = MBR(np.array([-1.0, -2.0]), np.array([3.0, 2.0]))
        points = np.column_stack([
            rng.uniform(-1.0, 3.0, size=40),
            rng.uniform(-2.0, 2.0, size=40),
        ])
        index = NNCellIndex.build(points, BuildConfig(data_space=box))
        for __ in range(40):
            q = np.array([
                rng.uniform(-1.0, 3.0), rng.uniform(-2.0, 2.0)
            ])
            __, dist, info = index.nearest(q)
            __, true_dist = brute_nearest(q, points)
            assert dist == pytest.approx(true_dist)
            assert not info.fallback

    def test_box_dim_mismatch_rejected(self):
        from repro.geometry.mbr import MBR

        with pytest.raises(ValueError):
            NNCellIndex.build(
                np.array([[0.5, 0.5]]),
                BuildConfig(data_space=MBR.unit_cube(3)),
            )
