"""Unit tests for the overlap / quality metrics."""

import numpy as np
import pytest

from repro.core.quality import (
    average_overlap,
    expected_candidates,
    measured_overlap,
    quality_to_performance,
)
from repro.geometry.mbr import MBR


def halves():
    return [
        MBR([0.0, 0.0], [0.5, 1.0]),
        MBR([0.5, 0.0], [1.0, 1.0]),
    ]


class TestExpectedCandidates:
    def test_perfect_tiling_is_one(self):
        assert expected_candidates(halves(), MBR.unit_cube(2)) == pytest.approx(1.0)

    def test_full_overlap_counts_multiplicity(self):
        rects = [MBR.unit_cube(2)] * 3
        assert expected_candidates(rects, MBR.unit_cube(2)) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            expected_candidates([], MBR.unit_cube(2))

    def test_rejects_zero_volume_box(self):
        box = MBR([0.0, 0.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            expected_candidates(halves(), box)


class TestAverageOverlap:
    def test_tiling_has_zero_overlap(self):
        assert average_overlap(halves(), MBR.unit_cube(2)) == pytest.approx(0.0)

    def test_overlapping_rects(self):
        rects = [
            MBR([0.0, 0.0], [0.75, 1.0]),
            MBR([0.25, 0.0], [1.0, 1.0]),
        ]
        assert average_overlap(rects, MBR.unit_cube(2)) == pytest.approx(0.5)

    def test_never_negative(self):
        # Undercoverage clamps at zero rather than going negative.
        rects = [MBR([0.0, 0.0], [0.1, 0.1])]
        assert average_overlap(rects, MBR.unit_cube(2)) == 0.0


class TestMeasuredOverlap:
    def test_matches_analytic_on_uniform_queries(self, rng):
        rects = [
            MBR([0.0, 0.0], [0.75, 1.0]),
            MBR([0.25, 0.0], [1.0, 1.0]),
        ]
        queries = rng.uniform(size=(4000, 2))
        measured = measured_overlap(rects, queries)
        analytic = expected_candidates(rects, MBR.unit_cube(2))
        assert measured == pytest.approx(analytic, abs=0.05)

    def test_single_query(self):
        assert measured_overlap(halves(), np.array([0.25, 0.5])) == 1.0

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            measured_overlap(halves(), np.zeros((3, 3)))


class TestQualityToPerformance:
    def test_better_quality_scores_higher(self):
        assert quality_to_performance(0.1, 1.0) > quality_to_performance(
            2.0, 1.0
        )

    def test_faster_build_scores_higher(self):
        assert quality_to_performance(1.0, 0.1) > quality_to_performance(
            1.0, 10.0
        )

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            quality_to_performance(-0.1, 1.0)
        with pytest.raises(ValueError):
            quality_to_performance(0.1, -1.0)

    def test_zero_build_time_is_finite(self):
        assert np.isfinite(quality_to_performance(0.5, 0.0))
