"""Tests for the weighted-metric NN-cell extension."""

import numpy as np
import pytest

from repro.core.weighted import WeightedNNCellIndex, weighted_distances
from repro.data import clustered_points, uniform_points
from repro.geometry.halfspace import bisectors_from_points


class TestWeightedBisectors:
    def test_weighted_bisector_semantics(self, rng):
        w = np.array([1.0, 9.0, 0.5])
        p = rng.uniform(size=3)
        q = rng.uniform(size=3)
        a, b = bisectors_from_points(p, q[None, :], weights=w)
        for __ in range(200):
            x = rng.uniform(size=3)
            closer = float(w @ (x - p) ** 2) <= float(w @ (x - q) ** 2)
            assert (float(a[0] @ x) <= b[0] + 1e-12) == closer

    def test_unit_weights_match_unweighted(self, rng):
        p = rng.uniform(size=4)
        others = rng.uniform(size=(6, 4))
        a1, b1 = bisectors_from_points(p, others)
        a2, b2 = bisectors_from_points(p, others, weights=np.ones(4))
        assert np.allclose(a1, a2)
        assert np.allclose(b1, b2)

    def test_rejects_bad_weights(self, rng):
        p = rng.uniform(size=3)
        others = rng.uniform(size=(2, 3))
        with pytest.raises(ValueError):
            bisectors_from_points(p, others, weights=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ValueError):
            bisectors_from_points(p, others, weights=np.ones(2))


class TestWeightedDistances:
    def test_matches_direct_formula(self, rng):
        pts = rng.uniform(size=(10, 3))
        q = rng.uniform(size=3)
        w = np.array([2.0, 1.0, 4.0])
        dists = weighted_distances(q, pts, w)
        for i in range(10):
            assert dists[i] == pytest.approx(float(w @ (pts[i] - q) ** 2))


class TestWeightedIndex:
    @pytest.mark.parametrize("max_constraints", [None, 10])
    def test_exact_weighted_nn(self, rng, max_constraints):
        points = uniform_points(50, 3, seed=121)
        w = np.array([1.0, 6.0, 0.3])
        index = WeightedNNCellIndex(points, w, max_constraints=max_constraints)
        for __ in range(60):
            q = rng.uniform(size=3)
            pid, dist = index.nearest(q)
            true = np.sqrt(weighted_distances(q, points, w))
            assert dist == pytest.approx(float(true.min()))
            assert true[pid] == pytest.approx(float(true.min()))

    def test_weighting_changes_answers(self, rng):
        """A strong axis weight must change some NN answers vs uniform
        weights — otherwise the weights are not actually applied."""
        points = clustered_points(60, 2, seed=122)
        flat = WeightedNNCellIndex(points, [1.0, 1.0], max_constraints=15)
        skewed = WeightedNNCellIndex(points, [100.0, 0.01],
                                     max_constraints=15)
        changed = 0
        for __ in range(50):
            q = rng.uniform(size=2)
            if flat.nearest(q)[0] != skewed.nearest(q)[0]:
                changed += 1
        assert changed > 0

    def test_rejects_bad_input(self):
        points = uniform_points(10, 2, seed=123)
        with pytest.raises(ValueError):
            WeightedNNCellIndex(points, [1.0])  # wrong weight length
        with pytest.raises(ValueError):
            WeightedNNCellIndex(points, [1.0, 0.0])  # non-positive
        with pytest.raises(ValueError):
            WeightedNNCellIndex(np.zeros((0, 2)), [1.0, 1.0])

    def test_query_validation(self):
        points = uniform_points(10, 2, seed=124)
        index = WeightedNNCellIndex(points, [1.0, 2.0])
        with pytest.raises(ValueError):
            index.nearest([0.5])
        with pytest.raises(ValueError):
            index.nearest([0.5, 1.5])

    def test_single_point(self, rng):
        index = WeightedNNCellIndex(np.array([[0.2, 0.8]]), [3.0, 1.0])
        pid, __ = index.nearest(rng.uniform(size=2))
        assert pid == 0
