"""Tests for saving/loading NN-cell indexes."""

import numpy as np
import pytest

from helpers import brute_nearest
from repro.core.candidates import SelectorKind
from repro.core.decomposition import DecompositionConfig
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.core.persistence import load_index, save_index
from repro.data import uniform_points


@pytest.fixture
def archive_path(tmp_path):
    return tmp_path / "index.npz"


def assert_equivalent(a, b, rng, dim, n_queries=30):
    for __ in range(n_queries):
        q = rng.uniform(size=dim)
        pid_a, dist_a, __ = a.nearest(q)
        pid_b, dist_b, __ = b.nearest(q)
        assert pid_a == pid_b
        assert dist_a == pytest.approx(dist_b)


class TestRoundtrip:
    def test_basic_roundtrip(self, archive_path, rng):
        points = uniform_points(50, 3, seed=111)
        index = NNCellIndex.build(points)
        save_index(index, archive_path)
        loaded = load_index(archive_path)
        assert len(loaded) == len(index)
        assert_equivalent(index, loaded, rng, 3)

    def test_roundtrip_with_decomposition(self, archive_path, rng):
        config = BuildConfig(
            selector=SelectorKind.NN_DIRECTION,
            decompose=True,
            decomposition=DecompositionConfig(k_max=4),
        )
        index = NNCellIndex.build(uniform_points(30, 3, seed=112), config)
        save_index(index, archive_path)
        loaded = load_index(archive_path)
        assert loaded.stats()["n_rectangles"] == index.stats()["n_rectangles"]
        assert_equivalent(index, loaded, rng, 3)

    def test_roundtrip_after_updates(self, archive_path, rng):
        index = NNCellIndex.build(uniform_points(30, 2, seed=113))
        for __ in range(5):
            index.insert(rng.uniform(size=2))
        index.delete(3)
        index.delete(17)
        save_index(index, archive_path)
        loaded = load_index(archive_path)
        assert len(loaded) == len(index)
        assert_equivalent(index, loaded, rng, 2)

    def test_loaded_index_stays_dynamic(self, archive_path, rng):
        index = NNCellIndex.build(uniform_points(25, 2, seed=114))
        save_index(index, archive_path)
        loaded = load_index(archive_path)
        loaded.insert(rng.uniform(size=2))
        loaded.delete(0)
        live = loaded.points[loaded.active_ids]
        for __ in range(20):
            q = rng.uniform(size=2)
            __, dist, __ = loaded.nearest(q)
            __, true_dist = brute_nearest(q, live)
            assert dist == pytest.approx(true_dist)

    def test_config_restored(self, archive_path):
        config = BuildConfig(selector=SelectorKind.POINT, cache_pages=16)
        index = NNCellIndex.build(uniform_points(20, 2, seed=115), config)
        save_index(index, archive_path)
        loaded = load_index(archive_path)
        assert loaded.config.selector is SelectorKind.POINT
        assert loaded.config.cache_pages == 16

    def test_version_guard(self, archive_path):
        index = NNCellIndex.build(uniform_points(10, 2, seed=116))
        save_index(index, archive_path)
        data = dict(np.load(archive_path))
        data["format_version"] = np.int64(99)
        np.savez(archive_path, **data)
        with pytest.raises(ValueError):
            load_index(archive_path)

    def test_single_point_roundtrip(self, archive_path, rng):
        index = NNCellIndex.build(np.array([[0.4, 0.6]]))
        save_index(index, archive_path)
        loaded = load_index(archive_path)
        pid, __, __ = loaded.nearest(rng.uniform(size=2))
        assert pid == 0
