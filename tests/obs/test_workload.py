"""Workload capture: recorder, sampling, sinks, JSONL/NPZ round trips."""

import json

import numpy as np
import pytest

from repro.obs import analytics, workload
from repro.obs.workload import (
    WORKLOAD_FORMAT,
    WORKLOAD_VERSION,
    Workload,
    WorkloadFormatError,
    WorkloadRecorder,
    load_workload,
    save_workload_npz,
)


@pytest.fixture(autouse=True)
def clean_recorder():
    workload.uninstall()
    yield
    workload.uninstall()


def _fill(recorder, n, dim=3, pages=2):
    rng = np.random.default_rng(7)
    for i in range(n):
        recorder.record(rng.random(dim), i, float(i) * 0.5, pages)


class TestWorkloadRecorder:
    def test_records_and_exports_a_workload(self):
        rec = WorkloadRecorder()
        _fill(rec, 5)
        captured = rec.workload()
        assert len(captured) == 5
        assert captured.dim == 3
        assert captured.point_ids.tolist() == [0, 1, 2, 3, 4]
        assert captured.distances[3] == 1.5
        assert captured.pages.tolist() == [2] * 5
        assert rec.seen == rec.recorded == 5

    def test_capacity_ring_drops_oldest(self):
        rec = WorkloadRecorder(capacity=3)
        _fill(rec, 5)
        captured = rec.workload()
        assert len(captured) == 3
        assert captured.point_ids.tolist() == [2, 3, 4]
        assert rec.dropped == 2
        assert rec.recorded == 5

    def test_sampling_is_seeded_and_reproducible(self):
        kept = []
        for __ in range(2):
            rec = WorkloadRecorder(sample=0.3, seed=11)
            _fill(rec, 200)
            kept.append(rec.workload().point_ids.tolist())
        assert kept[0] == kept[1]
        assert 0 < len(kept[0]) < 200
        assert rec.seen == 200
        assert rec.recorded == len(kept[0])

    def test_sample_validated(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                WorkloadRecorder(sample=bad)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            WorkloadRecorder(capacity=0)

    def test_path_sink_writes_header_then_records(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        rec = WorkloadRecorder(sink=path)
        _fill(rec, 2)
        rec.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {
            "format": WORKLOAD_FORMAT,
            "version": WORKLOAD_VERSION,
            "dim": 3,
        }
        first = json.loads(lines[1])
        assert first["id"] == 0
        assert first["pages"] == 2
        assert len(first["q"]) == 3

    def test_appending_to_existing_log_skips_second_header(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        rec = WorkloadRecorder(sink=path)
        _fill(rec, 1)
        rec.close()
        rec2 = WorkloadRecorder(sink=path)
        _fill(rec2, 1)
        rec2.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # one header, two records
        loaded = load_workload(path)
        assert len(loaded) == 2

    def test_borrowed_file_sink_is_not_closed(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            rec = WorkloadRecorder(sink=handle)
            _fill(rec, 1)
            rec.close()
            assert not handle.closed


class TestRoundTrips:
    def test_jsonl_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "w.jsonl"
        rec = WorkloadRecorder(sink=path)
        _fill(rec, 10)
        rec.close()
        loaded = load_workload(path)
        original = rec.workload()
        np.testing.assert_array_equal(loaded.queries, original.queries)
        np.testing.assert_array_equal(loaded.point_ids, original.point_ids)
        np.testing.assert_array_equal(loaded.distances, original.distances)
        np.testing.assert_array_equal(loaded.pages, original.pages)

    def test_npz_round_trip_is_exact(self, tmp_path):
        rec = WorkloadRecorder()
        _fill(rec, 10)
        original = rec.workload()
        path = save_workload_npz(original, tmp_path / "w.npz")
        loaded = load_workload(path)
        np.testing.assert_array_equal(loaded.queries, original.queries)
        np.testing.assert_array_equal(loaded.point_ids, original.point_ids)
        np.testing.assert_array_equal(loaded.distances, original.distances)
        np.testing.assert_array_equal(loaded.pages, original.pages)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadFormatError, match="no such"):
            load_workload(tmp_path / "absent.jsonl")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(WorkloadFormatError, match="empty"):
            load_workload(path)

    def test_wrong_format_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something.else", "version": 1}\n')
        with pytest.raises(WorkloadFormatError, match="header"):
            load_workload(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": WORKLOAD_FORMAT, "version": 99}) + "\n"
        )
        with pytest.raises(WorkloadFormatError, match="version"):
            load_workload(path)

    def test_malformed_record_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"format": WORKLOAD_FORMAT, "version": 1, "dim": 2}
            )
            + '\n{"q": [0.1, 0.2]}\n'
        )
        with pytest.raises(WorkloadFormatError, match=":2:"):
            load_workload(path)

    def test_non_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(WorkloadFormatError, match="not JSON"):
            load_workload(path)

    def test_npz_wrong_format_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, queries=np.zeros((1, 2)))
        with pytest.raises(WorkloadFormatError, match="not a workload"):
            load_workload(path)

    def test_length_mismatch_raises(self):
        with pytest.raises(WorkloadFormatError, match="length"):
            Workload(np.zeros((3, 2)), np.zeros(2, np.int64), np.zeros(3))


class TestModuleFastPath:
    def test_record_query_noop_when_off(self):
        workload.record_query(np.zeros(2), 0, 0.0)  # must not raise
        assert workload.get_recorder() is None

    def test_record_query_feeds_installed_recorder(self):
        rec = workload.install(dim=2)
        workload.record_query(np.array([0.1, 0.2]), 4, 0.25, 3, "serial")
        assert len(rec) == 1
        assert rec.workload().point_ids.tolist() == [4]

    def test_install_rejects_recorder_plus_kwargs(self):
        with pytest.raises(ValueError):
            workload.install(WorkloadRecorder(), sample=0.5)

    def test_record_batch_amortises_pages(self):
        rec = workload.install()
        qs = np.arange(6, dtype=np.float64).reshape(3, 2)
        workload.record_batch(
            qs, np.array([5, 6, 7]), np.array([0.1, 0.2, 0.3]), pages=10
        )
        captured = rec.workload()
        assert captured.point_ids.tolist() == [5, 6, 7]
        assert captured.pages.tolist() == [3, 3, 3]  # 10 // 3 each

    def test_record_batch_empty_is_noop(self):
        rec = workload.install()
        workload.record_batch(
            np.empty((0, 2)), np.empty(0, np.int64), np.empty(0)
        )
        assert len(rec) == 0

    def test_shard_scope_suppresses_inner_capture(self):
        rec = workload.install()
        with analytics.shard_scope(1):
            workload.record_query(np.zeros(2), 0, 0.0)
            workload.record_batch(
                np.zeros((2, 2)), np.zeros(2, np.int64), np.zeros(2)
            )
        assert len(rec) == 0
        workload.record_query(np.zeros(2), 0, 0.0)
        assert len(rec) == 1

    def test_capturing_context_restores_and_closes(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        outer = workload.install()
        with workload.capturing(sink=path) as inner:
            assert workload.get_recorder() is inner
            workload.record_query(np.array([0.5, 0.5]), 1, 0.1)
        assert workload.get_recorder() is outer
        assert len(load_workload(path)) == 1
