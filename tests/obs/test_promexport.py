"""Prometheus exposition: rendering, strict parsing, scrape endpoint."""

import json
import urllib.request

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    MetricsRegistry,
    labeled,
    parse_labeled,
    sum_labeled,
)
from repro.obs.promexport import (
    CONTENT_TYPE,
    ExpositionNameError,
    MetricsServer,
    metric_name,
    parse_exposition,
    render_prometheus,
    validate_metric_name,
)
from repro.obs.timeseries import DEFAULT_WINDOWS, TimeSeries


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.inc("serve.rejected", 3)
    reg.set_gauge("serve.queue.depth", 7)
    for v in (1.0, 2.0, 3.0, 4.0):
        reg.observe("serve.latency_ms", v)
    return reg


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("serve.latency_ms") == "serve_latency_ms"

    def test_invalid_chars_sanitised(self):
        assert metric_name("a-b c") == "a_b_c"

    def test_leading_digit_prefixed(self):
        assert metric_name("9lives") == "_9lives"


class TestRender:
    def test_counter_exposed_with_total_suffix(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE serve_rejected_total counter" in text
        assert "serve_rejected_total 3" in text

    def test_gauge_keeps_name(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 7" in text

    def test_histogram_as_summary_with_min_max(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE serve_latency_ms summary" in text
        assert 'serve_latency_ms{quantile="0.5"}' in text
        assert "serve_latency_ms_sum 10" in text
        assert "serve_latency_ms_count 4" in text
        assert "serve_latency_ms_min 1" in text
        assert "serve_latency_ms_max 4" in text

    def test_round_trip_through_parser(self, registry):
        samples = parse_exposition(render_prometheus(registry))
        assert samples["serve_rejected_total"] == 3.0
        assert samples['serve_latency_ms{quantile="0.5"}'] == 2.5
        assert samples["serve_latency_ms_count"] == 4.0


class TestParse:
    def test_comments_and_blanks_skipped(self):
        assert parse_exposition("# HELP x\n\nx 1\n") == {"x": 1.0}

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_exposition("not a metric line at all!\n")

    def test_non_numeric_value_raises(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_exposition("x abc\n")


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


class TestMetricsServer:
    def test_scrape_on_ephemeral_port(self, registry):
        with MetricsServer(registry=registry) as server:
            assert server.port > 0
            status, headers, body = _get(server.url)
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        samples = parse_exposition(body)
        assert samples["serve_rejected_total"] == 3.0

    def test_telemetry_endpoint_serves_windows(self, registry):
        ts = TimeSeries()
        ts.observe("serve.latency_ms", 5.0)
        with MetricsServer(registry=registry, timeseries=ts) as server:
            __, __, body = _get(
                f"http://{server.host}:{server.port}/telemetry"
            )
        document = json.loads(body)
        assert sorted(document["windows"]) == sorted(
            str(s) for s in DEFAULT_WINDOWS
        )
        one_second = document["windows"]["1"]["serve.latency_ms"]
        assert one_second["count"] == 1

    def test_telemetry_without_timeseries_is_empty(self, registry):
        with MetricsServer(registry=registry) as server:
            __, __, body = _get(
                f"http://{server.host}:{server.port}/telemetry"
            )
        assert json.loads(body) == {"windows": {}}

    def test_healthz_and_404(self, registry):
        with MetricsServer(registry=registry) as server:
            status, __, body = _get(
                f"http://{server.host}:{server.port}/healthz"
            )
            assert (status, body) == (200, "ok\n")
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{server.host}:{server.port}/nope")
            assert err.value.code == 404

    def test_close_is_idempotent(self, registry):
        server = MetricsServer(registry=registry).start()
        server.close()
        server.close()


class TestValidateMetricName:
    @pytest.mark.parametrize("name", [
        "serve.latency_ms", "build_total", "lp:solve", "a1.b2_c3",
    ])
    def test_accepts_exposable_names(self, name):
        validate_metric_name(name)  # no exception

    @pytest.mark.parametrize("name,reason_match", [
        ("", "non-empty"),
        (None, "non-empty"),
        ("serve latency", "offending characters"),
        ("café.latency", "offending characters"),
        ("9lives", "exposition grammar"),
        ("_.reserved", "reserved"),
        ("__internal", "reserved"),
    ])
    def test_rejects_unexposable_names(self, name, reason_match):
        with pytest.raises(ExpositionNameError, match=reason_match):
            validate_metric_name(name)

    def test_error_carries_name_and_reason(self):
        with pytest.raises(ExpositionNameError) as err:
            validate_metric_name("bad name")
        assert err.value.name == "bad name"
        assert "bad name" in str(err.value)
        assert isinstance(err.value, ValueError)


class TestRegistryValidator:
    def test_typo_fails_at_registration_time(self):
        reg = MetricsRegistry()
        reg.set_name_validator(validate_metric_name)
        with pytest.raises(ExpositionNameError):
            reg.inc("serve latency")
        with pytest.raises(ExpositionNameError):
            reg.observe("café.ms", 1.0)
        with pytest.raises(ExpositionNameError):
            reg.set_gauge("9lives", 1.0)
        reg.inc("serve.ok")  # valid names still register

    def test_installing_validator_revalidates_existing_names(self):
        reg = MetricsRegistry()
        reg.inc("bad name")
        with pytest.raises(ExpositionNameError):
            reg.set_name_validator(validate_metric_name)

    def test_validator_can_be_removed(self):
        reg = MetricsRegistry()
        reg.set_name_validator(validate_metric_name)
        reg.set_name_validator(None)
        reg.inc("anything goes")  # back to permissive


class TestTraceEndpoint:
    def _store_with_request(self):
        from repro.obs.tracestore import StoredTrace, TraceStore
        from repro.obs.tracing import Span

        root = Span("serve.request")
        root.start, root.end = 0.0, 0.005
        child = Span("serve.queue_wait")
        child.start, child.end = 0.0, 0.002
        root.children.append(child)
        store = TraceStore()
        store.add_trace(StoredTrace(
            trace_id="deadbeef00000001", root=root, kind="request",
            ts=0.0, duration_ms=5.0,
        ))
        return store

    def test_trace_lookup_serves_critical_path_and_tree(self, registry):
        store = self._store_with_request()
        with MetricsServer(registry=registry, tracestore=store) as server:
            status, __, body = _get(
                f"http://{server.host}:{server.port}"
                "/trace/deadbeef00000001"
            )
        assert status == 200
        document = json.loads(body)
        assert document["trace_id"] == "deadbeef00000001"
        assert document["critical_path"]["stages"]["queue_wait"] == 2.0
        assert document["root"]["name"] == "serve.request"

    def test_unknown_trace_is_404(self, registry):
        store = self._store_with_request()
        with MetricsServer(registry=registry, tracestore=store) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{server.host}:{server.port}/trace/nope")
            assert err.value.code == 404

    def test_trace_endpoint_without_store_is_404(self, registry):
        with MetricsServer(registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{server.host}:{server.port}/trace/any")
            assert err.value.code == 404

    def test_telemetry_reports_trace_retention(self, registry):
        store = self._store_with_request()
        with MetricsServer(registry=registry, tracestore=store) as server:
            __, __, body = _get(
                f"http://{server.host}:{server.port}/telemetry"
            )
        document = json.loads(body)
        assert document["traces"] == {
            "stored": 1, "added": 1, "dropped": 0,
        }


class TestWatchdogWiring:
    def test_healthz_pages_as_503(self, registry):
        from repro.obs.slo import SLO, SLOWatchdog

        ts = TimeSeries()
        for __ in range(20):
            ts.observe("serve.latency_ms", 500.0)
        dog = SLOWatchdog(ts, slos=[SLO(
            name="latency_p99", kind="latency", budget=0.01,
            threshold_ms=50.0,
        )])
        dog.evaluate()
        assert dog.paging
        with MetricsServer(registry=registry, watchdog=dog) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{server.host}:{server.port}/healthz")
            assert err.value.code == 503

    def test_telemetry_carries_slo_status(self, registry):
        from repro.obs.slo import SLOWatchdog

        ts = TimeSeries()
        dog = SLOWatchdog(ts)
        dog.evaluate()
        with MetricsServer(registry=registry, watchdog=dog) as server:
            __, __, body = _get(
                f"http://{server.host}:{server.port}/telemetry"
            )
        document = json.loads(body)
        assert document["slo"]["state"] == "ok"
        assert len(document["slo"]["objectives"]) == 4


class TestLabeledExposition:
    """Dimensional registry keys render as real Prometheus labels."""

    @pytest.fixture
    def labeled_registry(self):
        reg = MetricsRegistry()
        reg.inc(labeled("shard.retry", shard="0"), 2)
        reg.inc(labeled("shard.retry", shard="1"), 5)
        reg.inc(labeled("serve.fallback", stage="batch"), 1)
        reg.set_gauge(labeled("shard.depth", shard="1"), 9)
        reg.observe(labeled("shard.latency_ms", shard="0"), 3.0)
        return reg

    def test_one_type_line_per_family(self, labeled_registry):
        text = render_prometheus(labeled_registry)
        assert text.count("# TYPE shard_retry_total counter") == 1
        assert 'shard_retry_total{shard="0"} 2' in text
        assert 'shard_retry_total{shard="1"} 5' in text

    def test_labeled_gauge_and_summary(self, labeled_registry):
        text = render_prometheus(labeled_registry)
        assert 'shard_depth{shard="1"} 9' in text
        assert 'shard_latency_ms{shard="0",quantile="0.5"} 3' in text
        assert 'shard_latency_ms_sum{shard="0"} 3' in text
        assert 'shard_latency_ms_count{shard="0"} 1' in text

    def test_scrape_round_trips_to_canonical_keys(self, labeled_registry):
        samples = parse_exposition(render_prometheus(labeled_registry))
        assert samples['shard_retry_total{shard="0"}'] == 2.0
        assert samples['shard_retry_total{shard="1"}'] == 5.0
        assert samples['serve_fallback_total{stage="batch"}'] == 1.0
        assert sum_labeled(samples, "shard_retry_total") == 7.0

    def test_tricky_label_values_survive_the_round_trip(self):
        reg = MetricsRegistry()
        tricky = 'we"ird,}\n\\val'
        reg.inc(labeled("m", k=tricky), 4)
        samples = parse_exposition(render_prometheus(reg))
        [(key, value)] = samples.items()
        assert value == 4.0
        base, labels_dict = parse_labeled(key.replace("m_total", "m", 1))
        assert labels_dict == {"k": tricky}

    def test_parser_rejects_malformed_label_lines(self):
        for bad in (
            'm{k="v" 1',          # unterminated label block
            'm{k=v} 1',           # unquoted value
            'm{k="v",} junk 1',   # two value tokens
            'm{k="v\\"} 1',       # dangling escape eats the quote
            'm{0k="v"} 1',        # bad label name
        ):
            with pytest.raises(ValueError):
                parse_exposition(bad)


@st.composite
def label_values(draw):
    return draw(
        st.text(
            alphabet=st.characters(
                codec="ascii", exclude_characters="\r"
            ),
            min_size=0,
            max_size=12,
        )
    )


class TestLabeledRoundTripProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.dictionaries(
            st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True),
            label_values(),
            min_size=1,
            max_size=3,
        ),
        count=st.integers(min_value=1, max_value=100),
    )
    def test_any_label_values_round_trip(self, values, count):
        """Rendered expositions parse back to the exact canonical key,
        whatever quotes/commas/braces/newlines the values contain."""
        reg = MetricsRegistry()
        key = labeled("prop.metric", **values)
        reg.inc(key, count)
        samples = parse_exposition(render_prometheus(reg))
        [(sample_key, value)] = samples.items()
        assert value == float(count)
        base, parsed = parse_labeled(
            sample_key.replace("prop_metric_total", "prop.metric", 1)
        )
        assert base == "prop.metric"
        assert parsed == values
