"""Workload analytics: sketches, access recorder, skew report, scopes."""

import threading

import pytest

from repro.obs import analytics
from repro.obs.analytics import (
    DEFAULT_HOT_SHARE_FACTOR,
    UNSHARDED,
    AccessRecorder,
    TopKSketch,
    gini,
)


@pytest.fixture(autouse=True)
def clean_recorder():
    analytics.uninstall()
    yield
    analytics.uninstall()


class TestGini:
    def test_empty_and_all_zero_are_balanced(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_uniform_load_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_all_load_on_one_member_approaches_one(self):
        # Exact Gini of (n-1) zeros + one value is (n-1)/n.
        assert gini([0.0, 0.0, 0.0, 12.0]) == pytest.approx(0.75)

    def test_order_invariant(self):
        assert gini([1.0, 2.0, 7.0]) == gini([7.0, 1.0, 2.0])

    def test_more_skew_scores_higher(self):
        assert gini([9.0, 1.0]) > gini([6.0, 4.0])


class TestTopKSketch:
    def test_tracks_and_ranks_hits(self):
        sketch = TopKSketch(capacity=8)
        for key, hits in ((1, 5), (2, 3), (3, 1)):
            for __ in range(hits):
                sketch.hit(key)
        assert sketch.top(2) == [(1, 5.0), (2, 3.0)]
        assert len(sketch) == 3

    def test_ties_break_by_key_for_determinism(self):
        sketch = TopKSketch(capacity=8)
        sketch.hit(7)
        sketch.hit(2)
        assert sketch.top(2) == [(2, 1.0), (7, 1.0)]

    def test_eviction_inherits_the_minimum_count(self):
        sketch = TopKSketch(capacity=2)
        for __ in range(5):
            sketch.hit(1)
        sketch.hit(2)
        # Key 3 evicts the minimum (key 2, count 1) and inherits 1 + 1.
        sketch.hit(3)
        assert len(sketch) == 2
        counts = dict(sketch.top(2))
        assert 2 not in counts
        assert counts[3] == 2.0
        assert sketch.as_dict()["evictions"] == 1

    def test_space_saving_overestimate_bound(self):
        # A reported count never exceeds true count + evicted minimum.
        sketch = TopKSketch(capacity=2)
        for key in range(100):
            sketch.hit(key)
        for __, count in sketch.top(2):
            assert count <= 1.0 + 99  # true(1) + worst-case floor

    def test_decay_scales_and_forgets_cold_keys(self):
        sketch = TopKSketch(capacity=8)
        for __ in range(10):
            sketch.hit(1)
        sketch.hit(2)  # count 1 -> 0.5 after decay -> dropped (< 0.5 kept)
        sketch.decay(0.4)
        counts = dict(sketch.top(8))
        assert counts == {1: 4.0}

    def test_decay_factor_validated(self):
        sketch = TopKSketch()
        for factor in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                sketch.decay(factor)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TopKSketch(capacity=0)

    def test_as_dict_rows_are_key_count_dicts(self):
        sketch = TopKSketch(capacity=4)
        sketch.hit(9, amount=2.5)
        doc = sketch.as_dict(k=1)
        assert doc["top"] == [{"key": 9, "count": 2.5}]
        assert doc["capacity"] == 4
        assert doc["hits"] == 1


class TestAccessRecorder:
    def test_record_cells_feeds_heatmap_and_shard_tally(self):
        rec = AccessRecorder()
        rec.record_cells([4, 4, 7], shard=1)
        report = rec.report()
        assert report["shards"]["1"]["cells"] == 3
        top = {row["key"]: row["count"] for row in report["hot_cells"]["top"]}
        assert top == {4: 2.0, 7: 1.0}

    def test_record_page_attributes_cache_outcomes(self):
        rec = AccessRecorder()
        rec.record_page(10, n_blocks=3, hit=False, shard=0)
        rec.record_page(10, n_blocks=3, hit=True, shard=0)
        rec.record_page(11, n_blocks=1, shard=0)  # no cache in play
        shard = rec.report()["shards"]["0"]
        assert shard["pages"] == 3
        assert shard["blocks"] == 7
        assert shard["cache_hits"] == 1
        assert shard["cache_misses"] == 1
        assert shard["cache_hit_ratio"] == 0.5

    def test_cache_hit_ratio_is_none_without_cache_traffic(self):
        rec = AccessRecorder()
        rec.record_page(1, shard=0)
        assert rec.report()["shards"]["0"]["cache_hit_ratio"] is None

    def test_work_share_is_blocks_plus_cells(self):
        rec = AccessRecorder()
        rec.record_cells(range(6), shard=0)
        rec.record_page(1, n_blocks=4, shard=0)  # shard 0 work = 10
        rec.record_cells(range(5), shard=1)      # shard 1 work = 5
        report = rec.report()
        assert report["shards"]["0"]["work"] == 10
        assert report["shards"]["0"]["load_share"] == round(10 / 15, 4)
        assert report["shards"]["1"]["load_share"] == round(5 / 15, 4)

    def test_verdict_names_hot_shards(self):
        rec = AccessRecorder()
        rec.record_cells(range(70), shard=0)
        for shard in (1, 2, 3):
            rec.record_cells(range(10), shard=shard)
        verdict = rec.report()["verdict"]
        assert verdict["balanced"] is False
        assert verdict["hot_shards"] == [0]
        assert "shard(s) 0" in verdict["advice"]
        assert f"{DEFAULT_HOT_SHARE_FACTOR:.2f}x" in verdict["advice"]

    def test_balanced_fleet_gets_no_hot_shards(self):
        rec = AccessRecorder()
        for shard in range(4):
            rec.record_cells(range(25), shard=shard)
        verdict = rec.report()["verdict"]
        assert verdict["balanced"] is True
        assert verdict["hot_shards"] == []
        assert "balanced" in verdict["advice"]

    def test_no_sharded_traffic_verdict(self):
        rec = AccessRecorder()
        rec.record_cells([1, 2], shard=None)
        report = rec.report()
        assert report["shards"] == {}
        assert report["verdict"]["advice"] == "no sharded traffic observed"
        assert report["unsharded"]["cells"] == 2

    def test_probes_counted_per_shard(self):
        rec = AccessRecorder()
        for __ in range(3):
            rec.record_probe(2)
        report = rec.report()
        assert report["shards"]["2"]["probes"] == 3
        assert report["total_probes"] == 3

    def test_decay_fires_on_event_cadence(self):
        rec = AccessRecorder(decay_every=4, decay_factor=0.5)
        rec.record_cells([1, 1, 1, 1], shard=0)  # 4 events -> decay
        top = rec.report()["hot_cells"]["top"]
        assert top == [{"key": 1, "count": 2.0}]

    def test_reset_clears_everything(self):
        rec = AccessRecorder()
        rec.record_cells([1], shard=0)
        rec.record_page(2, shard=0)
        rec.reset()
        report = rec.report()
        assert report["shards"] == {}
        assert report["hot_cells"]["tracked"] == 0
        assert report["hot_pages"]["tracked"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AccessRecorder(decay_every=0)
        with pytest.raises(ValueError):
            AccessRecorder(decay_factor=0.0)

    def test_report_is_json_ready(self):
        import json

        rec = AccessRecorder()
        rec.record_cells([1], shard=0)
        rec.record_page(2, hit=True)
        json.dumps(rec.report())  # must not raise

    def test_thread_safety_under_concurrent_hooks(self):
        rec = AccessRecorder()

        def worker(shard):
            for i in range(200):
                rec.record_cells([i % 7], shard=shard)
                rec.record_page(i % 5, shard=shard)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = rec.report()
        assert sum(
            row["cells"] for row in report["shards"].values()
        ) == 800
        assert sum(
            row["pages"] for row in report["shards"].values()
        ) == 800


class TestModuleFastPath:
    def test_hooks_are_noops_when_off(self):
        assert not analytics.active()
        analytics.record_cells([1, 2])
        analytics.record_page(1, hit=True)
        analytics.record_probe(0)
        assert analytics.get_recorder() is None

    def test_install_and_uninstall(self):
        rec = analytics.install()
        assert analytics.active()
        assert analytics.get_recorder() is rec
        analytics.record_cells([5])
        assert rec.report()["unsharded"]["cells"] == 1
        analytics.uninstall()
        assert not analytics.active()

    def test_install_accepts_existing_recorder(self):
        mine = AccessRecorder(sketch_capacity=4)
        assert analytics.install(mine) is mine
        assert analytics.get_recorder() is mine

    def test_recording_context_restores_previous(self):
        outer = analytics.install()
        with analytics.recording() as inner:
            assert inner is not outer
            assert analytics.get_recorder() is inner
        assert analytics.get_recorder() is outer

    def test_shard_scope_attributes_traffic(self):
        with analytics.recording() as rec:
            assert analytics.current_shard() is None
            with analytics.shard_scope(3):
                assert analytics.current_shard() == 3
                analytics.record_cells([1, 2])
                analytics.record_page(7, hit=False)
            assert analytics.current_shard() is None
            analytics.record_cells([9])
        report = rec.report()
        assert report["shards"]["3"]["cells"] == 2
        assert report["shards"]["3"]["pages"] == 1
        assert report["unsharded"]["cells"] == 1

    def test_shard_scope_is_per_thread(self):
        seen = {}

        def probe(shard):
            with analytics.shard_scope(shard):
                seen[shard] = analytics.current_shard()

        with analytics.recording():
            threads = [
                threading.Thread(target=probe, args=(s,)) for s in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert analytics.current_shard() is None
        assert seen == {0: 0, 1: 1, 2: 2}

    def test_unsharded_key_constant(self):
        assert UNSHARDED == -1
