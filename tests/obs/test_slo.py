"""SLO declarations and the multi-window burn-rate watchdog."""

import time

import pytest

from repro.obs import events, metrics
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOWatchdog,
    STATE_OK,
    STATE_PAGE,
    STATE_WARN,
)
from repro.obs.timeseries import TimeSeries


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def ts(clock):
    return TimeSeries(clock=clock)


def latency_slo(budget=0.01, threshold_ms=50.0):
    return SLO(
        name="latency_p99", kind="latency", budget=budget,
        threshold_ms=threshold_ms,
    )


class TestSLODeclaration:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SLO(name="x", kind="availability", budget=0.01)

    @pytest.mark.parametrize("budget", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_budget_outside_unit_interval(self, budget):
        with pytest.raises(ValueError, match="budget"):
            SLO(name="x", kind="latency", budget=budget)

    def test_ratio_needs_a_bad_counter(self):
        with pytest.raises(ValueError, match="bad counter"):
            SLO(name="x", kind="ratio", budget=0.01)

    def test_defaults_cover_latency_errors_and_overload(self):
        names = {slo.name for slo in DEFAULT_SLOS}
        assert names == {
            "latency_p99",
            "error_rate",
            "overload_rate",
            "degraded_rate",
        }


class TestBadFraction:
    def test_empty_window_burns_nothing(self, ts):
        slo = latency_slo()
        snapshot = ts.window(60)
        assert slo.bad_fraction(snapshot) == 0.0
        assert slo.burn_rate(snapshot) == 0.0

    def test_latency_fraction_above_threshold(self, ts):
        for __ in range(90):
            ts.observe("serve.latency_ms", 1.0)
        for __ in range(10):
            ts.observe("serve.latency_ms", 100.0)
        slo = latency_slo(budget=0.01, threshold_ms=50.0)
        snapshot = ts.window(60)
        assert slo.bad_fraction(snapshot) == pytest.approx(0.1)
        assert slo.burn_rate(snapshot) == pytest.approx(10.0)

    def test_ratio_counts_bad_over_bad_plus_good(self, ts):
        slo = SLO(
            name="errors", kind="ratio", budget=0.1,
            bad=("serve.deadline_missed",), good=("serve.completed",),
        )
        for __ in range(3):
            ts.add("serve.deadline_missed")
        for __ in range(97):
            ts.add("serve.completed")
        assert slo.bad_fraction(ts.window(60)) == pytest.approx(0.03)

    def test_ratio_with_no_traffic_is_zero(self, ts):
        slo = SLO(
            name="errors", kind="ratio", budget=0.1,
            bad=("serve.deadline_missed",), good=("serve.completed",),
        )
        assert slo.bad_fraction(ts.window(60)) == 0.0


class TestWatchdogStates:
    def test_constructor_validation(self, ts):
        with pytest.raises(ValueError, match="> 0"):
            SLOWatchdog(ts, page_burn=0.0)
        with pytest.raises(ValueError, match="warn_burn"):
            SLOWatchdog(ts, page_burn=2.0, warn_burn=5.0)
        with pytest.raises(ValueError, match="short, long"):
            SLOWatchdog(ts, alert_windows=(60, 10))

    def test_quiet_service_stays_ok(self, ts):
        dog = SLOWatchdog(ts, slos=[latency_slo()])
        (status,) = dog.evaluate()
        assert status.state == STATE_OK
        assert not dog.paging

    def test_pages_when_both_windows_burn(self, ts):
        dog = SLOWatchdog(ts, slos=[latency_slo(budget=0.01)])
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)  # 100% bad, burn 100x
        (status,) = dog.evaluate()
        assert status.state == STATE_PAGE
        assert dog.paging
        assert status.burn[10] == pytest.approx(100.0)
        assert status.burn[60] == pytest.approx(100.0)

    def test_warns_when_only_the_long_window_burns(self, ts, clock):
        dog = SLOWatchdog(ts, slos=[latency_slo(budget=0.01)])
        for __ in range(5):
            ts.observe("serve.latency_ms", 100.0)
        clock.now += 20.0  # bad burst leaves the 10s window, stays in 60s
        (status,) = dog.evaluate()
        assert status.state == STATE_WARN
        assert not dog.paging

    def test_recovers_to_ok(self, ts, clock):
        dog = SLOWatchdog(ts, slos=[latency_slo()])
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)
        dog.evaluate()
        assert dog.paging
        clock.now += 120.0  # the burst ages out of every window
        (status,) = dog.evaluate()
        assert status.state == STATE_OK
        assert not dog.paging

    def test_transition_emits_slo_event(self, ts):
        dog = SLOWatchdog(ts, slos=[latency_slo()])
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)
        with events.collecting() as log:
            dog.evaluate()
            dog.evaluate()  # no transition -> no second record
        records = log.records("slo")
        assert len(records) == 1
        assert records[0]["objective"] == "latency_p99"
        assert records[0]["previous"] == STATE_OK
        assert records[0]["state"] == STATE_PAGE

    def test_publishes_burn_and_state_gauges(self, ts):
        dog = SLOWatchdog(ts, slos=[latency_slo()])
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)
        with metrics.collecting(fresh=True) as registry:
            dog.evaluate()
        gauges = registry.as_dict()["gauges"]
        assert gauges["serve.slo.latency_p99.burn_rate"] == pytest.approx(
            100.0
        )
        assert gauges["serve.slo.latency_p99.state"] == 2.0

    def test_on_change_fires_on_paging_flips_only(self, ts, clock):
        flips = []
        dog = SLOWatchdog(
            ts, slos=[latency_slo()], on_change=flips.append
        )
        dog.evaluate()
        assert flips == []  # ok -> ok is not a flip
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)
        dog.evaluate()
        dog.evaluate()
        assert flips == [True]
        clock.now += 120.0
        dog.evaluate()
        assert flips == [True, False]

    def test_on_change_exceptions_are_swallowed(self, ts):
        def explode(paging):
            raise RuntimeError("hook bug")

        dog = SLOWatchdog(ts, slos=[latency_slo()], on_change=explode)
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)
        dog.evaluate()  # must not raise
        assert dog.paging


class TestWatchdogStatus:
    def test_status_reports_worst_state_and_objectives(self, ts):
        dog = SLOWatchdog(ts)
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)
        dog.evaluate()
        status = dog.status()
        assert status["state"] == STATE_PAGE
        assert status["paging"] is True
        names = [o["name"] for o in status["objectives"]]
        assert names == [
            "latency_p99",
            "error_rate",
            "overload_rate",
            "degraded_rate",
        ]
        latency = status["objectives"][0]
        assert latency["state"] == STATE_PAGE
        assert latency["burn"]["60s"] == pytest.approx(100.0)

    def test_background_thread_evaluates_and_stops(self, ts):
        dog = SLOWatchdog(ts, slos=[latency_slo()])
        for __ in range(20):
            ts.observe("serve.latency_ms", 100.0)
        dog.start(interval_s=0.01)
        dog.start(interval_s=0.01)  # idempotent
        deadline = time.monotonic() + 2.0
        while not dog.paging and time.monotonic() < deadline:
            time.sleep(0.005)
        dog.stop()
        dog.stop()  # idempotent
        assert dog.paging
