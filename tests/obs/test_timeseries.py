"""Sliding-window time-series: ring reuse, windows, rates, dashboards."""

import threading

import pytest

from repro.obs.timeseries import (
    BUCKET_SAMPLE_CAP,
    DEFAULT_HORIZON_SECONDS,
    DEFAULT_WINDOWS,
    TimeSeries,
    dashboard,
    dashboard_line,
    telemetry_table,
)


class FakeClock:
    """A settable monotonic clock so tests control bucket boundaries."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float = 1.0) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def ts(clock):
    return TimeSeries(clock=clock)


class TestConstruction:
    def test_horizon_must_cover_largest_window(self):
        with pytest.raises(ValueError):
            TimeSeries(horizon_seconds=max(DEFAULT_WINDOWS) - 1)

    def test_sample_cap_positive(self):
        with pytest.raises(ValueError):
            TimeSeries(sample_cap=0)

    def test_defaults(self, ts):
        assert ts.tracks("serve.latency_ms")
        assert ts.tracks("query.candidates")
        assert not ts.tracks("lp.solves")
        assert not ts.tracks("build.chunk_points")


class TestRecording:
    def test_untracked_names_are_dropped(self, ts):
        ts.add("lp.solves", 5)
        ts.observe("storage.reads", 1.0)
        ts.set_gauge("build.height", 3)
        assert ts.window(10).names() == []

    def test_counter_window_totals(self, ts, clock):
        ts.add("serve.rejected", 2)
        clock.tick()
        ts.add("serve.rejected", 3)
        window = ts.window(10).get("serve.rejected")
        assert window.total == 5.0
        assert window.count == 2
        assert window.rate == pytest.approx(0.5)  # amount / window seconds

    def test_histogram_window_percentiles(self, ts):
        for v in range(1, 101):
            ts.observe("query.latency_ms", float(v))
        window = ts.window(1).get("query.latency_ms")
        assert window.count == 100
        assert window.min == 1.0 and window.max == 100.0
        assert window.percentile(50) == pytest.approx(50.5)
        # Histogram rate counts observations per second.
        assert window.rate == pytest.approx(100.0)

    def test_gauge_keeps_last_and_extremes(self, ts, clock):
        ts.set_gauge("serve.queue.depth", 7)
        clock.tick()
        ts.set_gauge("serve.queue.depth", 2)
        window = ts.window(10).get("serve.queue.depth")
        assert window.last == 2.0
        assert window.max == 7.0
        assert window.rate == 0.0

    def test_window_excludes_older_buckets(self, ts, clock):
        ts.observe("serve.latency_ms", 100.0)
        clock.tick(30)
        ts.observe("serve.latency_ms", 1.0)
        assert ts.window(10).get("serve.latency_ms").count == 1
        assert ts.window(60).get("serve.latency_ms").count == 2

    def test_ring_slot_reuse_after_horizon(self, ts, clock):
        """A second that wraps the ring evicts the slot's old bucket."""
        ts.add("serve.rejected", 1)
        clock.tick(DEFAULT_HORIZON_SECONDS)  # same slot, different second
        ts.add("serve.rejected", 1)
        window = ts.window(DEFAULT_HORIZON_SECONDS)
        assert window.get("serve.rejected").total == 1.0

    def test_window_clamps_to_horizon(self, ts):
        ts.add("serve.rejected")
        snapshot = ts.window(10 * DEFAULT_HORIZON_SECONDS)
        assert snapshot.seconds == float(DEFAULT_HORIZON_SECONDS)

    def test_window_seconds_validated(self, ts):
        with pytest.raises(ValueError):
            ts.window(0)

    def test_bucket_reservoir_caps_samples(self, clock):
        ts = TimeSeries(sample_cap=8, clock=clock)
        for v in range(100):
            ts.observe("serve.latency_ms", float(v))
        window = ts.window(1).get("serve.latency_ms")
        assert len(window._samples) == 8
        assert window.count == 100  # aggregates stay exact
        assert window.total == sum(range(100))

    def test_clear_empties_every_bucket(self, ts):
        ts.add("serve.rejected")
        ts.clear()
        assert ts.window(60).names() == []

    def test_windows_returns_standard_view(self, ts):
        ts.observe("serve.latency_ms", 5.0)
        views = ts.windows()
        assert sorted(views) == sorted(DEFAULT_WINDOWS)
        assert views[1].get("serve.latency_ms").count == 1

    def test_thread_safety_under_contention(self, ts):
        n_threads, n_events = 8, 500

        def worker():
            for i in range(n_events):
                ts.add("serve.rejected")
                ts.observe("serve.latency_ms", float(i))

        threads = [threading.Thread(target=worker) for __ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        window = ts.window(1)
        assert window.get("serve.rejected").total == n_threads * n_events
        assert window.get("serve.latency_ms").count == n_threads * n_events
        assert len(window.get("serve.latency_ms")._samples) <= (
            BUCKET_SAMPLE_CAP
        )


class TestDashboard:
    def test_empty_dashboard_is_all_zero(self, ts):
        d = dashboard(ts)
        assert d["qps"] == 0.0
        assert d["p50_ms"] == 0.0
        assert d["completed"] == 0.0
        assert d["fallback_pct"] == 0.0

    def test_prefers_serve_latency(self, ts):
        ts.observe("serve.latency_ms", 10.0)
        ts.observe("query.latency_ms", 99.0)
        assert dashboard(ts)["p50_ms"] == 10.0

    def test_falls_back_to_query_latency(self, ts):
        ts.observe("query.latency_ms", 42.0)
        d = dashboard(ts, seconds=10)
        assert d["p50_ms"] == 42.0
        assert d["qps"] == pytest.approx(0.1)

    def test_fallback_share_sums_all_rungs(self, ts):
        for __ in range(8):
            ts.observe("serve.latency_ms", 1.0)
        ts.add('serve.fallback{stage="serial"}', 1)
        ts.add("query.fallbacks", 1)
        assert dashboard(ts)["fallback_pct"] == pytest.approx(25.0)

    def test_queue_depth_is_last_gauge_value(self, ts):
        ts.set_gauge("serve.queue.depth", 9)
        ts.set_gauge("serve.queue.depth", 4)
        assert dashboard(ts)["queue_depth"] == 4.0

    def test_dashboard_line_renders(self, ts):
        ts.observe("serve.latency_ms", 3.0)
        line = dashboard_line(ts)
        assert line.startswith("[telemetry")
        assert "qps=" in line and "p99=" in line and "fallback=" in line

    def test_telemetry_table_has_one_row_per_window(self, ts):
        ts.observe("serve.latency_ms", 3.0)
        rendered = telemetry_table(ts).render()
        assert "Live telemetry" in rendered
        for seconds in DEFAULT_WINDOWS:
            assert f"{seconds}s" in rendered


class TestWindowSnapshot:
    def test_summary_shape(self, ts):
        ts.observe("serve.latency_ms", 2.0)
        ts.add("serve.rejected", 1)
        doc = ts.window(10).as_dict()
        assert doc["serve.latency_ms"]["p99"] == 2.0
        assert doc["serve.rejected"]["sum"] == 1.0

    def test_total_and_count_defaults(self, ts):
        snapshot = ts.window(10)
        assert snapshot.total("serve.none", default=-1.0) == -1.0
        assert snapshot.count("serve.none", default=-2) == -2


class TestExemplars:
    def test_observation_with_trace_id_becomes_exemplar(self, ts):
        ts.observe("serve.latency_ms", 12.0, trace_id="t1")
        window = ts.window(10).get("serve.latency_ms")
        assert window.exemplars() == [(12.0, "t1")]

    def test_keeps_the_largest_traced_observations(self, ts):
        for i, value in enumerate([5.0, 50.0, 1.0, 30.0, 40.0, 20.0]):
            ts.observe("serve.latency_ms", value, trace_id=f"t{i}")
        window = ts.window(10).get("serve.latency_ms")
        values = [v for v, __ in window.exemplars()]
        assert values == [50.0, 40.0, 30.0, 20.0]  # top-4, descending

    def test_untraced_observations_leave_no_exemplar(self, ts):
        ts.observe("serve.latency_ms", 99.0)
        ts.observe("serve.latency_ms", 1.0, trace_id="slowish")
        window = ts.window(10).get("serve.latency_ms")
        assert window.exemplars() == [(1.0, "slowish")]

    def test_exemplars_merge_across_buckets(self, ts, clock):
        ts.observe("serve.latency_ms", 10.0, trace_id="a")
        clock.now += 2.0
        ts.observe("serve.latency_ms", 30.0, trace_id="b")
        window = ts.window(10).get("serve.latency_ms")
        assert [t for __, t in window.exemplars()] == ["b", "a"]

    def test_summary_surfaces_exemplars_for_histograms(self, ts):
        ts.observe("serve.latency_ms", 25.0, trace_id="xyz")
        summary = ts.window(10).get("serve.latency_ms").summary()
        assert summary["exemplars"] == [
            {"value": 25.0, "trace_id": "xyz"}
        ]

    def test_summary_omits_exemplars_when_none(self, ts):
        ts.observe("serve.latency_ms", 25.0)
        summary = ts.window(10).get("serve.latency_ms").summary()
        assert "exemplars" not in summary


class TestFractionAbove:
    def test_counts_strictly_above_threshold(self, ts):
        for value in (10.0, 20.0, 60.0, 80.0):
            ts.observe("serve.latency_ms", value)
        window = ts.window(10).get("serve.latency_ms")
        assert window.fraction_above(50.0) == pytest.approx(0.5)
        assert window.fraction_above(100.0) == 0.0

    def test_empty_window_reports_zero(self, ts):
        ts.observe("serve.latency_ms", 1.0)
        window = ts.window(10).get("serve.latency_ms")
        # Sanity: a metric absent from the snapshot entirely.
        assert ts.window(10).get("serve.other") is None
        assert window.fraction_above(0.5) == pytest.approx(1.0)


class TestEmptyRendering:
    """Pre-traffic surfaces must render, not crash (the dashboard and
    the scrape endpoint can come up before the first request)."""

    def test_telemetry_table_renders_with_no_buckets(self, ts):
        text = telemetry_table(ts).render()
        assert "1s" in text and "60s" in text

    def test_dashboard_line_renders_with_no_buckets(self, ts):
        line = dashboard_line(ts)
        assert "qps" in line

    def test_summary_of_empty_histogram_window(self, ts, clock):
        ts.observe("serve.latency_ms", 5.0)
        clock.now += 30.0  # the only bucket ages out of the 10s window
        snapshot = ts.window(10)
        assert snapshot.get("serve.latency_ms") is None
        assert snapshot.as_dict() == {}
