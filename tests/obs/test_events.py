"""Structured event log: ring bound, sampling, sinks, module fast path."""

import io
import json

import pytest

from repro.obs import events
from repro.obs.events import EventLog


@pytest.fixture(autouse=True)
def clean_global_state():
    """Every test starts with events disabled and no module-level log."""
    events.disable()
    events._log = None
    yield
    events.disable()
    events._log = None


class TestEventLog:
    def test_records_carry_seq_ts_kind(self):
        log = EventLog(clock=lambda: 123.5)
        assert log.emit("query", outcome="cell", duration_ms=1.0)
        (record,) = log.records()
        assert record["seq"] == 1
        assert record["ts"] == 123.5
        assert record["kind"] == "query"
        assert record["outcome"] == "cell"

    def test_ring_is_bounded_oldest_evicted(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("query", i=i)
        assert len(log) == 3
        assert [r["i"] for r in log.records()] == [2, 3, 4]
        assert log.emitted == 5
        assert log.recorded == 5  # recorded counts writes, not retention

    def test_records_filter_by_kind(self):
        log = EventLog()
        log.emit("query")
        log.emit("flush")
        log.emit("query")
        assert len(log.records("query")) == 2
        assert len(log.records("flush")) == 1

    def test_sampling_is_deterministic_and_audited(self):
        a = EventLog(sample=0.25, seed=7)
        b = EventLog(sample=0.25, seed=7)
        kept_a = [a.emit("query", i=i) for i in range(200)]
        kept_b = [b.emit("query", i=i) for i in range(200)]
        assert kept_a == kept_b  # seeded RNG: reproducible runs
        assert 0 < a.recorded < a.emitted == 200
        assert a.recorded == sum(kept_a)

    def test_sample_bounds_validated(self):
        with pytest.raises(ValueError):
            EventLog(sample=1.5)
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_filelike_sink_is_borrowed_not_closed(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        log.emit("flush", outcome="ok")
        log.close()
        assert not sink.closed
        (line,) = sink.getvalue().splitlines()
        assert json.loads(line)["outcome"] == "ok"

    def test_path_sink_is_owned_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=path)
        log.emit("query", i=0)
        log.emit("batch", n_queries=4)
        log.close()
        lines = [json.loads(s) for s in path.read_text().splitlines()]
        assert [r["kind"] for r in lines] == ["query", "batch"]

    def test_clear_keeps_counters(self):
        log = EventLog()
        log.emit("query")
        log.clear()
        assert len(log) == 0
        assert log.emitted == 1


class TestModuleFastPath:
    def test_disabled_emit_is_dropped(self):
        events.emit("query", i=1)
        assert not events.enabled()
        assert events.get_log() is None

    def test_enable_emit_disable(self):
        log = events.enable()
        events.emit("query", i=1)
        events.disable()
        events.emit("query", i=2)  # dropped
        assert [r["i"] for r in log.records()] == [1]

    def test_enable_with_kwargs_builds_fresh_log(self):
        log = events.enable(capacity=2, sample=1.0)
        assert log.capacity == 2
        assert events.get_log() is log

    def test_enable_rejects_log_plus_kwargs(self):
        with pytest.raises(ValueError):
            events.enable(EventLog(), capacity=5)

    def test_enable_reuses_previous_log(self):
        first = events.enable()
        events.disable()
        assert events.enable() is first

    def test_collecting_restores_prior_state(self):
        outer = events.enable()
        events.emit("query", where="outer")
        with events.collecting() as inner:
            events.emit("query", where="inner")
        assert events.enabled()
        assert events.get_log() is outer
        assert [r["where"] for r in inner.records()] == ["inner"]
        assert [r["where"] for r in outer.records()] == ["outer"]

    def test_collecting_from_disabled_state(self):
        with events.collecting() as log:
            events.emit("flush")
        assert not events.enabled()
        assert len(log.records("flush")) == 1

    def test_noop_overhead_is_bounded(self):
        """Disabled emit() must stay within a small multiple of a plain
        no-op call — the same "cheap when disabled" contract metrics
        honours."""
        import timeit

        def nop():
            return None

        n = 50_000
        base = min(timeit.repeat(nop, number=n, repeat=5))
        instrumented = min(
            timeit.repeat(lambda: events.emit("query"), number=n, repeat=5)
        )
        assert instrumented < base * 20
