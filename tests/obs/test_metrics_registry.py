"""Registry semantics: counters, gauges, histograms, snapshots, threads."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
    base_name,
    labeled,
    parse_labeled,
)


@pytest.fixture(autouse=True)
def clean_global_state():
    """Every test starts disabled, empty, and without a time-series sink."""
    metrics.disable()
    metrics.get_registry().reset()
    metrics.uninstall_timeseries()
    yield
    metrics.disable()
    metrics.get_registry().reset()
    metrics.uninstall_timeseries()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("x")
        for v in (4.0, 1.0, 7.0, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 14.0
        assert h.min == 1.0 and h.max == 7.0
        assert h.mean == pytest.approx(3.5)

    def test_percentiles_interpolate(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_empty_summary_is_all_zero(self):
        assert Histogram("x").summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_sample_cap_keeps_aggregates_exact(self):
        h = Histogram("x")
        for __ in range(HISTOGRAM_SAMPLE_CAP + 10):
            h.observe(1.0)
        assert h.count == HISTOGRAM_SAMPLE_CAP + 10
        assert len(h._samples) == HISTOGRAM_SAMPLE_CAP

    def test_reservoir_admits_late_observations(self, monkeypatch):
        """Past the cap, percentiles must keep tracking the stream
        instead of freezing on the first-N warm-up values (the old
        first-come-first-kept bias)."""
        monkeypatch.setattr(metrics, "HISTOGRAM_SAMPLE_CAP", 64)
        h = Histogram("x")
        for __ in range(64):
            h.observe(1.0)  # warm-up plateau fills the reservoir
        for __ in range(64 * 20):
            h.observe(100.0)  # the steady state the sample must reflect
        late = sum(1 for v in h._samples if v == 100.0)
        # ~95% of the stream is late values; a uniform reservoir keeps a
        # clear majority of them (first-N-kept would hold zero).
        assert late > 32
        assert h.percentile(50) == 100.0
        # Exact aggregates are unaffected by sampling.
        assert h.count == 64 * 21
        assert h.min == 1.0 and h.max == 100.0
        assert h.total == 64 * 1.0 + 64 * 20 * 100.0

    def test_reservoir_is_deterministic_per_name(self, monkeypatch):
        monkeypatch.setattr(metrics, "HISTOGRAM_SAMPLE_CAP", 16)
        a, b = Histogram("same"), Histogram("same")
        for i in range(500):
            a.observe(float(i))
            b.observe(float(i))
        assert a._samples == b._samples


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_snapshot_and_delta(self):
        reg = MetricsRegistry()
        reg.inc("hits", 3)
        reg.observe("sizes", 10)
        before = reg.snapshot()
        assert before == {"hits": 3.0, "sizes.count": 1.0, "sizes.sum": 10.0}
        reg.inc("hits")
        reg.inc("misses", 2)
        delta = reg.delta_since(before)
        # Only what changed, including the brand-new counter.
        assert delta == {"hits": 1.0, "misses": 2.0}

    def test_snapshot_excludes_gauges(self):
        reg = MetricsRegistry()
        reg.set_gauge("height", 4)
        assert reg.snapshot() == {}

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 1)
        reg.observe("c", 1)
        reg.reset()
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_as_dict_structure(self):
        reg = MetricsRegistry()
        reg.inc("z.counter", 2)
        reg.set_gauge("gauge", 7)
        reg.observe("hist", 5)
        data = reg.as_dict()
        assert data["counters"] == {"z.counter": 2.0}
        assert data["gauges"] == {"gauge": 7.0}
        assert data["histograms"]["hist"]["count"] == 1

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()
        n_threads, n_events = 8, 2000

        def worker():
            for __ in range(n_events):
                reg.inc("shared")
                reg.observe("sizes", 1.0)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for f in [pool.submit(worker) for __ in range(n_threads)]:
                f.result()
        assert reg.counter("shared").value == n_threads * n_events
        assert reg.histogram("sizes").count == n_threads * n_events


class TestModuleFastPath:
    def test_disabled_events_are_dropped(self):
        metrics.inc("a")
        metrics.observe("b", 1)
        metrics.set_gauge("c", 1)
        assert len(metrics.get_registry()) == 0
        assert not metrics.enabled()

    def test_enable_records_then_disable_stops(self):
        metrics.enable()
        metrics.inc("a", 2)
        metrics.disable()
        metrics.inc("a", 100)  # dropped
        assert metrics.snapshot() == {"a": 2.0}

    def test_collecting_restores_previous_state(self):
        assert not metrics.enabled()
        with metrics.collecting() as reg:
            assert metrics.enabled()
            metrics.inc("inside")
        assert not metrics.enabled()
        assert reg.snapshot() == {"inside": 1.0}

    def test_collecting_fresh_clears_registry(self):
        metrics.enable()
        metrics.inc("stale")
        with metrics.collecting(fresh=True) as reg:
            assert reg.snapshot() == {}
            metrics.inc("new")
        # Outer scope was enabled, so recording stays on afterwards.
        assert metrics.enabled()
        assert metrics.snapshot() == {"new": 1.0}

    def test_noop_overhead_is_bounded(self):
        """Disabled inc() must stay within a small multiple of a plain
        no-op function call — the "cheap when disabled" contract."""
        import timeit

        def nop():
            return None

        n = 50_000
        base = min(
            timeit.repeat(nop, number=n, repeat=5)
        )
        instrumented = min(
            timeit.repeat(lambda: metrics.inc("x"), number=n, repeat=5)
        )
        # Generous bound: one extra boolean check should never cost more
        # than 20x an empty call even on noisy CI machines.
        assert instrumented < base * 20


class TestTimeseriesSink:
    def test_enabled_events_mirror_into_installed_sink(self):
        from repro.obs.timeseries import TimeSeries

        ts = metrics.install_timeseries(TimeSeries())
        assert metrics.get_timeseries() is ts
        metrics.enable()
        metrics.inc("serve.rejected", 2)
        metrics.observe("serve.latency_ms", 5.0)
        metrics.set_gauge("serve.queue.depth", 3)
        window = ts.window(10)
        assert window.total("serve.rejected") == 2.0
        assert window.get("serve.latency_ms").count == 1
        assert window.get("serve.queue.depth").last == 3.0
        # The registry recorded the same events.
        assert metrics.snapshot()["serve.rejected"] == 2.0

    def test_disabled_events_never_reach_sink(self):
        from repro.obs.timeseries import TimeSeries

        ts = metrics.install_timeseries(TimeSeries())
        metrics.inc("serve.rejected")
        metrics.observe("serve.latency_ms", 5.0)
        assert ts.window(10).names() == []

    def test_uninstall_stops_mirroring(self):
        from repro.obs.timeseries import TimeSeries

        ts = metrics.install_timeseries(TimeSeries())
        metrics.enable()
        metrics.uninstall_timeseries()
        assert metrics.get_timeseries() is None
        metrics.inc("serve.rejected")
        assert ts.window(10).names() == []


class TestLabels:
    """Canonical labeled keys, escaping, and the cardinality guard."""

    def test_labeled_builds_sorted_canonical_key(self):
        key = labeled("serve.fallback", stage="batch", shard="3")
        assert key == 'serve.fallback{shard="3",stage="batch"}'

    def test_labeled_without_labels_is_the_base_name(self):
        assert labeled("serve.fallback") == "serve.fallback"

    def test_labeled_escapes_quotes_backslashes_newlines(self):
        key = labeled("m", v='a"b\\c\nd')
        assert key == 'm{v="a\\"b\\\\c\\nd"}'
        base, labels_dict = parse_labeled(key)
        assert base == "m"
        assert labels_dict == {"v": 'a"b\\c\nd'}

    def test_labeled_rejects_bad_label_names(self):
        with pytest.raises(ValueError):
            labeled("m", **{"bad-name": "v"})

    def test_labeled_rejects_brace_in_base_name(self):
        with pytest.raises(ValueError):
            labeled("m{oops", k="v")

    def test_parse_labeled_round_trips_tricky_values(self):
        tricky = 'we"ird,}\n\\val'
        key = labeled("shard.retry", shard=tricky, other="x")
        base, labels_dict = parse_labeled(key)
        assert base == "shard.retry"
        assert labels_dict == {"shard": tricky, "other": "x"}

    def test_parse_labeled_rejects_malformed_keys(self):
        for bad in ("m{", 'm{k="v"', "m{k=v}", 'm{k="v"x}'):
            with pytest.raises(ValueError):
                parse_labeled(bad)

    def test_base_name_strips_label_block(self):
        assert base_name('serve.fallback{stage="scan"}') == "serve.fallback"
        assert base_name("serve.fallback") == "serve.fallback"

    def test_sum_labeled_aggregates_children_and_base(self):
        flat = {
            "shard.retry": 1.0,
            'shard.retry{shard="0"}': 2.0,
            'shard.retry{shard="1"}': 3.0,
            "shard.retries": 100.0,  # different base: not summed
        }
        assert metrics.sum_labeled(flat, "shard.retry") == 6.0

    def test_registry_accepts_labeled_counters(self):
        reg = MetricsRegistry()
        reg.inc(labeled("shard.retry", shard="2"), 5)
        flat = reg.snapshot()
        assert flat['shard.retry{shard="2"}'] == 5.0

    def test_cardinality_cap_raises_typed_error(self):
        reg = MetricsRegistry(max_label_sets=3)
        for i in range(3):
            reg.inc(labeled("m", shard=str(i)))
        with pytest.raises(LabelCardinalityError) as excinfo:
            reg.inc(labeled("m", shard="overflow"))
        assert excinfo.value.base == "m"
        assert excinfo.value.cap == 3

    def test_cardinality_cap_is_per_base_name(self):
        reg = MetricsRegistry(max_label_sets=2)
        reg.inc(labeled("a", k="1"))
        reg.inc(labeled("a", k="2"))
        reg.inc(labeled("b", k="1"))  # different base: fresh budget
        with pytest.raises(LabelCardinalityError):
            reg.inc(labeled("a", k="3"))

    def test_repeat_label_sets_do_not_consume_budget(self):
        reg = MetricsRegistry(max_label_sets=1)
        key = labeled("m", k="v")
        for __ in range(10):
            reg.inc(key)
        assert reg.snapshot()[key] == 10.0

    def test_unlabeled_name_not_counted_against_cap(self):
        reg = MetricsRegistry(max_label_sets=1)
        reg.inc("m")
        reg.inc(labeled("m", k="v"))
        assert reg.snapshot()["m"] == 1.0

    def test_malformed_labeled_key_rejected_at_admission(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc('m{k=unquoted}')

    def test_reset_clears_label_budget(self):
        reg = MetricsRegistry(max_label_sets=1)
        reg.inc(labeled("m", k="a"))
        reg.reset()
        reg.inc(labeled("m", k="b"))  # would raise without the reset
        assert reg.snapshot() == {'m{k="b"}': 1.0}

    def test_validator_runs_on_the_base_name(self):
        reg = MetricsRegistry()

        def validator(name):
            if name == "forbidden":
                raise ValueError("nope")

        reg.set_name_validator(validator)
        reg.inc(labeled("allowed", k="v"))
        with pytest.raises(ValueError):
            reg.inc(labeled("forbidden", k="v"))
