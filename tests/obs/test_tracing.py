"""Span tracing: nesting, timing monotonicity, no-op mode, threads."""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import tracectx, tracing
from repro.obs.tracing import (
    Span,
    Tracer,
    _NOOP,
    carrier,
    current_span,
    span,
    traced,
)


@pytest.fixture(autouse=True)
def clean_tracing_state():
    tracing.disable()
    if tracing.get_tracer() is not None:
        tracing.get_tracer().clear()
    yield
    tracing.disable()


class TestDisabledMode:
    def test_span_returns_shared_noop(self):
        assert span("anything") is _NOOP
        assert span("other", k=1) is _NOOP

    def test_noop_span_is_inert(self):
        with span("x") as s:
            s.set("key", "value")  # swallowed
        assert current_span() is _NOOP

    def test_traced_function_runs_untraced(self):
        calls = []

        @traced("work")
        def work(v):
            calls.append(v)
            return v * 2

        assert work(3) == 6
        assert calls == [3]


class TestEnabledMode:
    def test_root_span_lands_on_tracer(self):
        tracer = tracing.enable(Tracer())
        with span("root", dim=4):
            pass
        assert [s.name for s in tracer.spans] == ["root"]
        assert tracer.spans[0].attributes == {"dim": 4}

    def test_nesting_mirrors_call_structure(self):
        tracer = tracing.enable(Tracer())
        with span("query"):
            with span("lookup"):
                pass
            with span("scan"):
                with span("refine"):
                    pass
        (root,) = tracer.spans
        assert [c.name for c in root.children] == ["lookup", "scan"]
        assert [c.name for c in root.children[1].children] == ["refine"]

    def test_current_span_tracks_innermost(self):
        tracing.enable(Tracer())
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer

    def test_timing_is_monotonic_and_nested(self):
        tracer = tracing.enable(Tracer())
        with span("parent"):
            with span("child"):
                time.sleep(0.002)
        (parent,) = tracer.spans
        (child,) = parent.children
        assert child.duration_seconds >= 0.002
        # A child's window sits inside its parent's.
        assert parent.start <= child.start
        assert child.end <= parent.end
        assert parent.duration_seconds >= child.duration_seconds

    def test_attributes_set_during_block(self):
        tracer = tracing.enable(Tracer())
        with span("q") as s:
            s.set("pages", 5)
            s.set("pages", 7)  # overwrite wins
        assert tracer.spans[0].attributes == {"pages": 7}

    def test_span_closes_on_exception(self):
        tracer = tracing.enable(Tracer())
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        (s,) = tracer.spans
        assert s.end >= s.start
        assert current_span() is not s

    def test_traced_decorator_records_calls(self):
        tracer = tracing.enable(Tracer())

        @traced("lp.solve")
        def solve():
            return 42

        solve()
        solve()
        assert [s.name for s in tracer.spans] == ["lp.solve", "lp.solve"]

    def test_find_searches_whole_tree(self):
        tracer = tracing.enable(Tracer())
        with span("a"):
            with span("b"):
                with span("a"):
                    pass
        assert len(tracer.find("a")) == 2
        assert len(tracer.find("b")) == 1
        assert tracer.find("missing") == []

    def test_threads_get_independent_span_stacks(self):
        """contextvars isolate the current span per thread: spans started
        in worker threads become roots, not children of another thread's
        open span."""
        tracer = tracing.enable(Tracer())

        def job(i):
            with span(f"job{i}"):
                time.sleep(0.001)

        with span("main"):
            with ThreadPoolExecutor(max_workers=4) as pool:
                for f in [pool.submit(job, i) for i in range(4)]:
                    f.result()
        names = sorted(s.name for s in tracer.spans)
        assert names == ["job0", "job1", "job2", "job3", "main"]
        (main,) = [s for s in tracer.spans if s.name == "main"]
        assert main.children == []


class TestTraceIdentityStamping:
    def test_span_carries_bound_trace_id(self):
        tracer = tracing.enable(Tracer())
        with tracectx.bind("feedbead00000001"):
            with span("query.nearest"):
                pass
        assert tracer.spans[0].attributes["trace_id"] == "feedbead00000001"

    def test_explicit_trace_id_attribute_wins(self):
        tracer = tracing.enable(Tracer())
        with tracectx.bind("context-id"):
            with span("serve.flush", trace_id="explicit-id"):
                pass
        assert tracer.spans[0].attributes["trace_id"] == "explicit-id"

    def test_unbound_context_leaves_spans_unstamped(self):
        tracer = tracing.enable(Tracer())
        with span("query.nearest"):
            pass
        assert "trace_id" not in tracer.spans[0].attributes


class TestTraceCarrier:
    def test_worker_spans_parent_under_the_submitting_span(self):
        tracer = tracing.enable(Tracer())
        with span("build.cells.parallel") as root:
            ctx = carrier()
            with ThreadPoolExecutor(max_workers=2) as pool:
                def chunk(i):
                    with span(f"chunk{i}"):
                        pass

                for f in [pool.submit(ctx.call, chunk, i) for i in range(3)]:
                    f.result()
        (collected,) = tracer.spans
        assert collected is root
        assert sorted(c.name for c in root.children) == [
            "chunk0", "chunk1", "chunk2"
        ]

    def test_worker_spans_carry_the_submitting_trace_id(self):
        tracer = tracing.enable(Tracer())
        with tracectx.bind("cafe000000000001"):
            with span("build.cells.parallel"):
                ctx = carrier()
                with ThreadPoolExecutor(max_workers=1) as pool:
                    pool.submit(
                        ctx.call, lambda: span("worker").__enter__().__exit__()
                    ).result()
        (root,) = tracer.spans
        (worker,) = root.children
        assert worker.attributes["trace_id"] == "cafe000000000001"

    def test_worker_context_is_restored_after_the_call(self):
        tracing.enable(Tracer())
        outcomes = {}
        with tracectx.bind("the-request"):
            with span("root"):
                ctx = carrier()

        def probe():
            ctx.call(lambda: None)
            # Outside the carrier scope the worker thread is unbound
            # again: the carrier must not leak context.
            outcomes["trace"] = tracectx.current_trace_id()
            outcomes["span"] = current_span()

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(probe).result()
        assert outcomes["trace"] is None
        assert outcomes["span"] is _NOOP

    def test_carrier_with_tracing_disabled_still_moves_trace_id(self):
        with tracectx.bind("id-without-spans"):
            ctx = carrier()
        assert ctx.parent is None
        seen = []
        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(
                ctx.call, lambda: seen.append(tracectx.current_trace_id())
            ).result()
        assert seen == ["id-without-spans"]

    def test_carrier_return_value_passthrough(self):
        ctx = carrier()
        assert ctx.call(lambda a, b=0: a + b, 2, b=3) == 5


class TestCollecting:
    def test_collects_onto_fresh_tracer_and_restores(self):
        assert not tracing.enabled()
        with tracing.collecting() as tracer:
            assert tracing.enabled()
            with span("inside"):
                pass
        assert not tracing.enabled()
        assert [s.name for s in tracer.spans] == ["inside"]

    def test_nested_collecting_scopes_are_independent(self):
        with tracing.collecting() as outer:
            with span("one"):
                pass
            with tracing.collecting() as inner:
                with span("two"):
                    pass
            with span("three"):
                pass
        assert [s.name for s in outer.spans] == ["one", "three"]
        assert [s.name for s in inner.spans] == ["two"]


class TestSpanObject:
    def test_duration_never_negative(self):
        s = Span("x")
        assert s.duration_seconds == 0.0
