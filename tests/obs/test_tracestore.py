"""Tail-sampled trace store, critical-path analysis, Chrome export."""

import json

import pytest

from repro.obs.tracestore import (
    CriticalPath,
    StoredTrace,
    TraceStore,
    critical_path,
    get_store,
    install,
    to_chrome_trace,
    trace_kind,
    uninstall,
)
from repro.obs.tracing import Span


def make_span(name, start=0.0, end=1e-3, children=(), **attrs):
    s = Span(name, attrs)
    s.start = start
    s.end = end
    s.children = list(children)
    return s


def make_trace(trace_id, duration_ms=1.0, kind="request", **kwargs):
    root = make_span("serve.request", 0.0, duration_ms / 1e3)
    return StoredTrace(
        trace_id=trace_id, root=root, kind=kind, ts=0.0,
        duration_ms=duration_ms, **kwargs,
    )


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestTraceKind:
    @pytest.mark.parametrize("name,kind", [
        ("serve.request", "request"),
        ("serve.flush", "flush"),
        ("query.nearest", "query"),
        ("search.rkv", "query"),
        ("build.cells.parallel", "build"),
        ("lp.solve", "span"),
    ])
    def test_classification(self, name, kind):
        assert trace_kind(name) == kind


class TestTailSampling:
    def test_retains_up_to_capacity(self):
        store = TraceStore(capacity=3)
        for i in range(3):
            assert store.add_trace(make_trace(f"t{i}", duration_ms=i + 1.0))
        assert len(store) == 3

    def test_slower_trace_displaces_fastest(self):
        store = TraceStore(capacity=2)
        store.add_trace(make_trace("fast", duration_ms=1.0))
        store.add_trace(make_trace("slow", duration_ms=5.0))
        assert store.add_trace(make_trace("slower", duration_ms=9.0))
        assert store.get("fast") is None
        assert store.get("slow") is not None
        assert store.get("slower") is not None
        assert store.dropped == 1

    def test_faster_than_all_retained_is_dropped_on_arrival(self):
        store = TraceStore(capacity=2)
        store.add_trace(make_trace("a", duration_ms=5.0))
        store.add_trace(make_trace("b", duration_ms=6.0))
        assert not store.add_trace(make_trace("quick", duration_ms=0.1))
        assert store.get("quick") is None
        assert store.added == 3
        assert store.dropped == 1

    def test_error_traces_kept_regardless_of_speed(self):
        store = TraceStore(capacity=1)
        store.add_trace(make_trace("slow", duration_ms=100.0))
        assert store.add_trace(
            make_trace("failed", duration_ms=0.01, error=True)
        )
        assert store.get("failed") is not None
        assert store.get("slow") is not None  # separate retention pools

    def test_error_pool_evicts_oldest_first(self):
        store = TraceStore(error_capacity=2)
        for i in range(3):
            store.add_trace(make_trace(f"e{i}", error=True))
        assert store.get("e0") is None
        assert store.get("e1") is not None
        assert store.get("e2") is not None

    def test_fallback_traces_use_the_error_pool(self):
        store = TraceStore(capacity=1)
        store.add_trace(make_trace("slow", duration_ms=100.0))
        assert store.add_trace(
            make_trace("degraded", duration_ms=0.01, fallback=True)
        )
        assert store.get("degraded") is not None

    def test_horizon_pruning(self):
        clock = FakeClock()
        store = TraceStore(horizon_seconds=60, clock=clock)
        store.add_trace(make_trace("old", duration_ms=50.0))
        store.add_trace(make_trace("old-err", error=True))
        clock.now += 120.0
        store.add_trace(make_trace("new", duration_ms=1.0))
        assert store.get("old") is None
        assert store.get("old-err") is None
        assert store.get("new") is not None
        assert len(store) == 1

    def test_slowest_orders_by_duration(self):
        store = TraceStore()
        for i, ms in enumerate([3.0, 9.0, 1.0, 5.0]):
            store.add_trace(make_trace(f"t{i}", duration_ms=ms))
        ids = [t.trace_id for t in store.slowest(2)]
        assert ids == ["t1", "t3"]

    def test_traces_filters_by_kind(self):
        store = TraceStore()
        store.add_trace(make_trace("r", kind="request"))
        store.add_trace(make_trace("f", kind="flush"))
        assert [t.trace_id for t in store.traces(kind="flush")] == ["f"]

    def test_empty_store_is_truthy(self):
        # `tracing.enable(store)` must never mistake empty for absent.
        store = TraceStore()
        assert len(store) == 0
        assert bool(store)

    def test_clear(self):
        store = TraceStore()
        store.add_trace(make_trace("a"))
        store.add_trace(make_trace("b", error=True))
        store.clear()
        assert len(store) == 0


class TestTracerSink:
    def test_add_wraps_a_root_span(self):
        store = TraceStore()
        span = make_span(
            "serve.flush", 0.0, 0.25, trace_id="abc", links=["r1", "r2"]
        )
        store.add(span)
        trace = store.get("abc")
        assert trace is not None
        assert trace.kind == "flush"
        assert trace.duration_ms == pytest.approx(250.0)
        assert trace.links == ["r1", "r2"]
        assert not trace.error

    def test_add_without_trace_id_synthesizes_one(self):
        store = TraceStore()
        store.add(make_span("query.nearest"))
        (trace,) = store.traces()
        assert trace.trace_id.startswith("span-")

    def test_add_detects_error_attribute(self):
        store = TraceStore()
        store.add(make_span("serve.request", trace_id="x", error="boom"))
        assert store.get("x").error

    def test_add_detects_fallback_descendant(self):
        store = TraceStore()
        child = make_span("query.fallback")
        store.add(make_span(
            "query.nearest", children=[child], trace_id="fb"
        ))
        assert store.get("fb").fallback

    def test_module_level_install(self):
        assert get_store() is None
        store = install()
        try:
            assert get_store() is store
        finally:
            uninstall()
        assert get_store() is None


def request_trace_with_flush(store):
    """A request trace linked to a flush trace, both stored."""
    flush_root = make_span(
        "serve.flush", 0.010, 0.018, trace_id="flush1",
        children=[make_span("query.batch", 0.010, 0.017, children=[
            make_span("query.batch.point_query", 0.010, 0.013),
            make_span("query.batch.candidate_scan", 0.013, 0.015),
            make_span("lp.solve", 0.015, 0.016),
        ])],
    )
    store.add(flush_root)
    request_root = make_span("serve.request", 0.0, 0.020, children=[
        make_span("serve.queue_wait", 0.0, 0.010),
        make_span("serve.compute", 0.010, 0.018, flush="flush1"),
        make_span("serve.deliver", 0.018, 0.020),
    ], trace_id="req1")
    trace = StoredTrace(
        trace_id="req1", root=request_root, kind="request", ts=0.0,
        duration_ms=20.0, links=["flush1"],
    )
    store.add_trace(trace)
    return trace


class TestCriticalPath:
    def test_request_trace_attributes_via_flush_link(self):
        store = TraceStore()
        trace = request_trace_with_flush(store)
        path = critical_path(trace, store)
        assert isinstance(path, CriticalPath)
        assert path.total_ms == pytest.approx(20.0)
        assert path.stages["queue_wait"] == pytest.approx(10.0)
        assert path.stages["tree_walk"] == pytest.approx(3.0)
        assert path.stages["candidate_scan"] == pytest.approx(2.0)
        assert path.stages["lp"] == pytest.approx(1.0)
        assert path.stages["deliver"] == pytest.approx(2.0)
        # 8 ms of compute, 6 ms claimed by stages -> 2 ms unattributed.
        assert path.stages["compute_other"] == pytest.approx(2.0)
        assert path.coverage == pytest.approx(1.0)

    def test_request_coverage_meets_the_acceptance_floor(self):
        store = TraceStore()
        path = critical_path(request_trace_with_flush(store), store)
        assert path.coverage >= 0.95

    def test_request_without_stored_flush_uses_compute_children(self):
        store = TraceStore()
        compute = make_span("serve.compute", 0.001, 0.005, children=[
            make_span("query.point_query", 0.001, 0.003),
        ])
        root = make_span("serve.request", 0.0, 0.006, children=[
            make_span("serve.queue_wait", 0.0, 0.001),
            compute,
            make_span("serve.deliver", 0.005, 0.006),
        ])
        trace = StoredTrace(
            trace_id="r", root=root, kind="request", ts=0.0, duration_ms=6.0
        )
        path = critical_path(trace, store)
        assert path.stages["tree_walk"] == pytest.approx(2.0)
        assert path.stages["compute_other"] == pytest.approx(2.0)

    def test_stage_claims_never_exceed_the_compute_segment(self):
        # A flush serves many requests, so its stage time can exceed one
        # member's compute window; claims are clamped to the segment.
        store = TraceStore()
        store.add(make_span(
            "serve.flush", 0.0, 1.0, trace_id="f",
            children=[make_span("query.batch.point_query", 0.0, 1.0)],
        ))
        root = make_span("serve.request", 0.0, 0.002, children=[
            make_span("serve.compute", 0.0, 0.002, flush="f"),
        ])
        trace = StoredTrace(
            trace_id="r", root=root, kind="request", ts=0.0, duration_ms=2.0
        )
        path = critical_path(trace, store)
        assert path.stages["tree_walk"] == pytest.approx(2.0)
        assert "compute_other" not in path.stages
        assert path.coverage <= 1.0

    def test_non_request_trace_maps_descendants_directly(self):
        root = make_span("query.nearest", 0.0, 0.010, children=[
            make_span("query.point_query", 0.0, 0.004),
            make_span("query.candidate_scan", 0.004, 0.007, children=[
                # Mapped spans are not descended into: children refine,
                # they do not double-count.
                make_span("lp.solve", 0.004, 0.006),
            ]),
        ])
        trace = StoredTrace(
            trace_id="q", root=root, kind="query", ts=0.0, duration_ms=10.0
        )
        path = critical_path(trace, None)
        assert path.stages["tree_walk"] == pytest.approx(4.0)
        assert path.stages["candidate_scan"] == pytest.approx(3.0)
        assert "lp" not in path.stages

    def test_zero_duration_trace_has_full_coverage(self):
        trace = StoredTrace(
            trace_id="z", root=make_span("serve.request", 0.0, 0.0),
            kind="request", ts=0.0, duration_ms=0.0,
        )
        assert critical_path(trace, None).coverage == 1.0

    def test_as_dict_orders_stages_canonically(self):
        store = TraceStore()
        path = critical_path(request_trace_with_flush(store), store)
        doc = path.as_dict()
        assert list(doc["stages"]) == [
            "queue_wait", "tree_walk", "candidate_scan", "lp",
            "compute_other", "deliver",
        ]
        json.dumps(doc)  # JSON-ready


class TestChromeExport:
    def test_empty_export(self):
        doc = to_chrome_trace([])
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_events_and_rows(self):
        store = TraceStore()
        request_trace_with_flush(store)
        doc = to_chrome_trace(store.traces())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 2  # one thread-name row per trace
        # 4 request spans + 5 flush spans.
        assert len(complete) == 9
        assert all(e["ts"] >= 0.0 for e in complete)
        tids = {e["tid"] for e in complete}
        assert len(tids) == 2
        json.dumps(doc)

    def test_timestamps_are_relative_microseconds(self):
        store = TraceStore()
        request_trace_with_flush(store)
        events = to_chrome_trace(store.traces())["traceEvents"]
        deliver = next(
            e for e in events if e.get("name") == "serve.deliver"
        )
        assert deliver["ts"] == pytest.approx(18_000.0)
        assert deliver["dur"] == pytest.approx(2_000.0)

    def test_non_json_attributes_are_stringified(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        span = make_span("query.nearest", thing=Opaque(), ids=(1, 2))
        trace = StoredTrace(
            trace_id="x", root=span, kind="query", ts=0.0, duration_ms=1.0
        )
        doc = to_chrome_trace([trace])
        args = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["thing"] == "<opaque>"
        assert args["ids"] == [1, 2]
        json.dumps(doc)
