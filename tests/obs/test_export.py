"""Exporters: CSV/table rendering and profile JSON round-trips."""

import json

import pytest

from repro.obs import tracing
from repro.obs.export import (
    PROFILE_FORMAT_VERSION,
    ProfileDecodeError,
    ProfileError,
    ProfileSchemaError,
    ProfileVersionError,
    load_profile,
    metrics_to_csv,
    metrics_to_dict,
    metrics_table,
    span_to_dict,
    stats_table,
    trace_to_list,
    write_profile,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, span


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.inc("lp.solves", 12)
    reg.inc("storage.cache.hits", 5)
    reg.set_gauge("tree.height", 3)
    for v in (2.0, 4.0, 6.0):
        reg.observe("query.candidates", v)
    return reg


@pytest.fixture()
def tracer():
    t = tracing.enable(Tracer())
    with span("query.nearest", dim=4):
        with span("query.point_query") as s:
            s.set("pages", 5)
        with span("query.candidate_scan") as s:
            s.set("candidates", 9)
    tracing.disable()
    return t


class TestMetricsExport:
    def test_dict_view(self, registry):
        data = metrics_to_dict(registry)
        assert data["counters"]["lp.solves"] == 12.0
        assert data["gauges"]["tree.height"] == 3.0
        hist = data["histograms"]["query.candidates"]
        assert hist["count"] == 3 and hist["mean"] == pytest.approx(4.0)

    def test_csv_is_flat_and_headed(self, registry):
        lines = metrics_to_csv(registry).splitlines()
        assert lines[0] == "metric,kind,value"
        assert "lp.solves,counter,12" in lines
        assert "tree.height,gauge,3" in lines
        assert any(
            line.startswith("query.candidates.p50,histogram,")
            for line in lines
        )

    def test_metrics_table_renders(self, registry):
        text = metrics_table(registry, "Live metrics").render()
        assert "Live metrics" in text
        assert "lp.solves" in text and "counter" in text

    def test_stats_table_sorted_rows(self):
        table = stats_table({"b": 2.0, "a": 1.0}, "Stats")
        assert table.column("statistic") == ["a", "b"]
        assert "Stats" in table.render()


class TestTraceExport:
    def test_span_to_dict_nests(self, tracer):
        (root,) = tracer.spans
        doc = span_to_dict(root)
        assert doc["name"] == "query.nearest"
        assert doc["attributes"] == {"dim": 4}
        assert [c["name"] for c in doc["children"]] == [
            "query.point_query", "query.candidate_scan",
        ]
        assert doc["children"][0]["attributes"] == {"pages": 5}
        assert all(c["duration_seconds"] >= 0 for c in doc["children"])

    def test_trace_to_list_handles_missing_tracer(self, tracer):
        assert trace_to_list(None) == []
        assert len(trace_to_list(tracer)) == 1


class TestProfileDocument:
    def test_write_and_load_round_trip(self, tmp_path, registry, tracer):
        path = tmp_path / "profile.json"
        written = write_profile(
            path, registry, tracer, meta={"command": "query", "dim": 4}
        )
        loaded = load_profile(path)
        assert loaded == written
        assert loaded["format_version"] == PROFILE_FORMAT_VERSION
        assert loaded["meta"] == {"command": "query", "dim": 4}
        assert loaded["metrics"]["counters"]["lp.solves"] == 12.0
        assert loaded["trace"][0]["name"] == "query.nearest"

    def test_written_file_is_plain_json(self, tmp_path, registry):
        path = tmp_path / "profile.json"
        write_profile(path, registry)
        document = json.loads(path.read_text())
        assert set(document) == {
            "format_version", "meta", "metrics", "trace",
        }

    def test_empty_profile_still_valid(self, tmp_path):
        path = tmp_path / "empty.json"
        write_profile(path)
        loaded = load_profile(path)
        assert loaded["metrics"]["counters"] == {}
        assert loaded["trace"] == []

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            load_profile(path)


class TestProfileTypedErrors:
    """load_profile distinguishes *why* a document is unreadable."""

    def test_malformed_json_is_decode_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ProfileDecodeError, match="not valid JSON"):
            load_profile(path)

    def test_non_object_json_is_decode_error(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ProfileDecodeError, match="not a JSON object"):
            load_profile(path)

    def test_wrong_format_version_is_version_error(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"format_version": 999, "metrics": {}, "trace": []}
        ))
        with pytest.raises(ProfileVersionError, match="999"):
            load_profile(path)

    def test_missing_keys_is_schema_error(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(
            {"format_version": PROFILE_FORMAT_VERSION, "metrics": {}}
        ))
        with pytest.raises(ProfileSchemaError, match="trace"):
            load_profile(path)

    def test_every_failure_is_catchable_as_profile_error(self, tmp_path):
        """One except clause covers the whole hierarchy (and stays
        compatible with pre-existing ``except ValueError`` callers)."""
        assert issubclass(ProfileError, ValueError)
        for cls in (
            ProfileDecodeError, ProfileVersionError, ProfileSchemaError,
        ):
            assert issubclass(cls, ProfileError)
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(ProfileError):
            load_profile(path)


class TestExportStaysLazy:
    def test_obs_import_does_not_pull_eval(self):
        """repro.obs must stay dependency-free: importing it (as the
        storage/lp layers do) cannot drag in the evaluation stack."""
        import subprocess
        import sys

        code = (
            "import sys; import repro.obs.export; "
            "assert 'repro.eval.reporting' not in sys.modules, "
            "'obs.export eagerly imported repro.eval'"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
