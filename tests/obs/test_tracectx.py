"""Trace identity: minting, binding, nesting, thread isolation."""

import re
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import tracectx
from repro.obs.tracectx import bind, current_trace_id, new_trace_id


class TestMinting:
    def test_ids_are_16_hex_chars(self):
        for _ in range(50):
            assert re.fullmatch(r"[0-9a-f]{16}", new_trace_id())

    def test_ids_are_distinct(self):
        ids = {new_trace_id() for _ in range(200)}
        assert len(ids) == 200

    def test_concurrent_minting_is_safe_and_unique(self):
        out = []
        lock = threading.Lock()

        def mint():
            ids = [new_trace_id() for _ in range(100)]
            with lock:
                out.extend(ids)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == len(out) == 800


class TestBinding:
    def test_unbound_by_default(self):
        assert current_trace_id() is None

    def test_bind_sets_and_restores(self):
        with bind("abc123") as bound:
            assert bound == "abc123"
            assert current_trace_id() == "abc123"
        assert current_trace_id() is None

    def test_nested_binds_shadow_and_restore(self):
        with bind("outer"):
            with bind("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"

    def test_bind_none_clears_for_the_block(self):
        with bind("outer"):
            with bind(None):
                assert current_trace_id() is None
            assert current_trace_id() == "outer"

    def test_restores_on_exception(self):
        try:
            with bind("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace_id() is None

    def test_threads_hold_independent_identities(self):
        seen = {}

        def job(i):
            with bind(f"trace-{i}"):
                seen[i] = current_trace_id()
                return current_trace_id()

        with bind("main-trace"):
            with ThreadPoolExecutor(max_workers=4) as pool:
                results = [f.result()
                           for f in [pool.submit(job, i) for i in range(4)]]
            assert current_trace_id() == "main-trace"
        assert results == [f"trace-{i}" for i in range(4)]

    def test_module_reexports(self):
        assert tracectx.current_trace_id is current_trace_id
