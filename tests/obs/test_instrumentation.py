"""End-to-end instrumentation: pipeline metrics and traces line up with
the ground truth the query path already reports (``QueryInfo``)."""

import numpy as np
import pytest

from repro.core.candidates import SelectorKind
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import uniform_points
from repro.eval.harness import measure_nncell_queries
from repro.obs import metrics, tracing


@pytest.fixture(autouse=True)
def clean_obs_state():
    metrics.disable()
    metrics.get_registry().reset()
    tracing.disable()
    yield
    metrics.disable()
    metrics.get_registry().reset()
    tracing.disable()


@pytest.fixture(scope="module")
def points():
    return uniform_points(60, 3, seed=11)


class TestBuildInstrumentation:
    def test_build_counters(self, points):
        from repro.core.approximation import lp_call_count

        lp_before = lp_call_count()
        with metrics.collecting(fresh=True) as reg:
            NNCellIndex.build(points)
        snap = reg.snapshot()
        assert snap["build.cells"] == len(points)
        assert snap["build.rectangles"] >= len(points)
        # Every cell is approximated at least once (retries allowed).
        assert snap["cell.approximations"] >= len(points)
        # The counter agrees with the legacy module-level LP-call count,
        # and during a build all LP solves come from cell approximation.
        assert snap["cell.lp_calls"] == lp_call_count() - lp_before
        assert snap["lp.solves"] == snap["cell.lp_calls"]
        assert snap["lp.constraint_rows"] > 0
        assert snap["selector.systems"] >= len(points)

    def test_build_trace_structure(self, points):
        with tracing.collecting() as tracer:
            NNCellIndex.build(points)
        (root,) = tracer.spans
        assert root.name == "build.nncell"
        assert root.attributes["n_points"] == len(points)
        child_names = [c.name for c in root.children]
        assert child_names == ["build.data_tree", "build.cells",
                               "build.cell_tree"]
        assert sum(c.duration_seconds for c in root.children) <= (
            root.duration_seconds + 1e-6
        )


class TestQueryInstrumentation:
    def test_trace_attributes_match_query_info(self, points):
        """Acceptance gate: the recorded spans report the same pages and
        candidate counts as the QueryInfo the query itself returns."""
        index = NNCellIndex.build(points)
        q = np.full(3, 0.5)
        with metrics.collecting(fresh=True) as reg:
            with tracing.collecting() as tracer:
                __, __, info = index.nearest(q)
        (root,) = tracer.spans
        assert root.name == "query.nearest"
        assert root.attributes["pages"] == info.pages
        assert root.attributes["candidates"] == info.n_candidates
        by_name = {c.name: c for c in root.children}
        assert by_name["query.point_query"].attributes["pages"] == info.pages
        assert (
            by_name["query.candidate_scan"].attributes["candidates"]
            == info.n_candidates
        )
        snap = reg.snapshot()
        assert snap["query.count"] == 1
        assert snap["query.pages.sum"] == info.pages
        assert snap["query.candidates.sum"] == info.n_candidates

    def test_k_nearest_trace(self, points):
        index = NNCellIndex.build(points)
        with tracing.collecting() as tracer:
            ids, __, info = index.k_nearest(np.full(3, 0.4), k=3)
        assert len(ids) == 3
        (root,) = tracer.spans
        assert root.name == "query.k_nearest"
        assert root.attributes["k"] == 3
        assert [c.name for c in root.children][0] == "query.point_query"

    def test_correct_selector_counts_no_pages(self, points):
        """The Correct selector never queries the data index, so a build
        records zero storage reads — the property the figure-4 cost
        model (build_pages column) relies on."""
        with metrics.collecting(fresh=True) as reg:
            NNCellIndex.build(
                points, BuildConfig(selector=SelectorKind.CORRECT)
            )
        assert "storage.logical_reads" not in reg.snapshot()

    def test_fallback_counter_and_span(self, points):
        index = NNCellIndex.build(points)
        outside = np.full(3, 2.0)  # outside the data box -> fallback path
        with metrics.collecting(fresh=True) as reg:
            with tracing.collecting() as tracer:
                __, __, info = index.nearest(outside)
        assert info.fallback
        assert reg.snapshot().get("query.fallbacks") == 1
        assert tracer.find("query.fallback")


class TestHarnessIntegration:
    def test_measurement_carries_metrics_delta(self, points):
        index = NNCellIndex.build(points)
        queries = uniform_points(4, 3, seed=12)
        with metrics.collecting(fresh=True):
            meas = measure_nncell_queries(index, queries)
        assert meas.metrics["query.count"] == 4
        assert meas.metrics["query.pages.sum"] == meas.pages
        assert meas.metrics["query.candidates.sum"] == meas.candidates

    def test_measurement_metrics_empty_when_disabled(self, points):
        index = NNCellIndex.build(points)
        queries = uniform_points(3, 3, seed=13)
        meas = measure_nncell_queries(index, queries)
        assert meas.metrics == {}
        assert meas.n_queries == 3
