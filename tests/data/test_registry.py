"""Unit tests for the dataset registry."""

import numpy as np
import pytest

from repro.data.registry import dataset_names, make_dataset, register_dataset


class TestRegistry:
    def test_builtins_registered(self):
        names = dataset_names()
        for expected in ("uniform", "grid", "sparse", "clustered", "fourier"):
            assert expected in names

    def test_make_dataset_dispatch(self):
        pts = make_dataset("uniform", n=25, dim=3, seed=1)
        assert pts.shape == (25, 3)
        grid = make_dataset("grid", per_axis=3, dim=2)
        assert grid.shape == (9, 2)

    def test_unknown_name(self):
        with pytest.raises(KeyError) as err:
            make_dataset("no-such-dataset")
        assert "uniform" in str(err.value)  # lists known names

    def test_custom_registration(self):
        register_dataset("constant", lambda n, dim: np.full((n, dim), 0.5))
        try:
            pts = make_dataset("constant", n=4, dim=2)
            assert np.all(pts == 0.5)
        finally:
            # Shadowing is allowed; restore a clean state for other tests.
            import repro.data.registry as reg
            del reg._REGISTRY["constant"]

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_dataset("", lambda: None)
