"""Unit tests for the synthetic Fourier feature generator."""

import numpy as np
import pytest

from repro.data.fourier import fourier_points, fourier_signals


class TestSignals:
    def test_shape(self):
        sig = fourier_signals(20, signal_len=32, seed=1)
        assert sig.shape == (20, 32)

    def test_smoothness_parameter(self):
        rough = fourier_signals(200, smoothness=0.0, seed=2)
        smooth = fourier_signals(200, smoothness=0.95, seed=2)

        def mean_abs_step(s):
            return float(np.mean(np.abs(np.diff(s, axis=1))))

        def scale(s):
            return float(np.mean(np.abs(s))) + 1e-12

        # Relative step size shrinks as smoothness rises.
        assert mean_abs_step(smooth) / scale(smooth) < mean_abs_step(
            rough
        ) / scale(rough)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            fourier_signals(0)
        with pytest.raises(ValueError):
            fourier_signals(5, signal_len=2)
        with pytest.raises(ValueError):
            fourier_signals(5, smoothness=1.0)


class TestFourierPoints:
    def test_shape_and_unit_cube(self):
        pts = fourier_points(300, dim=8, seed=3)
        assert pts.shape == (300, 8)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_normalisation_spans_axes(self):
        pts = fourier_points(300, dim=8, seed=4)
        assert np.allclose(pts.min(axis=0), 0.0, atol=1e-9)
        assert np.allclose(pts.max(axis=0), 1.0, atol=1e-9)

    def test_clustered_not_uniform(self):
        """Low-frequency energy dominance makes coordinates correlated,
        so the joint distribution is far from uniform."""
        pts = fourier_points(2000, dim=8, seed=5)
        corr = np.corrcoef(pts, rowvar=False)
        off_diag = corr[~np.eye(8, dtype=bool)]
        assert float(np.max(np.abs(off_diag))) > 0.2

    def test_no_exact_duplicates(self):
        pts = fourier_points(500, dim=4, seed=6)
        assert np.unique(pts, axis=0).shape[0] == 500

    def test_deterministic(self):
        assert np.array_equal(
            fourier_points(50, seed=7), fourier_points(50, seed=7)
        )

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            fourier_points(10, dim=0)
        with pytest.raises(ValueError):
            fourier_points(10, dim=8, signal_len=10)
