"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    clustered_points,
    diagonal_points,
    grid_points,
    query_points,
    sparse_points,
    uniform_points,
)


class TestUniform:
    def test_shape_and_range(self):
        pts = uniform_points(100, 7, seed=1)
        assert pts.shape == (100, 7)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            uniform_points(20, 3, seed=5), uniform_points(20, 3, seed=5)
        )
        assert not np.array_equal(
            uniform_points(20, 3, seed=5), uniform_points(20, 3, seed=6)
        )

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            uniform_points(0, 2)
        with pytest.raises(ValueError):
            uniform_points(10, 0)

    def test_marginals_are_uniform(self):
        pts = uniform_points(5000, 2, seed=7)
        # Each axis histogram should be flat within sampling noise.
        hist, __ = np.histogram(pts[:, 0], bins=10, range=(0, 1))
        assert np.all(hist > 350)


class TestGrid:
    def test_count_and_regularity(self):
        pts = grid_points(3, 2)
        assert pts.shape == (9, 2)
        # Coordinates sit at cell centres 1/6, 3/6, 5/6.
        expected = {1 / 6, 3 / 6, 5 / 6}
        assert set(np.round(pts[:, 0], 9)) == {round(v, 9) for v in expected}

    def test_every_cell_holds_one_point(self):
        pts = grid_points(4, 3)
        assert pts.shape == (64, 3)
        cells = np.floor(pts * 4).astype(int)
        assert len({tuple(c) for c in cells}) == 64

    def test_jitter_stays_in_cell(self):
        clean = grid_points(5, 2)
        jittered = grid_points(5, 2, jitter=1.0, seed=1)
        assert np.all(np.abs(jittered - clean) <= 0.1 + 1e-12)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            grid_points(0, 2)
        with pytest.raises(ValueError):
            grid_points(2, 2, jitter=2.0)


class TestSparse:
    def test_points_are_far_apart(self):
        pts = sparse_points(10, 2, seed=3)
        dense = uniform_points(10, 2, seed=3)

        def min_pairwise(p):
            diffs = p[:, None, :] - p[None, :, :]
            dist = np.sqrt(np.sum(diffs ** 2, axis=2))
            np.fill_diagonal(dist, np.inf)
            return float(dist.min())

        assert min_pairwise(pts) > min_pairwise(dense)

    def test_spread_shrinks_toward_center(self):
        wide = sparse_points(8, 2, seed=4, spread=1.0)
        tight = sparse_points(8, 2, seed=4, spread=0.4)
        assert np.max(np.abs(tight - 0.5)) < np.max(np.abs(wide - 0.5))

    def test_shape(self):
        assert sparse_points(6, 5, seed=5).shape == (6, 5)


class TestDiagonal:
    def test_points_lie_near_diagonal(self):
        pts = diagonal_points(10, 3, jitter=0.01, seed=1)
        spread = np.max(pts, axis=1) - np.min(pts, axis=1)
        assert np.all(spread <= 0.02 + 1e-12)

    def test_zero_jitter_is_exact_diagonal(self):
        pts = diagonal_points(5, 4, jitter=0.0)
        for row in pts:
            assert np.allclose(row, row[0])

    def test_sorted_along_diagonal(self):
        pts = diagonal_points(8, 2, jitter=0.0)
        assert np.all(np.diff(pts[:, 0]) > 0)

    def test_cells_are_oblique(self):
        """The design goal: diagonal cells' MBR approximations overlap
        far more than uniform cells' (the Figure 2 worst case)."""
        from repro.core import BuildConfig, NNCellIndex, SelectorKind
        from repro.core.quality import average_overlap
        from repro.geometry.mbr import MBR

        def overlap_of(points):
            index = NNCellIndex.build(
                points, BuildConfig(selector=SelectorKind.CORRECT)
            )
            rects = [r for __, r in index.all_cell_rectangles()]
            return average_overlap(rects, MBR.unit_cube(2))

        diag = overlap_of(diagonal_points(8, 2, jitter=0.02, seed=2))
        unif = overlap_of(uniform_points(8, 2, seed=2))
        assert diag > unif

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            diagonal_points(5, 2, jitter=-0.1)


class TestClustered:
    def test_shape_and_range(self):
        pts = clustered_points(200, 4, seed=6)
        assert pts.shape == (200, 4)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_clusters_are_tight(self):
        pts = clustered_points(500, 3, n_clusters=3, cluster_std=0.01,
                               seed=7)
        # Mean NN distance far below the uniform expectation.
        diffs = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt(np.sum(diffs ** 2, axis=2))
        np.fill_diagonal(dist, np.inf)
        assert float(np.mean(dist.min(axis=1))) < 0.02

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            clustered_points(10, 2, n_clusters=0)
        with pytest.raises(ValueError):
            clustered_points(10, 2, cluster_std=0.0)


class TestQueryPoints:
    def test_differs_from_data_seed(self):
        data = uniform_points(50, 3, seed=9)
        queries = query_points(50, 3)
        assert not np.array_equal(data, queries)
