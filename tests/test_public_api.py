"""The public API surface: everything README promises is importable and
wired together."""

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_readme_quickstart_flow(self):
        points = repro.uniform_points(n=60, dim=4, seed=7)
        index = repro.NNCellIndex.build(
            points, repro.BuildConfig(selector=repro.SelectorKind.SPHERE)
        )
        neighbor_id, distance, info = index.nearest(np.full(4, 0.5))
        assert 0 <= neighbor_id < 60
        assert distance >= 0.0
        assert info.n_candidates >= 1
        new_id = index.insert(np.full(4, 0.25))
        index.delete(new_id)

    def test_default_build_config(self):
        config = repro.BuildConfig()
        assert config.selector is repro.SelectorKind.SPHERE
        assert config.index_kind == "xtree"
        assert not config.decompose

    def test_baselines_available(self):
        points = repro.uniform_points(30, 3, seed=8)
        tree = repro.XTree(3)
        repro.bulk_load(tree, points, points, np.arange(30))
        result = repro.rkv_nearest(tree, np.full(3, 0.5))
        scan = repro.LinearScan(points)
        assert result.nearest_id == scan.nearest(np.full(3, 0.5)).nearest_id

    def test_dataset_registry_roundtrip(self):
        pts = repro.make_dataset("clustered", n=20, dim=3, seed=1)
        assert pts.shape == (20, 3)

    def test_selector_kinds_match_paper(self):
        assert {k.value for k in repro.SelectorKind} == {
            "correct", "point", "sphere", "nn-direction",
        }

    def test_quality_metrics_exported(self):
        box = repro.MBR.unit_cube(2)
        rects = [
            repro.MBR([0.0, 0.0], [0.5, 1.0]),
            repro.MBR([0.5, 0.0], [1.0, 1.0]),
        ]
        assert repro.expected_candidates(rects, box) == pytest.approx(1.0)
        assert repro.average_overlap(rects, box) == pytest.approx(0.0)
