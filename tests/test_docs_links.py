"""The repo's own docs must pass the link checker.

Runs :mod:`tools.check_doc_links` over ``docs/`` and the root markdown
files — any reference to a renamed or deleted file fails the suite, so
documentation drift is caught by CI, not by readers.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_docs_have_no_broken_references(checker, capsys):
    assert checker.main([]) == 0
    assert "doc links OK" in capsys.readouterr().out


def test_checker_flags_broken_link(checker, tmp_path, capsys):
    bad = tmp_path / "bad.md"
    bad.write_text("See [the plan](missing_plan.md) for details.\n")
    assert checker.main([str(bad)]) == 1
    assert "missing_plan.md" in capsys.readouterr().err


def test_checker_flags_dangling_path_mention(checker, tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("Tuning lives in docs/no_such_file.md now.\n")
    assert checker.main([str(bad)]) == 1


def test_checker_skips_external_and_anchor_links(checker, tmp_path, capsys):
    ok = tmp_path / "ok.md"
    ok.write_text(
        "[web](https://example.com) [anchor](#section) "
        "[mail](mailto:a@b.c)\n"
    )
    assert checker.main([str(ok)]) == 0


def test_default_targets_cover_docs_and_readme(checker):
    names = {p.name for p in checker.default_targets()}
    assert "README.md" in names
    assert "architecture.md" in names


def test_architecture_mentions_every_subpackage(checker):
    missing = checker.check_architecture_coverage()
    assert missing == [], (
        f"docs/architecture.md does not mention: "
        f"{', '.join('repro.' + name for name in missing)}"
    )


def test_subpackage_discovery_sees_known_layers(checker):
    names = checker.repro_subpackages()
    for expected in ("core", "index", "engine", "serve", "obs", "shard"):
        assert expected in names


def test_coverage_checker_flags_missing_mention(checker, tmp_path):
    src = tmp_path / "src"
    (src / "repro" / "newlayer").mkdir(parents=True)
    (src / "repro" / "newlayer" / "__init__.py").touch()
    (src / "repro" / "oldlayer").mkdir()
    (src / "repro" / "oldlayer" / "__init__.py").touch()
    doc = tmp_path / "architecture.md"
    doc.write_text("Only `repro.oldlayer` is described here.\n")
    missing = checker.check_architecture_coverage(doc, src)
    assert missing == ["newlayer"]
