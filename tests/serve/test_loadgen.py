"""Tests of the concurrent load-generator harness (`repro.eval.loadgen`)."""

import pytest

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.eval.loadgen import (
    LoadReport,
    run_direct_load,
    run_service_load,
    serving_throughput_table,
)
from repro.serve import QueryService, ServeConfig


@pytest.fixture(scope="module")
def index():
    return NNCellIndex.build(uniform_points(80, 4, seed=53))


@pytest.fixture(scope="module")
def queries():
    return query_points(60, 4, seed=54)


class TestDirectBaseline:
    def test_report_accounts_every_query(self, index, queries):
        report = run_direct_load(index, queries, n_threads=3)
        assert report.mode == "direct"
        assert report.n_queries == 60
        assert len(report.latencies_ms) == 60
        assert report.errors == 0
        assert report.pages > 0
        assert report.mean_batch_size == 1.0
        assert report.wall_seconds > 0.0

    def test_percentiles_monotone(self, index, queries):
        report = run_direct_load(index, queries, n_threads=2)
        assert (
            0.0
            <= report.percentile(50)
            <= report.percentile(95)
            <= report.percentile(99)
        )
        summary = report.summary()
        assert summary["p50_ms"] == report.percentile(50)


class TestServiceLoad:
    def test_zero_errors_and_batching_observed(self, index, queries):
        config = ServeConfig(max_batch_size=32, max_wait_ms=5.0)
        report = run_service_load(
            index, queries, n_threads=4, config=config
        )
        assert report.errors == 0
        assert len(report.latencies_ms) == 60
        assert report.mean_batch_size > 1.0

    def test_serving_errors_are_counted_not_raised(self, index, queries):
        def broken(points, batch_size=None):
            raise RuntimeError("induced failure")

        # A stalling service with queue depth 1 under 4 threads: some
        # submissions must be rejected, and the report must absorb them.
        service = QueryService(
            index,
            ServeConfig(max_wait_ms=20.0, max_queue_depth=1,
                        admission="reject"),
        )
        try:
            report = run_service_load(
                index, queries, n_threads=4, service=service
            )
        finally:
            service.close()
        assert report.errors + len(report.latencies_ms) == 60
        if report.errors:
            assert "ServiceOverloaded" in report.error_samples

    def test_modelled_throughput_uses_pages(self):
        report = LoadReport("direct", 1, n_queries=10)
        report.latencies_ms = [1.0] * 10
        report.wall_seconds = 1.0
        report.pages = 100
        # 1 s wall + 100 pages * 10 ms = 2 s modelled for 10 queries.
        assert report.throughput_qps() == pytest.approx(10.0)
        assert report.modelled_throughput_qps() == pytest.approx(5.0)


class TestThroughputTable:
    def test_service_beats_unbatched_baseline(self, index, queries):
        """The acceptance-criteria check: batching amortises page reads,
        so modelled throughput must beat the one-at-a-time baseline."""
        table = serving_throughput_table(
            index, queries, n_threads=4,
            config=ServeConfig(max_batch_size=64, max_wait_ms=5.0),
        )
        rows = {row["mode"]: row for row in table.rows}
        assert set(rows) == {"direct", "service"}
        assert rows["direct"]["errors"] == 0
        assert rows["service"]["errors"] == 0
        assert rows["service"]["mean_batch_size"] > 1.0
        assert rows["service"]["pages_per_query"] < (
            rows["direct"]["pages_per_query"]
        )
        assert rows["service"]["modelled_speedup"] > 1.0
        assert rows["direct"]["modelled_speedup"] == pytest.approx(1.0)

    def test_table_renders(self, index):
        table = serving_throughput_table(
            index, query_points(10, 4, seed=55), n_threads=2
        )
        text = table.render()
        assert "Serving throughput" in text
        assert "modelled_speedup" in text
