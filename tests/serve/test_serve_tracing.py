"""End-to-end request tracing through the serving layer.

The causal chain ISSUE 6 pins down: an id minted at admission rides the
response, the stored request trace, the flush trace it links to, the
latency exemplars, and the event log — and the SLO watchdog can nudge
the service's degradation ladder.
"""

import re
import threading

import pytest

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.obs import events, metrics, tracectx, tracestore, tracing
from repro.obs.tracestore import critical_path
from repro.serve import (
    DeadlineExceeded,
    QueryService,
    ServeConfig,
    TelemetryConfig,
    TelemetrySession,
)

pytestmark = pytest.mark.usefixtures("clean_obs_state")


@pytest.fixture
def clean_obs_state():
    metrics.disable()
    metrics.get_registry().reset()
    metrics.uninstall_timeseries()
    events.disable()
    events._log = None
    tracing.disable()
    tracestore.uninstall()
    yield
    metrics.disable()
    metrics.get_registry().reset()
    metrics.uninstall_timeseries()
    events.disable()
    events._log = None
    tracing.disable()
    tracestore.uninstall()


@pytest.fixture(scope="module")
def index():
    return NNCellIndex.build(uniform_points(50, 3, seed=11))


def traced_session():
    return TelemetrySession(TelemetryConfig(tracing=True))


class TestResponseIdentity:
    def test_every_result_carries_a_trace_id_even_untraced(self, index):
        # Identity is unconditional; tracing only controls *recording*.
        with QueryService(index) as service:
            result = service.submit([0.5, 0.5, 0.5])
        assert re.fullmatch(r"[0-9a-f]{16}", result.trace_id)

    def test_bound_caller_id_is_reused(self, index):
        with QueryService(index) as service:
            with tracectx.bind("caller00deadbeef"):
                result = service.submit([0.5, 0.5, 0.5])
        assert result.trace_id == "caller00deadbeef"

    def test_concurrent_submissions_get_distinct_ids(self, index):
        results = []
        lock = threading.Lock()
        with QueryService(index) as service:
            def client(q):
                r = service.submit(q)
                with lock:
                    results.append(r)

            threads = [
                threading.Thread(target=client, args=(q,))
                for q in query_points(16, 3, seed=5)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        ids = [r.trace_id for r in results]
        assert len(set(ids)) == len(ids) == 16

    def test_deadline_error_carries_the_request_trace_id(self, index):
        config = ServeConfig(max_wait_ms=50.0, max_batch_size=64)
        with QueryService(index, config) as service:
            with pytest.raises(DeadlineExceeded) as err:
                service.submit([0.5, 0.5, 0.5], timeout_ms=1.0)
        assert re.fullmatch(r"[0-9a-f]{16}", err.value.trace_id)


class TestStoredTraces:
    def test_request_and_flush_traces_are_linked_both_ways(self, index):
        with traced_session() as session:
            with QueryService(index) as service:
                result = service.submit([0.5, 0.5, 0.5])
            store = session.tracestore
            request = store.get(result.trace_id)
            assert request is not None
            assert request.kind == "request"
            (flush_id,) = request.links
            flush = store.get(flush_id)
            assert flush is not None
            assert flush.kind == "flush"
            assert result.trace_id in flush.links

    def test_request_trace_has_contiguous_stage_spans(self, index):
        with traced_session() as session:
            with QueryService(index) as service:
                result = service.submit([0.25, 0.5, 0.75])
            trace = session.tracestore.get(result.trace_id)
        names = [c.name for c in trace.root.children]
        assert names == [
            "serve.queue_wait", "serve.compute", "serve.deliver"
        ]
        for left, right in zip(trace.root.children, trace.root.children[1:]):
            assert right.start == pytest.approx(left.end)

    def test_every_request_critical_path_meets_coverage_floor(self, index):
        workload = query_points(30, 3, seed=7)
        with traced_session() as session:
            with QueryService(index) as service:
                results = [service.submit(q) for q in workload]
            store = session.tracestore
            for result in results:
                trace = store.get(result.trace_id)
                assert trace is not None, "request trace must be retained"
                path = critical_path(trace, store)
                assert path.coverage >= 0.95
                assert "queue_wait" in path.stages

    def test_expired_request_is_stored_as_error_trace(self, index):
        config = ServeConfig(max_wait_ms=80.0, max_batch_size=64)
        with traced_session() as session:
            with QueryService(index, config) as service:
                with pytest.raises(DeadlineExceeded) as err:
                    # Expires while queued: the flush loop cancels it.
                    service.submit([0.5, 0.5, 0.5], timeout_ms=5.0)
                service.submit([0.1, 0.1, 0.1])  # force a later flush
            store = session.tracestore
            trace = store.get(err.value.trace_id)
        assert trace is not None
        assert trace.error

    def test_latency_exemplars_resolve_to_stored_traces(self, index):
        workload = query_points(40, 3, seed=13)
        with traced_session() as session:
            with QueryService(index) as service:
                for q in workload:
                    service.submit(q)
            window = session.timeseries.window(60).get("serve.latency_ms")
            exemplars = window.exemplars()
            assert exemplars, "tail observations must carry exemplars"
            for __, trace_id in exemplars:
                assert session.tracestore.get(trace_id) is not None

    def test_event_log_joins_on_flush_trace_id(self, index):
        with TelemetrySession(
            TelemetryConfig(tracing=True, events_path=None)
        ) as session:
            with events.collecting() as log:
                with QueryService(index) as service:
                    result = service.submit([0.5, 0.5, 0.5])
            store = session.tracestore
        (flush_record,) = log.records("flush")
        flush_id = flush_record["trace_id"]
        assert store.get(flush_id) is not None
        assert result.trace_id in store.get(flush_id).links

    def test_tracing_off_stores_nothing(self, index):
        with TelemetrySession(TelemetryConfig()) as session:
            assert session.tracestore is None
            with QueryService(index) as service:
                result = service.submit([0.5, 0.5, 0.5])
        assert result.trace_id  # identity still flows


class TestDegradationHook:
    def test_set_degraded_skips_the_batching_delay(self, index):
        config = ServeConfig(max_wait_ms=500.0, max_batch_size=1024)
        with QueryService(index, config) as service:
            service.set_degraded(True)
            assert service.degraded
            # With the delay active this would block ~500 ms; degraded
            # mode must answer immediately (submit blocks until then).
            result = service.submit([0.5, 0.5, 0.5])
            assert result.latency_ms < 400.0
            service.set_degraded(False)
            assert not service.degraded

    def test_watchdog_nudges_the_service_when_configured(self, index):
        config = TelemetryConfig(
            tracing=True, slo=True, slo_degrade=True
        )
        with TelemetrySession(config) as session:
            with QueryService(index) as service:
                session.set_degrade_target(service)
                # Hammer the budget: synthetic latency far above the
                # 50 ms objective makes every window page.
                for __ in range(50):
                    session.timeseries.observe("serve.latency_ms", 500.0)
                session.watchdog.evaluate()
                assert session.watchdog.paging
                assert service.degraded
            # Teardown restores the service to the normal ladder.
        assert not service.degraded

    def test_watchdog_without_degrade_flag_leaves_service_alone(self, index):
        config = TelemetryConfig(slo=True)
        with TelemetrySession(config) as session:
            with QueryService(index) as service:
                session.set_degrade_target(service)
                for __ in range(50):
                    session.timeseries.observe("serve.latency_ms", 500.0)
                session.watchdog.evaluate()
                assert session.watchdog.paging
                assert not service.degraded
