"""TelemetrySession lifecycle + windowed stats vs. ground-truth load."""

import io
import json
import urllib.request

import numpy as np
import pytest

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.eval.loadgen import run_service_load
from repro.obs import events, metrics
from repro.obs.promexport import parse_exposition
from repro.serve import ServeConfig, TelemetryConfig, TelemetrySession


@pytest.fixture(autouse=True)
def clean_global_state():
    metrics.disable()
    metrics.get_registry().reset()
    metrics.uninstall_timeseries()
    events.disable()
    events._log = None
    yield
    metrics.disable()
    metrics.get_registry().reset()
    metrics.uninstall_timeseries()
    events.disable()
    events._log = None


@pytest.fixture(scope="module")
def index():
    return NNCellIndex.build(uniform_points(50, 3, seed=21))


class TestTelemetryConfig:
    def test_defaults_are_inactive(self):
        config = TelemetryConfig()
        assert not config.active

    def test_each_surface_activates(self):
        assert TelemetryConfig(metrics_port=0).active
        assert TelemetryConfig(stats_interval_s=1.0).active
        assert TelemetryConfig(events_path="ev.jsonl").active

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(metrics_port=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(stats_interval_s=-0.5)
        with pytest.raises(ValueError):
            TelemetryConfig(events_sample=1.5)


class TestTelemetrySessionLifecycle:
    def test_installs_and_restores_obs_state(self):
        assert not metrics.enabled()
        with TelemetrySession() as session:
            assert metrics.enabled()
            assert metrics.get_timeseries() is session.timeseries
        assert not metrics.enabled()
        assert metrics.get_timeseries() is None

    def test_preserves_pre_enabled_metrics(self):
        metrics.enable()
        with TelemetrySession():
            pass
        assert metrics.enabled()

    def test_close_is_idempotent(self):
        session = TelemetrySession()
        session.close()
        session.close()
        assert metrics.get_timeseries() is None

    def test_metrics_server_scrapes_live_traffic(self, index):
        config = TelemetryConfig(metrics_port=0)
        with TelemetrySession(config) as session:
            assert session.port > 0
            index.nearest(np.full(3, 0.5))
            metrics.observe("serve.latency_ms", 2.0)
            url = f"http://127.0.0.1:{session.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                samples = parse_exposition(response.read().decode())
        assert "serve_latency_ms_count" in samples
        telemetry_url = f"http://127.0.0.1:{session.port}/telemetry"
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(telemetry_url, timeout=1)  # closed

    def test_event_log_writes_jsonl(self, index, tmp_path):
        path = tmp_path / "events.jsonl"
        config = TelemetryConfig(events_path=str(path))
        with TelemetrySession(config):
            assert events.enabled()
            index.nearest(np.full(3, 0.5))
        assert not events.enabled()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert any(r["kind"] == "query" for r in records)

    def test_stats_printer_emits_dashboard_lines(self):
        stream = io.StringIO()
        config = TelemetryConfig(stats_interval_s=0.05)
        with TelemetrySession(config, stream=stream):
            metrics.observe("serve.latency_ms", 1.5)
            import time

            deadline = time.monotonic() + 2.0
            while (
                not stream.getvalue() and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        assert "[telemetry" in stream.getvalue()
        assert "qps=" in stream.getvalue()

    def test_dashboard_line_available_without_printer(self):
        with TelemetrySession() as session:
            metrics.observe("serve.latency_ms", 3.0)
            line = session.dashboard_line(seconds=10)
        assert "p50=" in line


class TestWindowedStatsAgainstGroundTruth:
    def test_percentiles_and_qps_match_load_report(self, index):
        """The operator-facing window numbers must agree with the load
        harness's own ground-truth latency list over the same run."""
        queries = query_points(200, 3, seed=22)
        with TelemetrySession() as session:
            report = run_service_load(
                index, queries, n_threads=4,
                config=ServeConfig(max_batch_size=32, max_wait_ms=2.0),
            )
            window = session.timeseries.window(60).get("serve.latency_ms")
        assert report.errors == 0
        assert window is not None
        # Every completed query was recorded in the window.
        assert window.count == len(report.latencies_ms)
        # Service latency (enqueue -> batch answer) is measured inside
        # the flush loop; the client-side report adds submit/wakeup
        # overhead, so the windowed percentiles must bound below the
        # client's and stay within a generous factor of them.
        for q in (50, 99):
            windowed = window.percentile(q)
            ground = report.percentile(q)
            assert windowed <= ground * 1.5 + 0.5
            assert windowed > 0.0
        # The window rate divides by the nominal 60s span; compare
        # completion *counts* instead, which are exact.
        assert window.rate == pytest.approx(window.count / 60.0)

    def test_queue_depth_gauge_tracked(self, index):
        queries = query_points(64, 3, seed=23)
        with TelemetrySession() as session:
            run_service_load(
                index, queries, n_threads=4,
                config=ServeConfig(max_batch_size=16, max_wait_ms=1.0),
            )
            snapshot = session.timeseries.window(60)
        assert snapshot.get("serve.queue.depth") is not None


class TestTracingAndSLOConfig:
    def test_tracing_and_slo_activate_the_session(self):
        assert TelemetryConfig(tracing=True).active
        assert TelemetryConfig(slo=True).active

    def test_validation_of_new_knobs(self):
        with pytest.raises(ValueError):
            TelemetryConfig(trace_capacity=0)
        with pytest.raises(ValueError):
            TelemetryConfig(slo_interval_s=0.0)

    def test_session_installs_and_restores_trace_state(self):
        from repro.obs import tracestore, tracing

        assert tracestore.get_store() is None
        with TelemetrySession(TelemetryConfig(tracing=True)) as session:
            assert tracing.enabled()
            assert tracestore.get_store() is session.tracestore
            assert tracing.get_tracer() is session.tracestore
        assert not tracing.enabled()
        assert tracestore.get_store() is None

    def test_session_registry_rejects_unexposable_metric_names(self):
        from repro.obs.promexport import ExpositionNameError

        with TelemetrySession():
            with pytest.raises(ExpositionNameError):
                metrics.inc("bad metric name")
        # Validator removed on close: permissive again.
        metrics.enable()
        metrics.inc("bad metric name")

    def test_trace_capacity_is_honoured(self):
        config = TelemetryConfig(tracing=True, trace_capacity=7)
        with TelemetrySession(config) as session:
            assert session.tracestore.capacity == 7
