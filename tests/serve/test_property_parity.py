"""Property-based proof of the serving layer's correctness contract.

For *any* interleaving of concurrent submissions — any thread count, any
per-thread workload split, any micro-batching configuration — every
result a :class:`QueryService` returns must be identical (same id,
bit-identical distance) to the serial ``index.nearest`` answer for that
point.  Hypothesis drives the workload shapes; real threads drive the
interleavings.
"""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nncell_index import NNCellIndex
from repro.data import uniform_points
from repro.serve import QueryService, ServeConfig

# One module-level index: hypothesis runs many examples, the solution
# space is the (expensive) constant, the workload is the variable.
_INDEX = NNCellIndex.build(uniform_points(35, 3, seed=47))


@st.composite
def workloads(draw):
    """(queries, n_threads, config) — one concurrent serving scenario."""
    n_queries = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    # Queries both inside the data space and slightly outside it (the
    # fallback path must satisfy the same parity contract).
    queries = rng.uniform(-0.1, 1.1, size=(n_queries, 3))
    n_threads = draw(st.integers(1, 6))
    config = ServeConfig(
        max_batch_size=draw(st.integers(1, 16)),
        max_wait_ms=draw(st.sampled_from([0.0, 0.5, 2.0])),
    )
    return queries, n_threads, config


@settings(max_examples=20, deadline=None)
@given(workload=workloads())
def test_concurrent_results_identical_to_serial_query(workload):
    queries, n_threads, config = workload
    n = queries.shape[0]
    results = [None] * n
    errors = []

    with QueryService(_INDEX, config) as service:
        def client(thread_idx):
            for i in range(thread_idx, n, n_threads):
                try:
                    results[i] = service.submit(queries[i])
                except Exception as err:  # pragma: no cover - must not happen
                    errors.append((i, repr(err)))

        threads = [
            threading.Thread(target=client, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, errors
    for i in range(n):
        expected_id, expected_dist, __ = _INDEX.nearest(queries[i])
        assert results[i].point_id == expected_id, i
        # Bit-identical, not approximately equal: the service routes
        # through the same float64 arithmetic as the serial path.
        assert results[i].distance == expected_dist, i
