"""Unit tests of the serving layer's four subsystems.

Batching loop, admission control, deadline handling and the fallback
ladder are each exercised in isolation — with stalled or broken batch
functions injected where the real engine would be too well-behaved to
show the degradation paths.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.obs import metrics
from repro.serve import (
    DeadlineExceeded,
    QueryService,
    ServeConfig,
    ServiceClosed,
    ServiceOverloaded,
)


@pytest.fixture(scope="module")
def index():
    return NNCellIndex.build(uniform_points(60, 3, seed=31))


@pytest.fixture
def registry():
    with metrics.collecting(fresh=True) as reg:
        yield reg


class _Stall:
    """A batch function that blocks until released (queue-buildup tool)."""

    def __init__(self, index):
        self.index = index
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, points, batch_size=None):
        self.entered.set()
        assert self.release.wait(10.0), "stalled batch never released"
        return self.index.query_batch(points, batch_size=batch_size)


class TestBatchingLoop:
    def test_single_submission_round_trip(self, index):
        with QueryService(index, ServeConfig(max_wait_ms=0.0)) as service:
            result = service.submit([0.5, 0.5, 0.5])
        expected_id, expected_dist, __ = index.nearest([0.5, 0.5, 0.5])
        assert result.point_id == expected_id
        assert result.distance == expected_dist
        assert result.source == "batch"
        assert result.latency_ms >= 0.0

    def test_coalesces_queued_submissions_into_one_flush(self, index):
        """Requests parked behind a stalled flush ride the next one."""
        stall = _Stall(index)
        config = ServeConfig(max_batch_size=16, max_wait_ms=0.0)
        queries = query_points(8, 3, seed=1)
        with QueryService(index, config, batch_fn=stall) as service:
            first = service.submit_async(queries[0])
            assert stall.entered.wait(5.0)
            pending = [service.submit_async(q) for q in queries[1:]]
            stall.release.set()
            first.result()
            results = [p.result() for p in pending]
            stats = service.stats()
        assert stats["flushes"] == 2
        assert stats["mean_batch_size"] == pytest.approx(4.0)
        for q, result in zip(queries[1:], results):
            assert result.point_id == index.nearest(q)[0]

    def test_max_batch_size_bounds_one_flush(self, index):
        queries = query_points(10, 3, seed=2)
        stall = _Stall(index)
        with QueryService(
            index, ServeConfig(max_batch_size=4, max_wait_ms=0.0),
            batch_fn=stall,
        ) as service:
            head = service.submit_async(queries[0])
            assert stall.entered.wait(5.0)
            pending = [service.submit_async(q) for q in queries[1:]]
            stall.release.set()
            head.result()
            for p in pending:
                p.result()
            stats = service.stats()
        # 1 (head) + ceil(9 / 4) flushes, never more than 4 per batch.
        assert stats["flushes"] >= 4
        assert stats["batched_requests"] == 10

    def test_max_wait_flushes_partial_batch(self, index):
        config = ServeConfig(max_batch_size=1024, max_wait_ms=5.0)
        with QueryService(index, config) as service:
            started = time.perf_counter()
            result = service.submit([0.25, 0.25, 0.25])
            elapsed = time.perf_counter() - started
        assert result.source == "batch"
        # Flushed by the wait timer (batch never filled), not starved.
        assert elapsed < 2.0

    def test_results_observed_in_metrics(self, index, registry):
        with QueryService(index, ServeConfig(max_wait_ms=0.0)) as service:
            service.submit([0.1, 0.2, 0.3])
        counters = registry.as_dict()["counters"]
        assert counters["serve.submitted"] == 1
        assert counters["serve.completed"] == 1
        assert counters["serve.flush.count"] >= 1
        assert registry.histogram("serve.batch.size").count >= 1
        assert registry.histogram("serve.latency_ms").count == 1

    def test_flush_emits_span(self, index):
        from repro.obs import tracing

        with tracing.collecting() as tracer:
            with QueryService(index, ServeConfig(max_wait_ms=0.0)) as svc:
                svc.submit([0.5, 0.5, 0.5])
        flushes = tracer.find("serve.flush")
        assert flushes, "no serve.flush span recorded"
        assert flushes[0].attributes["n_requests"] == 1
        # The engine's batched-walk span nests under the flush.
        assert any(
            child.name == "query.batch" for child in flushes[0].children
        )

    def test_invalid_point_rejected_at_submission(self, index):
        with QueryService(index) as service:
            with pytest.raises(ValueError):
                service.submit([0.5, 0.5])  # wrong dimensionality
            with pytest.raises(ValueError):
                service.submit([0.5, 0.5, 0.5], timeout_ms=0)


class TestAdmissionControl:
    def test_reject_policy_raises_and_counts(self, index, registry):
        stall = _Stall(index)
        config = ServeConfig(
            max_wait_ms=0.0, max_queue_depth=2, admission="reject"
        )
        with QueryService(index, config, batch_fn=stall) as service:
            head = service.submit_async([0.5, 0.5, 0.5])
            assert stall.entered.wait(5.0)
            # Fill the queue to its depth bound, then overflow it.
            parked = []
            rejected = 0
            for __ in range(6):
                try:
                    parked.append(service.submit_async([0.4, 0.4, 0.4]))
                except ServiceOverloaded:
                    rejected += 1
            stall.release.set()
            head.result()
            for p in parked:
                p.result()
            stats = service.stats()
        assert len(parked) == 2 and rejected == 4
        assert stats["rejected"] == 4
        assert registry.counter("serve.rejected").value == 4
        assert stats["completed"] == 3  # nothing accepted was lost

    def test_block_policy_waits_for_space(self, index):
        stall = _Stall(index)
        config = ServeConfig(
            max_wait_ms=0.0, max_queue_depth=1, admission="block"
        )
        with QueryService(index, config, batch_fn=stall) as service:
            head = service.submit_async([0.5, 0.5, 0.5])
            assert stall.entered.wait(5.0)
            filler = service.submit_async([0.3, 0.3, 0.3])
            unblocked = []

            def blocked_submit():
                unblocked.append(service.submit([0.2, 0.2, 0.2]))

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            time.sleep(0.05)
            assert not unblocked  # still parked on admission
            stall.release.set()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            head.result()
            filler.result()
        assert len(unblocked) == 1
        assert unblocked[0].point_id == index.nearest([0.2, 0.2, 0.2])[0]

    def test_block_policy_honours_deadline(self, index, registry):
        stall = _Stall(index)
        config = ServeConfig(
            max_wait_ms=0.0, max_queue_depth=1, admission="block"
        )
        with QueryService(index, config, batch_fn=stall) as service:
            head = service.submit_async([0.5, 0.5, 0.5])
            assert stall.entered.wait(5.0)
            filler = service.submit_async([0.3, 0.3, 0.3])
            with pytest.raises(DeadlineExceeded):
                service.submit([0.2, 0.2, 0.2], timeout_ms=20.0)
            stall.release.set()
            head.result()
            filler.result()
        assert registry.counter("serve.deadline_missed").value == 1


class TestDeadlines:
    def test_expired_while_queued_is_cancelled_not_computed(
        self, index, registry
    ):
        stall = _Stall(index)
        calls = []

        def counting_stall(points, batch_size=None):
            calls.append(points.shape[0])
            return stall(points, batch_size)

        with QueryService(
            index, ServeConfig(max_wait_ms=0.0),
            batch_fn=counting_stall,
        ) as service:
            head = service.submit_async([0.5, 0.5, 0.5])
            assert stall.entered.wait(5.0)
            doomed = service.submit_async([0.4, 0.4, 0.4], timeout_ms=10.0)
            time.sleep(0.05)  # let the deadline lapse while queued
            stall.release.set()
            head.result()
            with pytest.raises(DeadlineExceeded):
                doomed.result()
            stats = service.stats()
        assert stats["deadline_missed"] == 1
        assert registry.counter("serve.deadline_missed").value == 1
        # The expired request's work was cancelled: every flush that ran
        # carried exactly one live request (the head), never the doomed.
        assert calls and all(n == 1 for n in calls)

    def test_caller_side_timeout_discards_late_answer(self, index):
        stall = _Stall(index)
        with QueryService(
            index, ServeConfig(max_wait_ms=0.0), batch_fn=stall
        ) as service:
            pending = service.submit_async([0.5, 0.5, 0.5])
            assert stall.entered.wait(5.0)
            with pytest.raises(DeadlineExceeded):
                pending.result(timeout_ms=20.0)
            stall.release.set()
            # The late batch answer must not resurrect the request.
            with pytest.raises(DeadlineExceeded):
                pending.result()
            stats_done = service.stats()
        assert stats_done["completed"] == 0
        assert stats_done["deadline_missed"] == 1

    def test_default_timeout_from_config(self, index):
        stall = _Stall(index)
        config = ServeConfig(max_wait_ms=0.0, default_timeout_ms=20.0)
        with QueryService(index, config, batch_fn=stall) as service:
            pending = service.submit_async([0.5, 0.5, 0.5])
            with pytest.raises(DeadlineExceeded):
                pending.result()
            stall.release.set()


class TestFallbackLadder:
    def test_batch_failure_degrades_to_serial(self, index, registry):
        def broken(points, batch_size=None):
            raise RuntimeError("induced LP failure")

        with QueryService(
            index, ServeConfig(max_wait_ms=0.0), batch_fn=broken
        ) as service:
            result = service.submit([0.5, 0.5, 0.5])
        expected_id, expected_dist, __ = index.nearest([0.5, 0.5, 0.5])
        assert (result.point_id, result.distance) == (
            expected_id, expected_dist
        )
        assert result.source == "serial"
        counters = registry.as_dict()["counters"]
        assert counters['serve.fallback{stage="batch"}'] == 1
        assert counters['serve.fallback{stage="serial"}'] == 1

    def test_serial_failure_degrades_to_scan(self, index, registry,
                                             monkeypatch):
        def broken(points, batch_size=None):
            raise RuntimeError("induced LP failure")

        monkeypatch.setattr(
            index, "nearest",
            lambda q: (_ for _ in ()).throw(RuntimeError("serial down")),
        )
        q = np.asarray([0.5, 0.5, 0.5])
        with QueryService(
            index, ServeConfig(max_wait_ms=0.0), batch_fn=broken
        ) as service:
            result = service.submit(q)
        # The scan answer is still the exact nearest neighbor.
        brute = int(np.argmin(np.linalg.norm(index.points - q, axis=1)))
        assert result.point_id == brute
        assert result.source == "scan"
        counters = registry.as_dict()["counters"]
        assert counters['serve.fallback{stage="batch"}'] == 1
        assert counters['serve.fallback{stage="scan"}'] == 1
        assert 'serve.fallback{stage="serial"}' not in counters

    def test_whole_batch_survives_mixed_ladder(self, index):
        """Every request in a failing batch still gets an exact answer."""
        def broken(points, batch_size=None):
            raise RuntimeError("induced LP failure")

        queries = query_points(6, 3, seed=3)
        stall = _Stall(index)
        with QueryService(
            index, ServeConfig(max_wait_ms=0.0, max_batch_size=16),
            batch_fn=stall,
        ) as service:
            head = service.submit_async(queries[0])
            assert stall.entered.wait(5.0)
            pending = [service.submit_async(q) for q in queries[1:]]
            service._batch_fn = broken  # next flush fails as a batch
            stall.release.set()
            head.result()
            results = [p.result() for p in pending]
        for q, result in zip(queries[1:], results):
            assert result.point_id == index.nearest(q)[0]
            assert result.source == "serial"


class TestLifecycle:
    def test_close_drains_accepted_requests(self, index):
        stall = _Stall(index)
        with QueryService(
            index, ServeConfig(max_wait_ms=0.0), batch_fn=stall
        ) as service:
            head = service.submit_async([0.5, 0.5, 0.5])
            assert stall.entered.wait(5.0)
            parked = [
                service.submit_async(q) for q in query_points(5, 3, seed=4)
            ]
            stall.release.set()
            service.close()  # must answer everything already accepted
            assert head.result().point_id >= 0
            for p in parked:
                assert p.result().point_id >= 0

    def test_close_without_drain_fails_pending(self, index):
        stall = _Stall(index)
        service = QueryService(
            index, ServeConfig(max_wait_ms=0.0), batch_fn=stall
        )
        head = service.submit_async([0.5, 0.5, 0.5])
        assert stall.entered.wait(5.0)
        parked = service.submit_async([0.4, 0.4, 0.4])
        # Close while the flush loop is still stalled on the head batch:
        # the parked request must be failed immediately, before any more
        # work runs.  close() joins the loop, so release the stall from
        # a helper thread once the parked request has its answer.
        closer = threading.Thread(
            target=service.close, kwargs={"drain": False}
        )
        closer.start()
        with pytest.raises(ServiceClosed):
            parked.result(timeout_ms=5_000.0)
        stall.release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert head.result().point_id >= 0  # in flight: still answered

    def test_submit_after_close_raises(self, index):
        service = QueryService(index)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.submit([0.5, 0.5, 0.5])

    def test_close_is_idempotent(self, index):
        service = QueryService(index)
        service.close()
        service.close()

    def test_stats_shape(self, index):
        with QueryService(index, ServeConfig(max_wait_ms=0.0)) as service:
            service.submit([0.5, 0.5, 0.5])
            stats = service.stats()
        for key in ("submitted", "completed", "rejected", "deadline_missed",
                    "flushes", "batched_requests", "pages",
                    "fallback_batch", "fallback_serial", "fallback_scan",
                    "mean_batch_size"):
            assert key in stats
        assert stats["submitted"] == stats["completed"] == 1
        assert stats["pages"] > 0


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch_size": 0},
        {"max_wait_ms": -1.0},
        {"max_queue_depth": 0},
        {"admission": "drop"},
        {"default_timeout_ms": 0.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)
