"""Tests for the standalone CI tools in ``tools/``.

``tools/compare_archives.py`` backs the ``parallel-parity`` workflow
job; its comparison logic is unit-tested here so the CI contract is
exercised by the suite, not only on a runner.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location(
        "compare_archives", REPO_ROOT / "tools" / "compare_archives.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def save(path, **arrays):
    np.savez(path, **arrays)
    return path


class TestCompareArchives:
    def test_identical_archives_have_no_diffs(self, tool, tmp_path):
        data = {"ids": np.arange(5), "points": np.eye(3)}
        a = save(tmp_path / "a.npz", **data)
        b = save(tmp_path / "b.npz", **data)
        assert tool.compare_archives(a, b) == []

    def test_nan_bytes_compare_equal(self, tool, tmp_path):
        # The contract is "same bytes", so NaN == NaN here even though
        # IEEE comparison says otherwise.
        values = np.array([1.0, np.nan, 3.0])
        a = save(tmp_path / "a.npz", values=values)
        b = save(tmp_path / "b.npz", values=values.copy())
        assert tool.compare_archives(a, b) == []

    def test_missing_key_reported_for_each_side(self, tool, tmp_path):
        a = save(tmp_path / "a.npz", x=np.zeros(2), only_a=np.ones(1))
        b = save(tmp_path / "b.npz", x=np.zeros(2), only_b=np.ones(1))
        diffs = tool.compare_archives(a, b)
        assert any("only_a" in d and str(a) in d for d in diffs)
        assert any("only_b" in d and str(b) in d for d in diffs)

    def test_dtype_shape_and_value_diffs(self, tool, tmp_path):
        a = save(
            tmp_path / "a.npz",
            d=np.zeros(3, dtype=np.float64),
            s=np.zeros((2, 2)),
            v=np.array([1.0, 2.0]),
        )
        b = save(
            tmp_path / "b.npz",
            d=np.zeros(3, dtype=np.float32),
            s=np.zeros((2, 3)),
            v=np.array([1.0, 2.5]),
        )
        diffs = dict(line.split(":", 1) for line in tool.compare_archives(a, b))
        assert "dtype" in diffs["d"]
        assert "shape" in diffs["s"]
        assert "values differ" in diffs["v"]


class TestMain:
    def test_exit_zero_and_summary_on_parity(self, tool, tmp_path, capsys):
        a = save(tmp_path / "a.npz", x=np.arange(4), y=np.ones(2))
        b = save(tmp_path / "b.npz", x=np.arange(4), y=np.ones(2))
        assert tool.main([str(a), str(b)]) == 0
        assert "parity OK: 2 arrays identical" in capsys.readouterr().out

    def test_exit_one_lists_differences(self, tool, tmp_path, capsys):
        a = save(tmp_path / "a.npz", x=np.arange(4))
        b = save(tmp_path / "b.npz", x=np.arange(1, 5))
        assert tool.main([str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "x: values differ" in out
        assert "1 difference(s)" in out

    def test_usage_and_missing_file_exit_two(self, tool, tmp_path, capsys):
        assert tool.main(["just-one.npz"]) == 2
        assert "usage" in capsys.readouterr().err
        a = save(tmp_path / "a.npz", x=np.arange(2))
        assert tool.main([str(a), str(tmp_path / "nope.npz")]) == 2
        assert "does not exist" in capsys.readouterr().err
