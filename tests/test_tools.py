"""Tests for the standalone CI tools in ``tools/``.

``tools/compare_archives.py`` backs the ``parallel-parity`` workflow
job and ``tools/compare_bench.py`` backs the perf-trajectory gate; the
comparison logic of both is unit-tested here so the CI contracts are
exercised by the suite, not only on a runner.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tool():
    return _load_tool("compare_archives")


@pytest.fixture(scope="module")
def bench_tool():
    return _load_tool("compare_bench")


def save(path, **arrays):
    np.savez(path, **arrays)
    return path


class TestCompareArchives:
    def test_identical_archives_have_no_diffs(self, tool, tmp_path):
        data = {"ids": np.arange(5), "points": np.eye(3)}
        a = save(tmp_path / "a.npz", **data)
        b = save(tmp_path / "b.npz", **data)
        assert tool.compare_archives(a, b) == []

    def test_nan_bytes_compare_equal(self, tool, tmp_path):
        # The contract is "same bytes", so NaN == NaN here even though
        # IEEE comparison says otherwise.
        values = np.array([1.0, np.nan, 3.0])
        a = save(tmp_path / "a.npz", values=values)
        b = save(tmp_path / "b.npz", values=values.copy())
        assert tool.compare_archives(a, b) == []

    def test_missing_key_reported_for_each_side(self, tool, tmp_path):
        a = save(tmp_path / "a.npz", x=np.zeros(2), only_a=np.ones(1))
        b = save(tmp_path / "b.npz", x=np.zeros(2), only_b=np.ones(1))
        diffs = tool.compare_archives(a, b)
        assert any("only_a" in d and str(a) in d for d in diffs)
        assert any("only_b" in d and str(b) in d for d in diffs)

    def test_dtype_shape_and_value_diffs(self, tool, tmp_path):
        a = save(
            tmp_path / "a.npz",
            d=np.zeros(3, dtype=np.float64),
            s=np.zeros((2, 2)),
            v=np.array([1.0, 2.0]),
        )
        b = save(
            tmp_path / "b.npz",
            d=np.zeros(3, dtype=np.float32),
            s=np.zeros((2, 3)),
            v=np.array([1.0, 2.5]),
        )
        diffs = dict(line.split(":", 1) for line in tool.compare_archives(a, b))
        assert "dtype" in diffs["d"]
        assert "shape" in diffs["s"]
        assert "values differ" in diffs["v"]


class TestMain:
    def test_exit_zero_and_summary_on_parity(self, tool, tmp_path, capsys):
        a = save(tmp_path / "a.npz", x=np.arange(4), y=np.ones(2))
        b = save(tmp_path / "b.npz", x=np.arange(4), y=np.ones(2))
        assert tool.main([str(a), str(b)]) == 0
        assert "parity OK: 2 arrays identical" in capsys.readouterr().out

    def test_exit_one_lists_differences(self, tool, tmp_path, capsys):
        a = save(tmp_path / "a.npz", x=np.arange(4))
        b = save(tmp_path / "b.npz", x=np.arange(1, 5))
        assert tool.main([str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "x: values differ" in out
        assert "1 difference(s)" in out

    def test_usage_and_missing_file_exit_two(self, tool, tmp_path, capsys):
        assert tool.main(["just-one.npz"]) == 2
        assert "usage" in capsys.readouterr().err
        a = save(tmp_path / "a.npz", x=np.arange(2))
        assert tool.main([str(a), str(tmp_path / "nope.npz")]) == 2
        assert "does not exist" in capsys.readouterr().err


def make_bench(path, **metrics):
    document = {"bench": "obs_overhead", "format_version": 1,
                "metrics": metrics}
    Path(path).write_text(json.dumps(document))
    return path


class TestCompareBench:
    def test_direction_from_suffix(self, bench_tool):
        assert bench_tool.metric_direction("serve_wall_qps") == "higher"
        assert bench_tool.metric_direction("serve_p99_ms") == "lower"
        assert bench_tool.metric_direction("query_pages") == "lower"
        assert bench_tool.metric_direction("build_seconds") == "lower"
        assert bench_tool.metric_direction("overhead_pct") is None
        assert bench_tool.metric_direction("qps_disabled") is None

    def test_identical_documents_are_ok(self, bench_tool, tmp_path):
        doc = bench_tool.load_bench(
            make_bench(tmp_path / "a.json", x_qps=100.0, y_ms=2.0)
        )
        rows, regressions = bench_tool.compare_bench(doc, doc)
        assert regressions == []
        assert {r["verdict"] for r in rows} == {"ok"}

    def test_qps_drop_and_latency_rise_regress(self, bench_tool, tmp_path):
        base = bench_tool.load_bench(
            make_bench(tmp_path / "a.json", x_qps=100.0, y_ms=2.0)
        )
        cur = bench_tool.load_bench(
            make_bench(tmp_path / "b.json", x_qps=80.0, y_ms=2.5)
        )
        rows, regressions = bench_tool.compare_bench(base, cur)
        assert len(regressions) == 2
        verdicts = {r["name"]: r["verdict"] for r in rows}
        assert verdicts == {"x_qps": "regressed", "y_ms": "regressed"}

    def test_improvements_and_threshold(self, bench_tool, tmp_path):
        base = bench_tool.load_bench(
            make_bench(tmp_path / "a.json", x_qps=100.0, y_ms=2.0)
        )
        cur = bench_tool.load_bench(
            make_bench(tmp_path / "b.json", x_qps=150.0, y_ms=1.84)
        )
        rows, regressions = bench_tool.compare_bench(base, cur)
        assert regressions == []
        verdicts = {r["name"]: r["verdict"] for r in rows}
        assert verdicts["x_qps"] == "improved"
        assert verdicts["y_ms"] == "ok"  # -8% is within the 10% band
        # A tighter threshold flips the qps drop into a regression.
        __, regressions = bench_tool.compare_bench(
            cur, base, threshold=0.05
        )
        assert any("x_qps" in line for line in regressions)

    def test_pct_and_unknown_suffixes_never_gate(self, bench_tool, tmp_path):
        base = bench_tool.load_bench(
            make_bench(tmp_path / "a.json", overhead_pct=1.0, weird=5.0)
        )
        cur = bench_tool.load_bench(
            make_bench(tmp_path / "b.json", overhead_pct=3.0, weird=50.0)
        )
        rows, regressions = bench_tool.compare_bench(base, cur)
        assert regressions == []
        assert {r["verdict"] for r in rows} == {"info"}

    def test_missing_metrics_reported_not_gated(self, bench_tool, tmp_path):
        base = bench_tool.load_bench(
            make_bench(tmp_path / "a.json", x_qps=100.0, gone_ms=1.0)
        )
        cur = bench_tool.load_bench(
            make_bench(tmp_path / "b.json", x_qps=100.0, new_ms=1.0)
        )
        rows, regressions = bench_tool.compare_bench(base, cur)
        assert regressions == []
        verdicts = {r["name"]: r["verdict"] for r in rows}
        assert verdicts["gone_ms"] == "missing"
        assert verdicts["new_ms"] == "missing"

    def test_zero_baseline_is_informational(self, bench_tool, tmp_path):
        base = bench_tool.load_bench(
            make_bench(tmp_path / "a.json", x_qps=0.0)
        )
        cur = bench_tool.load_bench(
            make_bench(tmp_path / "b.json", x_qps=10.0)
        )
        rows, regressions = bench_tool.compare_bench(base, cur)
        assert regressions == []
        assert rows[0]["verdict"] == "info"

    def test_load_bench_rejects_malformed(self, bench_tool, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            bench_tool.load_bench(bad)
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"no": "metrics"}))
        with pytest.raises(ValueError, match="metrics"):
            bench_tool.load_bench(foreign)

    def test_negative_threshold_rejected(self, bench_tool, tmp_path):
        doc = bench_tool.load_bench(make_bench(tmp_path / "a.json", x_qps=1.0))
        with pytest.raises(ValueError):
            bench_tool.compare_bench(doc, doc, threshold=-0.1)


class TestCompareBenchMain:
    def test_exit_zero_on_parity(self, bench_tool, tmp_path, capsys):
        a = make_bench(tmp_path / "a.json", x_qps=100.0)
        b = make_bench(tmp_path / "b.json", x_qps=99.0)
        assert bench_tool.main([str(a), str(b)]) == 0
        assert "bench OK" in capsys.readouterr().out

    def test_exit_one_lists_regressions(self, bench_tool, tmp_path, capsys):
        a = make_bench(tmp_path / "a.json", x_qps=100.0, y_ms=1.0)
        b = make_bench(tmp_path / "b.json", x_qps=50.0, y_ms=1.0)
        assert bench_tool.main([str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "1 regression(s)" in out
        assert "x_qps" in out

    def test_threshold_flag(self, bench_tool, tmp_path, capsys):
        a = make_bench(tmp_path / "a.json", x_qps=100.0)
        b = make_bench(tmp_path / "b.json", x_qps=92.0)
        assert bench_tool.main(
            [str(a), str(b), "--threshold", "0.05"]
        ) == 1
        capsys.readouterr()
        assert bench_tool.main(
            ["--threshold", "0.2", str(a), str(b)]
        ) == 0

    def test_usage_and_load_errors_exit_two(
        self, bench_tool, tmp_path, capsys
    ):
        assert bench_tool.main(["only-one.json"]) == 2
        assert "usage" in capsys.readouterr().err
        assert bench_tool.main(["a.json", "b.json", "--threshold"]) == 2
        assert "--threshold" in capsys.readouterr().err
        a = make_bench(tmp_path / "a.json", x_qps=1.0)
        assert bench_tool.main([str(a), str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err
