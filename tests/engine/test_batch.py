"""Parity and accounting tests for the batched query engine.

``query_batch`` must return exactly what the serial ``nearest`` loop
returns — same ids, bit-identical distances, through every code path
(plain point query, tolerance retry, out-of-box fallback) — while
reading strictly fewer pages than the per-query walks combined.
"""

import numpy as np
import pytest

from repro.core.candidates import SelectorKind
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import query_points, uniform_points
from repro.engine.batch import BatchQueryInfo, batched_point_query
from repro.obs import metrics


@pytest.fixture(scope="module")
def index():
    points = uniform_points(90, 3, seed=21)
    return NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.SPHERE)
    )


def serial_answers(index, queries):
    ids, dists, infos = [], [], []
    for q in queries:
        pid, dist, info = index.nearest(q)
        ids.append(pid)
        dists.append(dist)
        infos.append(info)
    return np.asarray(ids), np.asarray(dists), infos


class TestParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_serial_bit_for_bit(self, index, seed):
        queries = query_points(40, 3, seed=seed)
        serial_ids, serial_dists, infos = serial_answers(index, queries)
        batch_ids, batch_dists, info = index.query_batch(queries)
        assert np.array_equal(batch_ids, serial_ids)
        # Bit-identical, not approximately equal: the batched scan runs
        # the same float64 arithmetic on the same operands.
        assert batch_dists.tobytes() == serial_dists.tobytes()
        assert info.n_queries == 40
        assert info.n_candidates == sum(i.n_candidates for i in infos)
        assert info.distance_computations == sum(
            i.distance_computations for i in infos
        )

    def test_batch_size_invariance(self, index):
        queries = query_points(30, 3, seed=5)
        full_ids, full_dists, __ = index.query_batch(queries)
        for batch_size in (1, 7, 30, 100):
            ids, dists, info = index.query_batch(
                queries, batch_size=batch_size
            )
            assert np.array_equal(ids, full_ids)
            assert dists.tobytes() == full_dists.tobytes()
            assert info.n_batches == -(-30 // min(batch_size, 30))

    def test_out_of_box_queries_fall_back(self, index):
        queries = np.array([
            [0.5, 0.5, 0.5],
            [1.5, 0.5, 0.5],   # outside the unit cube
            [-0.2, 0.1, 0.9],  # outside the unit cube
        ])
        serial_ids, serial_dists, infos = serial_answers(index, queries)
        batch_ids, batch_dists, info = index.query_batch(queries)
        assert np.array_equal(batch_ids, serial_ids)
        assert batch_dists.tobytes() == serial_dists.tobytes()
        assert info.fallbacks == sum(i.fallback for i in infos) == 2

    def test_pages_amortised_below_serial_sum(self, index):
        queries = query_points(50, 3, seed=8)
        __, __, infos = serial_answers(index, queries)
        __, __, info = index.query_batch(queries)
        serial_pages = sum(i.pages for i in infos)
        assert 0 < info.pages < serial_pages

    def test_nearest_batch_delegates(self, index):
        queries = query_points(12, 3, seed=3)
        ids, dists = index.nearest_batch(queries)
        batch_ids, batch_dists, __ = index.query_batch(queries)
        assert np.array_equal(ids, batch_ids)
        assert dists.tobytes() == batch_dists.tobytes()

    def test_single_query_row_vector(self, index):
        q = np.full(3, 0.5)
        pid, dist, __ = index.nearest(q)
        ids, dists, info = index.query_batch(q)  # 1-d input, atleast_2d
        assert ids.shape == (1,) and dists.shape == (1,)
        assert ids[0] == pid and dists[0] == dist


class TestValidation:
    def test_wrong_dimension_rejected(self, index):
        with pytest.raises(ValueError):
            index.query_batch(np.zeros((4, 5)))

    def test_bad_batch_size_rejected(self, index):
        with pytest.raises(ValueError):
            index.query_batch(np.zeros((2, 3)), batch_size=0)

    def test_empty_batch(self, index):
        ids, dists, info = index.query_batch(np.zeros((0, 3)))
        assert ids.size == 0 and dists.size == 0
        assert info == BatchQueryInfo(n_queries=0)


class TestBatchedPointQuery:
    def test_matches_point_query_per_row(self, index):
        queries = query_points(20, 3, seed=13)
        pair_q, pair_owner = batched_point_query(
            index.cell_tree, queries, atol=index.config.query_atol
        )
        for j, q in enumerate(queries):
            expected = np.unique(
                index.cell_tree.point_query(q, atol=index.config.query_atol)
            )
            got = np.unique(pair_owner[pair_q == j])
            assert np.array_equal(got, expected)

    def test_empty_query_set(self, index):
        pair_q, pair_owner = batched_point_query(
            index.cell_tree, np.zeros((0, 3))
        )
        assert pair_q.size == 0 and pair_owner.size == 0


class TestObservability:
    def test_batch_metrics_emitted(self, index):
        queries = query_points(10, 3, seed=17)
        with metrics.collecting(fresh=True) as registry:
            index.query_batch(queries, batch_size=4)
        report = registry.as_dict()
        assert report["counters"]["query.batch.count"] == 1
        assert report["counters"]["query.batch.queries"] == 10
        assert report["histograms"]["query.batch_size"]["count"] == 1
        # Per-query candidate counts land in the same histogram the
        # serial path feeds, so dashboards stay comparable.
        assert report["histograms"]["query.candidates"]["count"] == 10

    def test_parallel_build_metrics_emitted(self):
        points = uniform_points(20, 2, seed=31)
        with metrics.collecting(fresh=True) as registry:
            NNCellIndex.build(
                points,
                BuildConfig(
                    selector=SelectorKind.NN_DIRECTION,
                    workers=2,
                    executor="thread",
                ),
            )
        report = registry.as_dict()
        assert report["counters"]["build.parallel.builds"] == 1
        assert report["counters"]["build.parallel.chunks"] >= 2
        assert report["counters"]["build.parallel.lp_calls"] == 20 * 2 * 2
        assert report["histograms"]["build.chunk_points"]["count"] >= 2
