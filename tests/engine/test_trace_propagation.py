"""Cross-boundary span parenting in parallel cell construction.

Thread-pool workers run in their own contextvars context; without the
carrier hand-off their spans would surface as unrelated roots with no
trace id.  These tests pin the contract: worker-side spans nest under
``build.cells.parallel`` and inherit the submitting context's trace id,
exactly like a serial build.
"""

import pytest

from repro.core.candidates import SelectorKind
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import uniform_points
from repro.obs import tracectx, tracing


@pytest.fixture(autouse=True)
def clean_tracing_state():
    tracing.disable()
    yield
    tracing.disable()


def thread_build(points, **overrides):
    config = BuildConfig(
        selector=SelectorKind.NN_DIRECTION,
        workers=2,
        executor="thread",
        **overrides,
    )
    return NNCellIndex.build(points, config)


def collect(root, name):
    found, stack = [], [root]
    while stack:
        node = stack.pop()
        if node.name == name:
            found.append(node)
        stack.extend(node.children)
    return found


class TestThreadPoolSpanParenting:
    def test_worker_spans_nest_under_the_parallel_root(self):
        points = uniform_points(36, 3, seed=1)
        with tracing.collecting() as tracer:
            thread_build(points)
        roots = tracer.find("build.cells.parallel")
        assert len(roots) == 1
        # Worker-side `build.chunk.compute` spans landed inside the
        # parallel root's subtree, not as stray top-level roots.
        nested = collect(roots[0], "build.chunk.compute")
        assert nested
        assert sum(s.attributes["n_points"] for s in nested) == (
            points.shape[0]
        )
        top_level_strays = [
            s for s in tracer.spans if s.name == "build.chunk.compute"
        ]
        assert top_level_strays == []

    def test_worker_spans_inherit_the_bound_trace_id(self):
        points = uniform_points(30, 3, seed=2)
        with tracing.collecting() as tracer:
            with tracectx.bind("beefc0de00000001"):
                thread_build(points)
        (root,) = tracer.find("build.cells.parallel")
        assert root.attributes["trace_id"] == "beefc0de00000001"
        chunks = collect(root, "build.chunk.compute")
        assert chunks
        assert all(
            s.attributes["trace_id"] == "beefc0de00000001" for s in chunks
        )

    def test_parent_reemits_process_worker_accounting(self):
        # Process workers cannot share a span tree; the parent re-emits
        # one `build.worker_chunk` span per chunk instead.
        points = uniform_points(24, 3, seed=3)
        with tracing.collecting() as tracer:
            NNCellIndex.build(
                points,
                BuildConfig(
                    selector=SelectorKind.NN_DIRECTION, workers=2
                ),
            )
        (root,) = tracer.find("build.cells.parallel")
        chunks = collect(root, "build.worker_chunk")
        assert chunks
        assert all("lp_calls" in c.attributes for c in chunks)
