"""Parity suite: parallel cell construction is bit-identical to serial.

The determinism guarantee of :mod:`repro.engine.parallel` — same cells,
same constraint systems, same tree pages, for every worker count,
executor kind and chunk size.  This is what lets ``--workers`` be a pure
throughput knob with no semantic surface.
"""

import numpy as np
import pytest

from repro.core.candidates import SelectorKind
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import uniform_points
from repro.engine.parallel import CellWorkshop, chunk_ids, resolve_workers


def tree_signature(tree):
    """Full structural fingerprint: every node's bounds and ids, in a
    deterministic traversal order."""
    signature = []
    stack = [tree.root_id]
    while stack:
        node = tree._read(stack.pop())
        signature.append((
            node.is_leaf,
            node.level,
            node.lows.tobytes(),
            node.highs.tobytes(),
            node.ids.tobytes(),
        ))
        if not node.is_leaf:
            stack.extend(int(i) for i in node.ids)
    return signature


def cells_signature(index):
    """Byte-exact record of every cell: system rows, ids, rectangles."""
    signature = []
    for point_id in sorted(index._cell_rects):
        system = index._systems[point_id]
        rects = index._cell_rects[point_id]
        signature.append((
            point_id,
            system.a.tobytes(),
            system.b.tobytes(),
            system.point_ids.tobytes(),
            tuple((r.low.tobytes(), r.high.tobytes()) for r in rects),
        ))
    return signature


def build(points, **overrides):
    defaults = dict(selector=SelectorKind.NN_DIRECTION)
    defaults.update(overrides)
    return NNCellIndex.build(points, BuildConfig(**defaults))


class TestParity:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_process_build_identical(self, seed, workers):
        points = uniform_points(48, 3, seed=seed)
        serial = build(points)
        parallel = build(points, workers=workers)
        assert cells_signature(serial) == cells_signature(parallel)
        assert tree_signature(serial.cell_tree) == tree_signature(
            parallel.cell_tree
        )
        assert tree_signature(serial.data_tree) == tree_signature(
            parallel.data_tree
        )

    def test_thread_build_identical(self):
        points = uniform_points(40, 3, seed=3)
        serial = build(points)
        threaded = build(points, workers=2, executor="thread")
        assert cells_signature(serial) == cells_signature(threaded)
        assert tree_signature(serial.cell_tree) == tree_signature(
            threaded.cell_tree
        )

    def test_sphere_selector_and_chunk_size_invariance(self):
        points = uniform_points(36, 2, seed=11)
        serial = build(points, selector=SelectorKind.SPHERE)
        for chunk_size in (1, 5, 100):
            parallel = build(
                points,
                selector=SelectorKind.SPHERE,
                workers=2,
                executor="thread",
                build_chunk_size=chunk_size,
            )
            assert cells_signature(serial) == cells_signature(parallel)

    def test_decomposed_build_identical(self):
        points = uniform_points(24, 2, seed=5)
        serial = build(points, decompose=True)
        parallel = build(points, decompose=True, workers=2)
        assert cells_signature(serial) == cells_signature(parallel)
        assert tree_signature(serial.cell_tree) == tree_signature(
            parallel.cell_tree
        )

    def test_parallel_index_answers_queries(self):
        points = uniform_points(50, 3, seed=2)
        index = build(points, workers=2)
        rng = np.random.default_rng(9)
        for q in rng.uniform(size=(25, 3)):
            pid, dist, __ = index.nearest(q)
            diffs = points - q
            brute = int(np.argmin(np.einsum("ij,ij->i", diffs, diffs)))
            assert pid == brute


class TestWorkshop:
    def test_workshop_matches_serial_cells(self):
        points = uniform_points(30, 2, seed=4)
        serial = build(points)
        workshop = CellWorkshop(points, serial.config)
        for point_id in range(points.shape[0]):
            system, rects = workshop.compute(point_id)
            expected = serial._systems[point_id]
            assert np.array_equal(system.a, expected.a)
            assert np.array_equal(system.b, expected.b)
            assert np.array_equal(system.point_ids, expected.point_ids)
            assert len(rects) == len(serial._cell_rects[point_id])
            for got, want in zip(rects, serial._cell_rects[point_id]):
                assert np.array_equal(got.low, want.low)
                assert np.array_equal(got.high, want.high)


class TestChunking:
    def test_chunks_cover_range_in_order(self):
        chunks = chunk_ids(103, workers=4)
        joined = np.concatenate(chunks)
        assert np.array_equal(joined, np.arange(103))

    def test_explicit_chunk_size(self):
        chunks = chunk_ids(10, workers=2, chunk_size=3)
        assert [c.tolist() for c in chunks] == [
            [0, 1, 2], [3, 4, 5], [6, 7, 8], [9],
        ]

    def test_empty_workload(self):
        assert chunk_ids(0, workers=2) == []

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestConfigValidation:
    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError):
            BuildConfig(executor="fiber")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            BuildConfig(workers=-2)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            BuildConfig(build_chunk_size=0)
