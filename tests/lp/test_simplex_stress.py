"""Stress tests for the simplex: degeneracy, conditioning, cycling."""

import numpy as np
import pytest

from repro.lp.interface import maximize
from repro.lp.simplex import simplex_maximize


class TestDegeneracyStress:
    def test_many_coincident_hyperplanes(self):
        """Dozens of constraints active at the same vertex (maximal
        degeneracy) must terminate via Bland's rule and stay correct."""
        d = 4
        rng = np.random.default_rng(231)
        vertex = np.full(d, 0.5)
        a = rng.normal(size=(40, d))
        b = a @ vertex  # every constraint passes through the vertex
        c = -np.abs(rng.normal(size=d))
        # Feasible set contains... the vertex at least; maximum of a
        # negative objective over it is bounded.
        res = simplex_maximize(c, a, b, np.zeros(d), np.ones(d))
        ref = maximize(c, a, b, np.zeros(d), np.ones(d), backend="scipy")
        assert res.status == ref.status
        if res.is_optimal:
            assert res.objective == pytest.approx(ref.objective, abs=1e-6)

    def test_duplicate_rows_mass(self):
        a = np.tile(np.array([[1.0, 1.0, 1.0]]), (60, 1))
        b = np.full(60, 1.2)
        res = simplex_maximize(
            np.ones(3), a, b, np.zeros(3), np.ones(3)
        )
        assert res.is_optimal
        assert res.objective == pytest.approx(1.2)

    def test_nearly_parallel_constraints(self):
        rng = np.random.default_rng(232)
        base = rng.normal(size=3)
        a = np.stack([base + rng.normal(scale=1e-9, size=3)
                      for __ in range(20)])
        x0 = np.full(3, 0.5)
        b = a @ x0 + 0.1
        res = simplex_maximize(base, a, b, np.zeros(3), np.ones(3))
        ref = maximize(base, a, b, np.zeros(3), np.ones(3), backend="scipy")
        assert res.is_optimal and ref.is_optimal
        assert res.objective == pytest.approx(ref.objective, abs=1e-6)

    def test_wide_coefficient_range(self):
        """Mixed magnitudes (1e-6 .. 1e6) should not break feasibility
        detection."""
        a = np.array([[1e6, 0.0], [0.0, 1e-6], [-1.0, -1.0]])
        x0 = np.array([0.3, 0.4])
        b = a @ x0 + np.array([1.0, 1e-7, 0.1])
        c = np.array([1.0, 1.0])
        res = simplex_maximize(c, a, b, np.zeros(2), np.ones(2))
        ref = maximize(c, a, b, np.zeros(2), np.ones(2), backend="scipy")
        assert res.status == ref.status == "optimal"
        assert res.objective == pytest.approx(ref.objective, rel=1e-5)


class TestBulkAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_batches_of_random_cells(self, seed):
        """Mini soak: whole batches of bisector-shaped systems, both
        backends, statuses and optima identical."""
        rng = np.random.default_rng(300 + seed)
        d = int(rng.integers(2, 7))
        pts = rng.uniform(size=(18, d))
        center = pts[0]
        a = 2.0 * (pts[1:] - center)
        b = np.einsum("ij,ij->i", pts[1:], pts[1:]) - float(center @ center)
        for axis in range(d):
            c = np.zeros(d)
            c[axis] = 1.0
            for sign in (1.0, -1.0):
                ours = simplex_maximize(
                    sign * c, a, b, np.zeros(d), np.ones(d)
                )
                ref = maximize(
                    sign * c, a, b, np.zeros(d), np.ones(d),
                    backend="scipy",
                )
                assert ours.status == ref.status == "optimal"
                assert ours.objective == pytest.approx(
                    ref.objective, abs=1e-7
                )
