"""Unit tests for the LP front-end and backend agreement."""

import numpy as np
import pytest

from repro.lp.interface import (
    BACKENDS,
    LPResult,
    get_default_backend,
    maximize,
    minimize,
    set_default_backend,
)


@pytest.fixture(autouse=True)
def restore_backend():
    original = get_default_backend()
    yield
    set_default_backend(original)


def random_feasible_problem(rng, d=4, m=10):
    a = rng.normal(size=(m, d))
    x0 = rng.uniform(0.2, 0.8, size=d)
    b = a @ x0 + rng.uniform(0.0, 0.5, size=m)
    c = rng.normal(size=d)
    return c, a, b, np.zeros(d), np.ones(d)


class TestBackends:
    def test_backends_tuple(self):
        assert set(BACKENDS) == {"auto", "simplex", "scipy"}

    def test_default_backend_roundtrip(self):
        set_default_backend("scipy")
        assert get_default_backend() == "scipy"
        set_default_backend("auto")
        assert get_default_backend() == "auto"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_default_backend("cplex")
        with pytest.raises(ValueError):
            maximize(
                np.ones(2), np.zeros((0, 2)), np.zeros(0),
                np.zeros(2), np.ones(2), backend="cplex",
            )

    def test_simplex_scipy_agree_on_optimum(self, rng):
        for __ in range(30):
            c, a, b, lb, ub = random_feasible_problem(rng)
            r1 = maximize(c, a, b, lb, ub, backend="simplex")
            r2 = maximize(c, a, b, lb, ub, backend="scipy")
            assert r1.is_optimal and r2.is_optimal
            assert r1.objective == pytest.approx(r2.objective, abs=1e-7)

    def test_simplex_scipy_agree_on_infeasible(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.2, -0.8])
        for backend in ("simplex", "scipy"):
            res = maximize(
                np.array([1.0, 0.0]), a, b, np.zeros(2), np.ones(2),
                backend=backend,
            )
            assert res.status == "infeasible"
            assert res.x is None

    def test_auto_dispatches_both_sizes(self, rng):
        # Small problem (simplex path) and large problem (scipy path)
        # must both work through "auto".
        c, a, b, lb, ub = random_feasible_problem(rng, d=3, m=5)
        assert maximize(c, a, b, lb, ub, backend="auto").is_optimal
        c, a, b, lb, ub = random_feasible_problem(rng, d=3, m=120)
        assert maximize(c, a, b, lb, ub, backend="auto").is_optimal


class TestMinimize:
    def test_minimize_is_negated_maximize(self, rng):
        c, a, b, lb, ub = random_feasible_problem(rng)
        mn = minimize(c, a, b, lb, ub, backend="simplex")
        mx = maximize(-c, a, b, lb, ub, backend="simplex")
        assert mn.is_optimal
        assert mn.objective == pytest.approx(-mx.objective)

    def test_minimize_propagates_infeasible(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([0.2, -0.8])
        res = minimize(np.array([1.0]), a, b, np.zeros(1), np.ones(1))
        assert res.status == "infeasible"

    def test_minimize_axis_objective(self):
        # min x0 subject to x0 + x1 >= 0.6 over unit box.
        a = np.array([[-1.0, -1.0]])
        b = np.array([-0.6])
        res = minimize(np.array([1.0, 0.0]), a, b, np.zeros(2), np.ones(2))
        assert res.is_optimal
        assert res.objective == pytest.approx(0.0)  # (0, 0.6) feasible


class TestLPResult:
    def test_flags(self):
        ok = LPResult("optimal", np.zeros(1), 0.0)
        bad = LPResult("infeasible", None, float("nan"))
        assert ok.is_optimal
        assert not bad.is_optimal

    def test_scipy_result_within_bounds(self, rng):
        for __ in range(10):
            c, a, b, lb, ub = random_feasible_problem(rng)
            res = maximize(c, a, b, lb, ub, backend="scipy")
            assert np.all(res.x >= lb - 1e-9)
            assert np.all(res.x <= ub + 1e-9)
