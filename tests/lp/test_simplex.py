"""Unit tests for the from-scratch two-phase simplex solver."""

import numpy as np
import pytest

from repro.lp.simplex import SimplexResult, simplex_maximize


def solve(c, a, b, lb=None, ub=None):
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    a = np.asarray(a, dtype=float).reshape(-1, n)
    b = np.asarray(b, dtype=float)
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.ones(n) if ub is None else np.asarray(ub, dtype=float)
    return simplex_maximize(c, a, b, lb, ub)


class TestBasicProblems:
    def test_box_only_maximum(self):
        res = solve([1.0, 2.0], np.zeros((0, 2)), np.zeros(0))
        assert res.is_optimal
        assert res.objective == pytest.approx(3.0)
        assert np.allclose(res.x, [1.0, 1.0])

    def test_box_only_minimising_coordinate(self):
        res = solve([-1.0, 0.0], np.zeros((0, 2)), np.zeros(0))
        assert res.is_optimal
        assert res.x[0] == pytest.approx(0.0)

    def test_single_constraint(self):
        # max x0 + x1 s.t. x0 + x1 <= 0.8 in the unit box
        res = solve([1.0, 1.0], [[1.0, 1.0]], [0.8])
        assert res.is_optimal
        assert res.objective == pytest.approx(0.8)

    def test_shifted_lower_bounds(self):
        # max x0 s.t. x0 + x1 <= 2 over [0.5, 1.5]^2
        res = solve([1.0, 0.0], [[1.0, 1.0]], [2.0],
                    lb=[0.5, 0.5], ub=[1.5, 1.5])
        assert res.is_optimal
        assert res.objective == pytest.approx(1.5)

    def test_negative_rhs_needs_phase_one(self):
        # x0 >= 0.7 written as -x0 <= -0.7
        res = solve([-1.0], [[-1.0]], [-0.7])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(0.7)
        assert res.objective == pytest.approx(-0.7)

    def test_classic_lp(self):
        # Textbook: max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18.
        res = solve(
            [3.0, 5.0],
            [[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            [4.0, 12.0, 18.0],
            lb=[0.0, 0.0],
            ub=[100.0, 100.0],
        )
        assert res.is_optimal
        assert res.objective == pytest.approx(36.0)
        assert np.allclose(res.x, [2.0, 6.0])


class TestInfeasibility:
    def test_contradictory_constraints(self):
        res = solve([1.0], [[1.0], [-1.0]], [0.2, -0.8])
        assert res.status == "infeasible"
        assert res.x is None

    def test_inverted_bounds(self):
        res = solve([1.0], np.zeros((0, 1)), np.zeros(0),
                    lb=[0.7], ub=[0.2])
        assert res.status == "infeasible"

    def test_zero_row_infeasible(self):
        # 0 . x <= -1 can never hold.
        res = solve([1.0, 0.0], [[0.0, 0.0]], [-1.0])
        assert res.status == "infeasible"

    def test_zero_row_vacuous(self):
        res = solve([1.0, 0.0], [[0.0, 0.0]], [0.5])
        assert res.is_optimal
        assert res.objective == pytest.approx(1.0)


class TestUnboundedness:
    def test_unbounded_with_infinite_bound(self):
        res = simplex_maximize(
            np.array([1.0]),
            np.zeros((0, 1)),
            np.zeros(0),
            np.array([0.0]),
            np.array([np.inf]),
        )
        assert res.status == "unbounded"

    def test_infinite_bound_but_constrained(self):
        res = simplex_maximize(
            np.array([1.0]),
            np.array([[1.0]]),
            np.array([5.0]),
            np.array([0.0]),
            np.array([np.inf]),
        )
        assert res.is_optimal
        assert res.objective == pytest.approx(5.0)


class TestDegenerateCases:
    def test_redundant_duplicate_constraints(self):
        res = solve([1.0, 0.0], [[1.0, 0.0]] * 5, [0.5] * 5)
        assert res.is_optimal
        assert res.objective == pytest.approx(0.5)

    def test_binding_at_vertex_with_many_ties(self):
        # Heavily degenerate vertex at the origin corner.
        a = [[1.0, 1.0], [1.0, 2.0], [2.0, 1.0], [1.0, 0.0], [0.0, 1.0]]
        b = [0.0, 0.0, 0.0, 0.0, 0.0]
        res = solve([1.0, 1.0], a, b)
        assert res.is_optimal
        assert res.objective == pytest.approx(0.0)

    def test_solution_within_bounds(self, rng):
        for __ in range(50):
            d = int(rng.integers(2, 6))
            m = int(rng.integers(1, 15))
            a = rng.normal(size=(m, d))
            x0 = rng.uniform(0.2, 0.8, size=d)
            b = a @ x0 + rng.uniform(0.0, 0.5, size=m)
            c = rng.normal(size=d)
            res = solve(c, a, b, lb=np.zeros(d), ub=np.ones(d))
            assert res.is_optimal
            assert np.all(res.x >= -1e-9) and np.all(res.x <= 1.0 + 1e-9)
            assert np.all(a @ res.x <= b + 1e-7)

    def test_result_flags(self):
        res = solve([1.0], np.zeros((0, 1)), np.zeros(0))
        assert isinstance(res, SimplexResult)
        assert res.is_optimal
        assert res.iterations >= 0
