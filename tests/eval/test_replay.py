"""Replay parity: captured workloads re-execute bit-identically.

The replay contract is the capture-side mirror of the engine parity
suites: whatever backend answered the capture (serial, batched,
sharded), replaying the log against an equivalent index must match
every id exactly and every distance float-exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nncell_index import NNCellIndex
from repro.eval.replay import Mismatch, ReplayReport, replay, replay_file
from repro.obs import workload
from repro.obs.workload import Workload, WorkloadRecorder
from repro.shard import ShardConfig, ShardedNNCellIndex


@pytest.fixture(autouse=True)
def clean_recorder():
    workload.uninstall()
    yield
    workload.uninstall()


def _capture_serial(index, queries):
    """Answer ``queries`` one by one; ``index.nearest`` itself feeds the
    installed recorder through the hot-path hook."""
    with workload.capturing(dim=queries.shape[1]) as recorder:
        for q in queries:
            index.nearest(q)
        return recorder.workload()


@st.composite
def point_sets_with_queries(draw):
    n = draw(st.integers(5, 30))
    dim = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    points = rng.uniform(size=(n, dim))
    queries = rng.uniform(size=(draw(st.integers(3, 12)), dim))
    return points, queries


class TestReplayParity:
    @settings(max_examples=10, deadline=None)
    @given(data=point_sets_with_queries())
    def test_serial_and_batch_replays_are_bit_identical(self, data):
        points, queries = data
        index = NNCellIndex.build(points)
        captured = _capture_serial(index, queries)
        assert len(captured) == len(queries)
        for mode in ("serial", "batch"):
            report = replay(index, captured, mode=mode)
            assert report.bit_identical, report.as_dict()
            assert report.n_queries == len(queries)

    @settings(max_examples=6, deadline=None)
    @given(data=point_sets_with_queries(), n_shards=st.integers(2, 4))
    def test_sharded_replay_matches_unsharded_capture(self, data, n_shards):
        points, queries = data
        index = NNCellIndex.build(points)
        captured = _capture_serial(index, queries)
        sharded = ShardedNNCellIndex.build(
            points, ShardConfig(n_shards=n_shards)
        )
        try:
            for mode in ("serial", "batch"):
                report = replay(sharded, captured, mode=mode)
                assert report.bit_identical, report.as_dict()
        finally:
            sharded.close()

    @settings(max_examples=6, deadline=None)
    @given(data=point_sets_with_queries(), batch_size=st.integers(1, 8))
    def test_batch_size_does_not_change_answers(self, data, batch_size):
        points, queries = data
        index = NNCellIndex.build(points)
        captured = _capture_serial(index, queries)
        report = replay(
            index, captured, mode="batch", batch_size=batch_size
        )
        assert report.bit_identical, report.as_dict()


class TestMismatchDetection:
    def _captured(self, seed=3):
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(20, 3))
        index = NNCellIndex.build(points)
        return index, _capture_serial(index, rng.uniform(size=(6, 3)))

    def test_doctored_id_is_reported(self):
        index, captured = self._captured()
        captured.point_ids[2] = captured.point_ids[2] + 1
        report = replay(index, captured)
        assert not report.bit_identical
        [mismatch] = report.mismatches
        assert isinstance(mismatch, Mismatch)
        assert mismatch.index == 2
        assert mismatch.expected_id == int(captured.point_ids[2])

    def test_doctored_distance_is_reported(self):
        index, captured = self._captured()
        captured.distances[4] += 1e-12  # any ULP difference counts
        report = replay(index, captured)
        assert [m.index for m in report.mismatches] == [4]

    def test_negative_expected_id_skips_distance_check(self):
        index, captured = self._captured()
        got_id, __, __ = index.nearest(captured.queries[0])
        captured.point_ids[0] = -1
        captured.distances[0] = float("nan")
        report = replay(index, captured)
        # id mismatch (-1 vs real id) is still flagged ...
        assert any(m.index == 0 for m in report.mismatches)
        assert all(m.got_id == got_id for m in report.mismatches
                   if m.index == 0)

    def test_as_dict_caps_listed_mismatches(self):
        index, captured = self._captured()
        captured.point_ids[:] = -999
        report = replay(index, captured)
        doc = report.as_dict(max_mismatches=2)
        assert doc["n_mismatches"] == 6
        assert len(doc["mismatches"]) == 2
        assert doc["bit_identical"] is False


class TestReplayMechanics:
    def test_mode_validated(self):
        rng = np.random.default_rng(0)
        index = NNCellIndex.build(rng.uniform(size=(5, 2)))
        empty = Workload(
            np.empty((0, 2)), np.empty(0, np.int64), np.empty(0)
        )
        with pytest.raises(ValueError, match="mode"):
            replay(index, empty, mode="warp")

    def test_empty_workload_short_circuits(self):
        rng = np.random.default_rng(0)
        index = NNCellIndex.build(rng.uniform(size=(5, 2)))
        empty = Workload(
            np.empty((0, 2)), np.empty(0, np.int64), np.empty(0)
        )
        report = replay(index, empty)
        assert isinstance(report, ReplayReport)
        assert report.bit_identical
        assert report.n_queries == 0
        assert report.throughput_qps() == 0.0

    def test_replay_accounts_pages_both_sides(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(size=(30, 3))
        index = NNCellIndex.build(points)
        captured = _capture_serial(index, rng.uniform(size=(8, 3)))
        report = replay(index, captured, mode="serial")
        assert report.captured_pages == int(captured.pages.sum())
        assert report.pages == report.captured_pages  # same index, same cost

    def test_replay_file_round_trip(self, tmp_path):
        rng = np.random.default_rng(2)
        points = rng.uniform(size=(15, 2))
        index = NNCellIndex.build(points)
        path = tmp_path / "w.jsonl"
        recorder = WorkloadRecorder(sink=path)
        for q in rng.uniform(size=(5, 2)):
            point_id, distance, info = index.nearest(q)
            recorder.record(q, point_id, distance, info.pages)
        recorder.close()
        report = replay_file(index, path, mode="batch")
        assert report.bit_identical
        assert report.n_queries == 5
