"""Unit tests for result-table rendering."""

import pytest

from repro.eval.reporting import ResultTable


@pytest.fixture
def table():
    t = ResultTable("Demo", ["dim", "value"])
    t.add_row(dim=4, value=1.25)
    t.add_row(dim=8, value=0.0001)
    return t


class TestResultTable:
    def test_add_row_requires_all_columns(self, table):
        with pytest.raises(ValueError):
            table.add_row(dim=12)

    def test_extra_values_ignored(self, table):
        table.add_row(dim=16, value=2.0, extra="dropped")
        assert "extra" not in table.rows[-1]

    def test_column_access(self, table):
        assert table.column("dim") == [4, 8]
        with pytest.raises(KeyError):
            table.column("nope")

    def test_render_contains_header_and_rows(self, table):
        text = table.render()
        assert "Demo" in text
        assert "dim" in text and "value" in text
        assert "1.25" in text

    def test_render_empty_table(self):
        t = ResultTable("Empty", ["a"])
        text = t.render()
        assert "Empty" in text

    def test_notes_rendered(self, table):
        table.notes.append("shape holds")
        assert "note: shape holds" in table.render()

    def test_csv(self, table):
        csv = table.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "dim,value"
        assert len(lines) == 3

    def test_str_is_render(self, table):
        assert str(table) == table.render()

    def test_float_formatting(self):
        t = ResultTable("F", ["v"])
        t.add_row(v=0.0)
        t.add_row(v=123456.789)
        t.add_row(v=0.00001)
        text = t.render()
        assert "0" in text
        assert "e+" in text or "e-" in text  # scientific for extremes
