"""Unit tests for the analytic NN cost model ([BBKK 97] quantities)."""

import math

import pytest

from repro.eval.costmodel import (
    expected_leaf_accesses,
    expected_nn_distance,
    nn_sphere_volume_fraction,
    unit_ball_volume,
)


class TestUnitBallVolume:
    def test_known_values(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 * math.pi / 3.0)

    def test_vanishes_in_high_dim(self):
        assert unit_ball_volume(50) < 1e-10

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            unit_ball_volume(0)


class TestExpectedNNDistance:
    def test_decreases_with_n(self):
        assert expected_nn_distance(1000, 4) < expected_nn_distance(100, 4)

    def test_increases_with_dim(self):
        assert expected_nn_distance(1000, 16) > expected_nn_distance(1000, 4)

    def test_defining_equation(self):
        # n * vol_ball(r) == 1 at the returned radius.
        for n, d in [(100, 2), (10000, 8)]:
            r = expected_nn_distance(n, d)
            assert n * unit_ball_volume(d) * r ** d == pytest.approx(1.0)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            expected_nn_distance(0, 4)


class TestCurseOfDimensionality:
    def test_volume_fraction_grows_with_dim(self):
        fractions = [
            nn_sphere_volume_fraction(10000, d) for d in (2, 8, 16, 32)
        ]
        assert all(
            fractions[i] <= fractions[i + 1] + 1e-12
            for i in range(len(fractions) - 1)
        )

    def test_fraction_capped_at_one(self):
        assert nn_sphere_volume_fraction(10, 64) == 1.0

    def test_leaf_accesses_grow_with_dim(self):
        low = expected_leaf_accesses(100000, 4, 50)
        high = expected_leaf_accesses(100000, 16, 50)
        assert high > low

    def test_leaf_accesses_saturate_at_full_scan(self):
        n, per_page = 10000, 50
        estimate = expected_leaf_accesses(n, 64, per_page)
        assert estimate == pytest.approx(n / per_page)

    def test_tiny_database_is_one_page(self):
        assert expected_leaf_accesses(10, 8, 50) == 1.0

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            expected_leaf_accesses(100, 4, 0)
