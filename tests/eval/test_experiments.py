"""Smoke tests for the figure experiments (tiny parameters).

Each experiment must run end to end, produce the figure's columns, and —
where the paper's shape is unambiguous even at toy scale — show it.
"""

import pytest

from repro.data import uniform_points
from repro.eval.experiments import (
    compare_methods,
    figure2_cell_gallery,
    figure4_selector_tradeoff,
    figure5_quality_performance,
    figure7_to_9_dimension_sweep,
    figure10_size_sweep,
    figure11_12_fourier,
    figure13_decomposition,
)


class TestCompareMethods:
    def test_all_methods_present(self):
        points = uniform_points(100, 3, seed=95)
        queries = uniform_points(5, 3, seed=96)
        run = compare_methods(points, queries)
        assert set(run.measurements) == {"nn-cell", "rstar", "xtree"}
        assert run.n_points == 100 and run.dim == 3

    def test_method_subset(self):
        points = uniform_points(60, 3, seed=97)
        queries = uniform_points(4, 3, seed=98)
        run = compare_methods(points, queries, methods=("nn-cell", "xtree"))
        assert set(run.measurements) == {"nn-cell", "xtree"}

    def test_unknown_method(self):
        points = uniform_points(10, 2, seed=99)
        with pytest.raises(ValueError):
            compare_methods(points, points[:2], methods=("kdtree",))

    def test_guttman_method(self):
        points = uniform_points(80, 3, seed=102)
        queries = uniform_points(4, 3, seed=103)
        run = compare_methods(points, queries, methods=("guttman", "rstar"))
        assert set(run.measurements) == {"guttman", "rstar"}
        assert run.measurements["guttman"].pages > 0

    def test_custom_build_config(self):
        from repro.core.candidates import SelectorKind
        from repro.core.nncell_index import BuildConfig

        points = uniform_points(50, 3, seed=100)
        queries = uniform_points(4, 3, seed=101)
        run = compare_methods(
            points,
            queries,
            build_config=BuildConfig(selector=SelectorKind.CORRECT),
            methods=("nn-cell",),
        )
        assert run.measurements["nn-cell"].n_queries == 4

    def test_dimension_sweep_selector_param(self):
        from repro.core.candidates import SelectorKind

        table = figure7_to_9_dimension_sweep(
            dims=(2,), n_points=60, n_queries=3,
            selector=SelectorKind.SPHERE,
        )
        assert len(table.rows) == 1


class TestFigure2:
    def test_grid_is_best_sparse_is_worst(self):
        table = figure2_cell_gallery(n_points=12)
        rows = {r["distribution"]: r for r in table.rows}
        assert rows["grid"]["overlap"] == pytest.approx(0.0, abs=1e-6)
        assert rows["sparse"]["overlap"] > rows["grid"]["overlap"]
        assert rows["uniform"]["overlap"] > 0.0


class TestFigure4And5:
    @pytest.fixture(scope="class")
    def fig4(self):
        return figure4_selector_tradeoff(dims=(2, 4), n_points=50)

    def test_columns_and_rows(self, fig4):
        assert len(fig4.rows) == 2 * 4  # dims x algorithms
        assert set(fig4.columns) >= {"dim", "algorithm", "build_seconds",
                                     "build_lp_rows", "build_pages",
                                     "build_cost", "overlap"}

    def test_correct_has_lowest_overlap(self, fig4):
        for dim in (2, 4):
            rows = [r for r in fig4.rows if r["dim"] == dim]
            by_alg = {r["algorithm"]: r["overlap"] for r in rows}
            assert by_alg["correct"] == min(by_alg.values())

    def test_nn_direction_is_fastest(self, fig4):
        # Deterministic cost model (LP constraint rows + page accesses)
        # instead of wall-clock, which is noisy at toy scale: NN-Direction
        # feeds the solver the fewest constraints and touches the fewest
        # pages, so it must do the least construction work.
        for dim in (2, 4):
            rows = [r for r in fig4.rows if r["dim"] == dim]
            by_alg = {r["algorithm"]: r["build_cost"] for r in rows}
            assert by_alg["nn-direction"] == min(by_alg.values())

    def test_figure5_derived_from_figure4(self, fig4):
        fig5 = figure5_quality_performance(fig4)
        assert len(fig5.rows) == len(fig4.rows)
        assert all(r["quality_to_performance"] > 0 for r in fig5.rows)


class TestFigure7To10:
    def test_dimension_sweep_columns(self):
        table = figure7_to_9_dimension_sweep(
            dims=(2, 3), n_points=120, n_queries=5
        )
        assert len(table.rows) == 2
        for row in table.rows:
            assert row["nncell_total_s"] > 0
            assert row["rstar_pages"] > 0
            assert row["speedup_vs_rstar"] > 0

    def test_size_sweep(self):
        table = figure10_size_sweep(sizes=(60, 120), dim=3, n_queries=5)
        assert [r["n_points"] for r in table.rows] == [60, 120]
        # Tree page accesses grow with database size.
        assert table.rows[1]["rstar_pages"] >= table.rows[0]["rstar_pages"]


class TestFigure11To13:
    def test_fourier_comparison(self):
        table = figure11_12_fourier(sizes=(150,), dim=6, n_queries=5)
        row = table.rows[0]
        assert row["nncell_pages"] > 0 and row["xtree_pages"] > 0
        assert row["speedup_vs_xtree"] > 0

    def test_decomposition_reduces_overlap(self):
        table = figure13_decomposition(dims=(2, 3), n_points=40, k_max=8)
        for row in table.rows:
            assert row["overlap_decomposed"] <= row["overlap_exact"] + 1e-9
            assert row["improvement"] >= 1.0
