"""Unit tests for derived experiment metrics."""

import numpy as np
import pytest

from repro.core.nncell_index import NNCellIndex
from repro.data import uniform_points
from repro.eval.metrics import (
    speedup_percent,
    summarize_series,
    verify_against_scan,
)


class TestSpeedup:
    def test_paper_convention(self):
        # Improved method twice as fast -> 200 %.
        assert speedup_percent(2.0, 1.0) == pytest.approx(200.0)
        # Equal -> 100 %.
        assert speedup_percent(1.0, 1.0) == pytest.approx(100.0)
        # Slower -> below 100 %.
        assert speedup_percent(0.5, 1.0) == pytest.approx(50.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            speedup_percent(1.0, 0.0)
        with pytest.raises(ValueError):
            speedup_percent(-1.0, 1.0)


class TestVerifyAgainstScan:
    def test_zero_mismatches_on_correct_index(self, rng):
        points = uniform_points(60, 3, seed=93)
        index = NNCellIndex.build(points)
        queries = rng.uniform(size=(30, 3))
        report = verify_against_scan(index, points, queries)
        assert report["mismatches"] == 0.0
        assert report["queries"] == 30.0

    def test_counts_fallbacks(self, rng):
        points = uniform_points(30, 2, seed=94)
        index = NNCellIndex.build(points)
        outside = np.full((3, 2), 1.4)
        report = verify_against_scan(index, points, outside)
        assert report["fallbacks"] == 3.0
        assert report["mismatches"] == 0.0  # fallback is still exact


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize_series([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_series([])
