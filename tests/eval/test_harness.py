"""Unit tests for the measurement harness."""

import numpy as np
import pytest

from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.core.candidates import SelectorKind
from repro.data import uniform_points
from repro.eval.harness import (
    CostModel,
    QueryMeasurement,
    Timer,
    measure_nncell_queries,
    measure_scan_queries,
    measure_tree_queries,
)
from repro.index.bulk import bulk_load
from repro.index.linear_scan import LinearScan
from repro.index.rstar import RStarTree


@pytest.fixture(scope="module")
def setup():
    points = uniform_points(120, 3, seed=91)
    queries = uniform_points(10, 3, seed=92)
    tree = bulk_load(
        RStarTree(3, cache_pages=8), points, points, np.arange(120)
    )
    index = NNCellIndex.build(
        points,
        BuildConfig(selector=SelectorKind.NN_DIRECTION, cache_pages=8),
    )
    scan = LinearScan(points, cache_pages=8)
    return points, queries, tree, index, scan


class TestCostModel:
    def test_total_seconds(self):
        model = CostModel(io_seconds_per_block=0.01)
        assert model.total_seconds(0.5, 100) == pytest.approx(1.5)

    def test_default_is_ten_ms(self):
        assert CostModel().io_seconds_per_block == pytest.approx(0.010)


class TestTimer:
    def test_measures_positive_time(self):
        with Timer() as t:
            sum(range(10000))
        assert t.seconds > 0.0


class TestMeasurements:
    def test_nncell_measurement(self, setup):
        __, queries, __, index, __ = setup
        meas = measure_nncell_queries(index, queries)
        assert meas.n_queries == 10
        assert meas.pages > 0
        assert meas.candidates >= 10  # at least one per query
        assert meas.extra["fallbacks"] == 0.0
        per = meas.per_query()
        assert per["pages"] == pytest.approx(meas.pages / 10)

    def test_tree_measurement_rkv_and_hs(self, setup):
        __, queries, tree, __, __ = setup
        rkv = measure_tree_queries(tree, queries, method="rkv")
        hs = measure_tree_queries(tree, queries, method="hs")
        assert rkv.n_queries == hs.n_queries == 10
        assert rkv.pages > 0 and hs.pages > 0
        assert rkv.method == "rkv" and hs.method == "hs"

    def test_tree_measurement_rejects_unknown_method(self, setup):
        __, queries, tree, __, __ = setup
        with pytest.raises(ValueError):
            measure_tree_queries(tree, queries, method="dijkstra")

    def test_scan_measurement_reads_everything(self, setup):
        points, queries, __, __, scan = setup
        meas = measure_scan_queries(scan, queries)
        assert meas.distance_computations == 10 * len(points)

    def test_total_seconds_combines_cpu_and_io(self, setup):
        __, queries, tree, __, __ = setup
        meas = measure_tree_queries(tree, queries)
        model = CostModel(io_seconds_per_block=1.0)
        assert meas.total_seconds(model) == pytest.approx(
            meas.cpu_seconds + meas.pages
        )

    def test_warm_cache_reduces_physical_reads(self, setup):
        """With drop_cache=False repeated queries hit the buffer pool."""
        __, queries, tree, __, __ = setup
        tree.pages.drop_cache()
        tree.pages.reset_stats()
        measure_tree_queries(tree, np.tile(queries[:1], (5, 1)),
                             drop_cache=False)
        stats = tree.pages.stats
        assert stats.physical_reads < stats.logical_reads

    def test_query_measurement_defaults(self):
        meas = QueryMeasurement("m")
        assert meas.per_query()["cpu_ms"] == 0.0
