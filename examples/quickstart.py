"""Quickstart: build a NN-cell index, query it, update it.

Run:  python examples/quickstart.py

Demonstrates the core workflow of the paper's approach: precompute the
solution space of nearest-neighbor search (one Voronoi NN-cell per data
point, approximated by rectangles and indexed in an X-tree), then answer
NN queries with plain point queries, and keep the structure consistent
under inserts and deletes.
"""

import numpy as np

from repro import (
    BuildConfig,
    NNCellIndex,
    SelectorKind,
    uniform_points,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. A database of 300 points in 4-d feature space (unit cube).
    points = uniform_points(n=300, dim=4, seed=7)

    # 2. Precompute the solution space.  The Sphere selector is the
    #    paper's recommended trade-off for moderate dimensionality.
    config = BuildConfig(selector=SelectorKind.SPHERE)
    index = NNCellIndex.build(points, config)
    stats = index.stats()
    print(f"built index over {int(stats['n_points'])} points, "
          f"{int(stats['n_rectangles'])} cell rectangles, "
          f"expected candidates per query: {stats['expected_candidates']:.2f}")

    # 3. Nearest-neighbor queries are point queries on the cell index.
    query = rng.uniform(size=4)
    neighbor_id, distance, info = index.nearest(query)
    print(f"\nquery {np.round(query, 3)}")
    print(f"  nearest neighbor: point {neighbor_id} at distance {distance:.4f}")
    print(f"  candidates inspected: {info.n_candidates}, "
          f"pages read: {info.pages}")

    # 4. The index is dynamic: inserts shrink cells, deletes grow them.
    new_point = rng.uniform(size=4)
    new_id = index.insert(new_point)
    print(f"\ninserted point {new_id} at {np.round(new_point, 3)}")
    nid, dist, __ = index.nearest(new_point)
    print(f"  its own nearest neighbor is point {nid} (distance {dist:.4f})"
          f" — itself, as expected" if nid == new_id else "")

    index.delete(new_id)
    print(f"deleted point {new_id} again")
    nid, dist, __ = index.nearest(new_point)
    print(f"  nearest neighbor of the same location is now point {nid} "
          f"at distance {dist:.4f}")

    # 5. Verify against brute force.
    diffs = points - query
    brute = int(np.argmin(np.einsum("ij,ij->i", diffs, diffs)))
    assert brute == neighbor_id, "index disagreed with brute force!"
    print("\nverified against brute-force scan: OK")


if __name__ == "__main__":
    main()
