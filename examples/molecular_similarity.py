"""Molecular shape screening with k-nearest-neighbor retrieval.

Run:  python examples/molecular_similarity.py

The paper cites molecular docking (Shoichet et al. 1992) as a driving
similarity-search application: molecules are described by low-dimensional
shape descriptors and screening asks for the k most similar library
compounds.  This example exercises the *order-k* extension — the paper's
stated future work — which generalises the NN-cell precomputation to
order-k Voronoi cells, so a k-NN query is again a single point query plus
candidate verification.
"""

import numpy as np

from repro import clustered_points
from repro.core.order_k import OrderKIndex

LIBRARY_SIZE = 40
DESCRIPTOR_DIM = 3
K = 3


def compound_name(i: int) -> str:
    scaffolds = ["benz", "indol", "pyrid", "quinol", "furan"]
    return f"{scaffolds[i % len(scaffolds)]}-{i:03d}"


def main() -> None:
    # Shape descriptors cluster by scaffold family — clustered data.
    library = clustered_points(
        LIBRARY_SIZE, DESCRIPTOR_DIM, n_clusters=5, cluster_std=0.08, seed=5
    )
    print(f"screening library: {LIBRARY_SIZE} compounds, "
          f"{DESCRIPTOR_DIM}-d shape descriptors")

    index = OrderKIndex(library, k=K)
    stats = index.stats()
    print(f"order-{K} solution space: {int(stats['n_cells'])} non-empty "
          f"cells (tree height {int(stats['tree_height'])})\n")

    rng = np.random.default_rng(17)
    for trial in range(4):
        query = rng.uniform(0.1, 0.9, size=DESCRIPTOR_DIM)
        ids, dists = index.k_nearest(query)
        print(f"query descriptor {np.round(query, 3)}")
        for rank, (cid, dist) in enumerate(zip(ids, dists), start=1):
            print(f"  #{rank}: {compound_name(cid):12s} distance {dist:.4f}")

        # Verify against brute force.
        brute = np.argsort(np.linalg.norm(library - query, axis=1))[:K]
        assert set(int(b) for b in brute) == set(ids), "k-NN mismatch!"
    print("all retrievals verified against brute force: OK")


if __name__ == "__main__":
    main()
