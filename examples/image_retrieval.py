"""Content-based image retrieval over Fourier feature vectors.

Run:  python examples/image_retrieval.py

The paper's motivating application: similarity search in multimedia
databases, where images (or shapes) are transformed into high-dimensional
feature vectors and "similar" means "nearby in feature space".  This
example builds a catalogue of synthetic images described by 8-d Fourier
features (the paper's real dataset was exactly such Fourier points),
indexes the solution space, and compares retrieval against classic X-tree
NN search — reporting page accesses and CPU time like the paper's
Figures 11-12.
"""

import numpy as np

from repro import (
    BuildConfig,
    NNCellIndex,
    SelectorKind,
    XTree,
    fourier_points,
    rkv_nearest,
)
from repro.index import bulk_load

N_IMAGES = 800
FEATURE_DIM = 8


def image_name(i: int) -> str:
    themes = ["sunset", "harbor", "forest", "portrait", "skyline", "meadow"]
    return f"{themes[i % len(themes)]}_{i:04d}.png"


def main() -> None:
    # Feature extraction: each "image" is summarised by the magnitudes of
    # its first Fourier coefficients (see repro.data.fourier).
    features = fourier_points(N_IMAGES, dim=FEATURE_DIM, seed=11)
    print(f"catalogue: {N_IMAGES} images, {FEATURE_DIM}-d Fourier features")

    # Solution-space index (the paper's approach).  NN-Direction is the
    # selector the paper developed *for real data*: the sphere/point
    # heuristics degenerate on clustered distributions (Section 2).
    index = NNCellIndex.build(
        features, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    # ... and the classic X-tree baseline over the same features.
    xtree = XTree(FEATURE_DIM)
    bulk_load(xtree, features, features, np.arange(N_IMAGES))

    # Query: a new photograph, i.e. a perturbed catalogue feature vector.
    rng = np.random.default_rng(3)
    cell_pages = tree_pages = 0
    print("\nsample retrievals:")
    for __ in range(5):
        probe_id = int(rng.integers(N_IMAGES))
        query = np.clip(
            features[probe_id] + rng.normal(scale=0.03, size=FEATURE_DIM),
            0.0, 1.0,
        )
        match_id, distance, info = index.nearest(query)
        cell_pages += info.pages
        baseline = rkv_nearest(xtree, query)
        tree_pages += baseline.pages
        agree = "==" if baseline.nearest_id == match_id else "!="
        print(
            f"  query near {image_name(probe_id):18s} -> "
            f"{image_name(match_id):18s} (dist {distance:.4f}, "
            f"{info.n_candidates:3d} candidates)  [x-tree {agree}]"
        )
        assert baseline.nearest_id == match_id

    print(f"\npage accesses over 5 queries: "
          f"NN-cell={cell_pages}, X-tree={tree_pages}")
    print("(every retrieval above is exact and verified; at this scaled-"
          "down catalogue the X-tree baseline stays competitive — the "
          "paper's page-count wins need its 100k-point catalogues, see "
          "EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
