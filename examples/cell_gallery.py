"""ASCII rendition of Figure 2: NN-cells and their MBR approximations.

Run:  python examples/cell_gallery.py

Draws, for three 2-d distributions (iid uniform, regular grid, sparse),
the data points and the outline of every cell's MBR approximation on a
character grid, and prints the overlap statistics.  The regular grid is
the paper's best case (approximations coincide with the cells, zero
overlap); the sparse distribution is the worst case (approximations cover
most of the data space).
"""

import numpy as np

from repro import (
    BuildConfig,
    MBR,
    NNCellIndex,
    SelectorKind,
    average_overlap,
    grid_points,
    sparse_points,
    uniform_points,
)

WIDTH, HEIGHT = 56, 28


def render(points: np.ndarray, rects: "list[MBR]") -> str:
    """Rectangles as corner/edge characters, points as ``*``."""
    canvas = [[" "] * WIDTH for __ in range(HEIGHT)]

    def to_cell(x: float, y: float) -> "tuple[int, int]":
        col = min(WIDTH - 1, int(x * (WIDTH - 1) + 0.5))
        row = min(HEIGHT - 1, int((1.0 - y) * (HEIGHT - 1) + 0.5))
        return row, col

    for rect in rects:
        (r0, c0) = to_cell(rect.low[0], rect.high[1])
        (r1, c1) = to_cell(rect.high[0], rect.low[1])
        for c in range(c0, c1 + 1):
            for r in (r0, r1):
                canvas[r][c] = "-" if canvas[r][c] == " " else "="
        for r in range(r0, r1 + 1):
            for c in (c0, c1):
                canvas[r][c] = "|" if canvas[r][c] == " " else "#"
    for p in points:
        r, c = to_cell(p[0], p[1])
        canvas[r][c] = "*"
    return "\n".join("".join(row) for row in canvas)


def show(name: str, points: np.ndarray) -> None:
    index = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.CORRECT)
    )
    rects = [rect for __, rect in index.all_cell_rectangles()]
    overlap = average_overlap(rects, MBR.unit_cube(2))
    print(f"\n{name}  ({points.shape[0]} points, "
          f"overlap {overlap:.3f}, expected candidates {overlap + 1:.2f})")
    print(render(points, rects))


def main() -> None:
    print("Figure 2 gallery: NN-cell MBR approximations in 2-d")
    show("iid uniform", uniform_points(14, 2, seed=2))
    show("regular grid (best case: MBRs == cells)", grid_points(4, 2))
    show("sparse (worst case: MBRs ~ data space)",
         sparse_points(7, 2, seed=2, spread=0.5))


if __name__ == "__main__":
    main()
