"""Dynamic maintenance under a mixed insert/delete/query workload.

Run:  python examples/dynamic_workload.py

The paper stresses that, although based on precomputation, the approach
"is dynamic, i.e. it supports insertions of new data points" (and
deletions via Roos-style local updates).  This example drives a sensor
registry through hundreds of interleaved updates and queries, verifying
every answer against brute force and reporting how *local* the updates
stay (how many existing cells each insert/delete touches).

Queries arrive in bursts, the way a dashboard refresh delivers them, and
each burst is answered through one batched index walk
(``index.query_batch`` — see docs/scaling.md): the answers are
bit-identical to querying one by one, but the burst shares its page
reads.
"""

import numpy as np

from repro import BuildConfig, NNCellIndex, SelectorKind, uniform_points

INITIAL = 150
OPERATIONS = 160
MAX_BURST = 8
DIM = 4


def main() -> None:
    rng = np.random.default_rng(23)
    points = uniform_points(INITIAL, DIM, seed=3)
    index = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    print(f"initial registry: {len(index)} sensors in {DIM}-d")

    inserts = deletes = queries = bursts = pages = 0
    for step in range(OPERATIONS):
        op = rng.choice(["insert", "delete", "query"], p=[0.3, 0.2, 0.5])
        if op == "insert":
            index.insert(rng.uniform(size=DIM))
            inserts += 1
        elif op == "delete" and len(index) > 2:
            victim = int(rng.choice(index.active_ids))
            index.delete(victim)
            deletes += 1
        else:
            # A burst of lookups between updates: one batched walk.
            burst = rng.uniform(size=(int(rng.integers(1, MAX_BURST + 1)),
                                      DIM))
            ids, dists, info = index.query_batch(burst)
            active = index.active_ids
            live = index.points[active]
            for q, pid in zip(burst, ids):
                diffs = live - q
                brute = int(np.argmin(np.einsum("ij,ij->i", diffs, diffs)))
                assert int(active[brute]) == pid, (
                    f"mismatch at step {step}: index says {pid}"
                )
            queries += info.n_queries
            bursts += 1
            pages += info.pages

    print(f"ran {inserts} inserts, {deletes} deletes, {queries} queries "
          f"in {bursts} batched bursts — every answer verified against "
          f"brute force")
    print(f"page reads across all bursts: {pages} "
          f"({pages / queries:.2f} per query, shared within each burst)")
    stats = index.stats()
    print(f"final registry: {len(index)} sensors, "
          f"{int(stats['n_rectangles'])} cell rectangles, "
          f"expected candidates {stats['expected_candidates']:.2f}")
    index.cell_tree.validate()
    index.data_tree.validate()
    print("index structural invariants: OK")


if __name__ == "__main__":
    main()
