"""User-adaptable similarity search with weighted metrics + persistence.

Run:  python examples/adaptable_search.py

The ICDE-98 group's companion work (Seidl & Kriegel) lets users *re-weight*
feature dimensions to express what "similar" means — e.g. an apparel
search where one shopper cares about colour and another about texture.
Because weighted-Euclidean bisectors are still hyperplanes, the NN-cell
precomputation works per weight profile; this example builds one solution
space per profile, shows how the same query returns different (exact)
matches, and round-trips the default index through save/load.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BuildConfig,
    NNCellIndex,
    SelectorKind,
    WeightedNNCellIndex,
    clustered_points,
    load_index,
    save_index,
)

N_ITEMS = 150
# Feature layout: [colour hue, colour saturation, texture coarseness]
PROFILES = {
    "balanced": np.array([1.0, 1.0, 1.0]),
    "colour-focused": np.array([8.0, 8.0, 0.2]),
    "texture-focused": np.array([0.2, 0.2, 10.0]),
}


def main() -> None:
    rng = np.random.default_rng(31)
    catalogue = clustered_points(N_ITEMS, 3, n_clusters=6, seed=13)
    print(f"catalogue: {N_ITEMS} items, 3-d features "
          "(hue, saturation, texture)\n")

    indexes = {
        name: WeightedNNCellIndex(catalogue, weights, max_constraints=20)
        for name, weights in PROFILES.items()
    }

    query = rng.uniform(0.2, 0.8, size=3)
    print(f"query features: {np.round(query, 3)}")
    for name, index in indexes.items():
        item, dist = index.nearest(query)
        print(f"  {name:16s} -> item {item:3d} "
              f"(weighted distance {dist:.4f}, "
              f"features {np.round(catalogue[item], 3)})")

    # Different profiles may pick different items — verify each is exact
    # under its own metric.
    for name, index in indexes.items():
        w = PROFILES[name]
        item, dist = index.nearest(query)
        brute = np.sqrt(((catalogue - query) ** 2 @ w))
        assert abs(dist - brute.min()) < 1e-9
    print("\nall three profiles verified exact under their own metrics")

    # The unweighted solution space persists across sessions.
    plain = NNCellIndex.build(
        catalogue, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "catalogue_index.npz"
        save_index(plain, archive)
        restored = load_index(archive)
        a = plain.nearest(query)[0]
        b = restored.nearest(query)[0]
        assert a == b
        size_kb = archive.stat().st_size / 1024
        print(f"saved + reloaded the solution space "
              f"({size_kb:.0f} KiB archive); answers identical")


if __name__ == "__main__":
    main()
