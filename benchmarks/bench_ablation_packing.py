"""Ablation — bulk-loading packings and the index lineage (ours).

Two comparisons:

* **STR vs Hilbert packing** of the same data: leaf-region tightness and
  NN-query page counts;
* **index lineage**: Guttman R-tree vs R*-tree vs X-tree on the same
  insertion workload — the historical progression whose end point the
  paper's approach replaces.
"""

import numpy as np

from bench_common import publish, scaled

from repro.data import clustered_points, query_points, uniform_points
from repro.eval.reporting import ResultTable
from repro.index.bulk import bulk_load
from repro.index.guttman import GuttmanRTree
from repro.index.hilbert import hilbert_bulk_load
from repro.index.nnsearch import rkv_nearest
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree


def bench_ablation_packing(benchmark):
    def run():
        table = ResultTable(
            "Ablation: STR vs Hilbert bulk loading",
            ["dataset", "packing", "leaf_margin", "mean_query_pages"],
        )
        n = scaled(600)
        dim = 4
        queries = query_points(scaled(20), dim, seed=221)
        datasets = {
            "uniform": uniform_points(n, dim, seed=222),
            "clustered": clustered_points(n, dim, seed=223),
        }
        loaders = {"str": bulk_load, "hilbert": hilbert_bulk_load}
        for name, points in datasets.items():
            for packing, loader in loaders.items():
                tree = loader(
                    RStarTree(dim, leaf_entry_bytes=8 * dim + 8),
                    points, points, np.arange(n),
                )
                leaf_margin = sum(
                    node.mbr().margin()
                    for __, node in tree.iter_nodes()
                    if node.is_leaf
                )
                pages = float(np.mean(
                    [rkv_nearest(tree, q).pages for q in queries]
                ))
                table.add_row(
                    dataset=name,
                    packing=packing,
                    leaf_margin=leaf_margin,
                    mean_query_pages=pages,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "ablation_packing")
    for row in table.rows:
        assert row["mean_query_pages"] > 0


def bench_index_lineage(benchmark):
    def run():
        table = ResultTable(
            "Index lineage: Guttman -> R* -> X-tree (insertion build)",
            ["index", "mean_query_pages", "mean_cpu_ms", "n_nodes"],
        )
        n = scaled(500)
        dim = 8
        points = uniform_points(n, dim, seed=224)
        queries = query_points(scaled(15), dim, seed=225)
        for name, cls in (
            ("guttman", GuttmanRTree),
            ("rstar", RStarTree),
            ("xtree", XTree),
        ):
            tree = cls(dim, leaf_entry_bytes=8 * dim + 8)
            for i, p in enumerate(points):
                tree.insert_point(p, i)
            import time

            pages = []
            cpu = []
            for q in queries:
                start = time.perf_counter()
                result = rkv_nearest(tree, q)
                cpu.append(time.perf_counter() - start)
                pages.append(result.pages)
            table.add_row(
                index=name,
                mean_query_pages=float(np.mean(pages)),
                mean_cpu_ms=1e3 * float(np.mean(cpu)),
                n_nodes=sum(1 for __ in tree.iter_nodes()),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "index_lineage")
    rows = {r["index"]: r for r in table.rows}
    # The R*-tree's heuristics should not lose badly to Guttman's.
    assert rows["rstar"]["mean_query_pages"] <= (
        rows["guttman"]["mean_query_pages"] * 1.5
    )
