"""Figure 5 — quality-to-performance ratio of the four selectors.

Paper shape to check: an *optimised* selector always wins the combined
criterion (the Correct algorithm pays too much construction time for its
accuracy), with the cheap NN-Direction strategy taking over at the high
end of the dimension range.
"""

from bench_common import publish, scaled

from repro.eval.experiments import (
    figure4_selector_tradeoff,
    figure5_quality_performance,
)

DIMS = (2, 4, 6, 8)


def bench_figure05_quality_performance(benchmark):
    def run():
        fig4 = figure4_selector_tradeoff(dims=DIMS, n_points=scaled(60))
        return figure5_quality_performance(fig4)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "figure05")
    # At d = 2 the tiny scaled database lets Correct tie the optimised
    # selectors; from d = 4 on the paper's ranking is unambiguous.
    for dim in [d for d in DIMS if d >= 4]:
        rows = {
            r["algorithm"]: r["quality_to_performance"]
            for r in table.rows
            if r["dim"] == dim
        }
        best = max(rows, key=rows.get)
        assert best != "correct", (
            f"an optimised selector must win quality-to-performance at "
            f"d={dim} (got {best})"
        )
