"""Figure 4 — construction performance and overlap of the four selectors.

Paper shape to check: per-point construction time and overlap both grow
with the dimensionality; Correct is the slowest and most accurate
algorithm, NN-Direction the fastest and least accurate.
"""

from bench_common import publish, scaled

from repro.eval.experiments import figure4_selector_tradeoff

DIMS = (2, 4, 6, 8)


def bench_figure04_selector_tradeoff(benchmark):
    table = benchmark.pedantic(
        lambda: figure4_selector_tradeoff(dims=DIMS, n_points=scaled(60)),
        rounds=1,
        iterations=1,
    )
    publish(table, "figure04")
    for dim in DIMS:
        rows = {r["algorithm"]: r for r in table.rows if r["dim"] == dim}
        assert rows["correct"]["overlap"] == min(
            r["overlap"] for r in rows.values()
        ), f"Correct must be the most accurate at d={dim}"
        # The constant-size NN-Direction strategy beats the data-dependent
        # expensive ones (Correct, and Sphere whose radius heuristic
        # degenerates to Correct at scaled N); Point can be cheaper still
        # at small N, which the paper's larger databases do not show.
        assert rows["nn-direction"]["build_seconds"] < min(
            rows["correct"]["build_seconds"],
            rows["sphere"]["build_seconds"],
        ), f"NN-Direction must beat Correct/Sphere at d={dim}"
    # Overlap of the correct approximations grows with dimension.
    correct_overlap = [
        r["overlap"] for r in table.rows if r["algorithm"] == "correct"
    ]
    assert correct_overlap == sorted(correct_overlap)
