"""Figure 2 — NN-cell MBR approximations per 2-d distribution.

Regenerates the paper's qualitative gallery as overlap numbers: the
regular grid is the best case (approximations == cells, zero overlap),
iid uniform is intermediate, the sparse distribution the worst case.
"""

from bench_common import publish, scaled

from repro.eval.experiments import figure2_cell_gallery


def bench_figure02_cell_gallery(benchmark):
    table = benchmark.pedantic(
        lambda: figure2_cell_gallery(n_points=scaled(16)),
        rounds=1,
        iterations=1,
    )
    publish(table, "figure02")
    rows = {r["distribution"]: r for r in table.rows}
    assert rows["grid"]["overlap"] <= 1e-6, "grid must be overlap-free"
    assert rows["sparse"]["overlap"] > rows["grid"]["overlap"]
