"""Serving-layer throughput: micro-batched service vs unbatched clients.

Four closed-loop client threads issue one query at a time.  The direct
baseline calls ``index.nearest`` per query; the service coalesces
concurrent submissions into ``query_batch`` calls, which amortises page
reads across the batch.  Throughput is compared in the repo's cost-model
currency (wall time + pages x io_cost), so the batching win is the
deterministic page amortisation, not scheduler noise.

Checked shapes: the service answers every query (zero errors), its mean
batch size exceeds 1, and its modelled throughput beats the baseline.
"""

from bench_common import publish, scaled

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.eval.loadgen import serving_throughput_table
from repro.serve import ServeConfig


def bench_serve_throughput(benchmark):
    def run():
        dim = 8
        index = NNCellIndex.build(uniform_points(scaled(400), dim, seed=171))
        queries = query_points(scaled(200), dim, seed=172)
        table = serving_throughput_table(
            index,
            queries,
            n_threads=4,
            config=ServeConfig(max_batch_size=64, max_wait_ms=5.0),
        )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = {row["mode"]: row for row in table.rows}
    assert rows["service"]["errors"] == 0
    assert rows["service"]["mean_batch_size"] > 1.0
    assert rows["service"]["modelled_speedup"] > 1.0
    publish(table, "serve_throughput")
