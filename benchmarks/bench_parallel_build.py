"""Measured speedup of the `repro.engine` execution layer.

Two claims, measured rather than asserted:

* **Parallel build** — the ``2d``-LP precomputation (Definition 3) is
  embarrassingly parallel; chunking it across a process pool must cut
  wall-clock build time on multi-core hardware.  The d=16 /
  NN-Direction configuration is the paper's high-dimensional regime,
  where per-point LP work dominates and pool overhead is noise.
* **Batched queries** — one shared tree walk for a whole workload must
  beat the per-query loop on modelled total time (its page reads are
  amortised across the batch).

Checked shapes: the parallel build is bit-identical to the serial one
(spot-checked here; exhaustively in ``tests/engine``), builds get faster
with a second worker wherever a second core exists, and full-batch
throughput beats serial throughput under the cost model.  The speedup
table this publishes is the source of the numbers in docs/scaling.md.
"""

import os
import time

import numpy as np

from bench_common import publish, scaled

from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.core.candidates import SelectorKind
from repro.data import query_points, uniform_points
from repro.eval.harness import batch_throughput_table

DIM = 16  # the acceptance regime: LP cost per point grows with d
WORKER_COUNTS = (2, 0)  # 0 = one worker per core


def bench_parallel_build(benchmark):
    def run():
        n = scaled(150)
        points = uniform_points(n, DIM, seed=171)
        config = BuildConfig(selector=SelectorKind.NN_DIRECTION)

        started = time.perf_counter()
        serial = NNCellIndex.build(points, config)
        serial_seconds = time.perf_counter() - started

        from repro.eval.reporting import ResultTable

        table = ResultTable(
            f"Parallel cell construction (n={n}, d={DIM}, nn-direction)",
            ["workers", "executor", "build_seconds", "speedup",
             "identical_to_serial"],
        )
        table.add_row(workers=1, executor="serial",
                      build_seconds=serial_seconds, speedup=1.0,
                      identical_to_serial=True)

        cores = os.cpu_count() or 1
        best_parallel = float("inf")
        for workers in WORKER_COUNTS:
            config_w = BuildConfig(
                selector=SelectorKind.NN_DIRECTION, workers=workers
            )
            started = time.perf_counter()
            parallel = NNCellIndex.build(points, config_w)
            seconds = time.perf_counter() - started
            identical = all(
                np.array_equal(a.low, b.low) and np.array_equal(a.high, b.high)
                and ia == ib
                for (ia, a), (ib, b) in zip(
                    serial.all_cell_rectangles(),
                    parallel.all_cell_rectangles(),
                )
            )
            table.add_row(
                workers=workers if workers else f"0({cores})",
                executor="process",
                build_seconds=seconds,
                speedup=serial_seconds / seconds,
                identical_to_serial=identical,
            )
            assert identical, "parallel build diverged from serial"
            best_parallel = min(best_parallel, seconds)

        table.notes.append(f"host cores: {cores}")
        publish(table, "parallel_build")
        if cores >= 2:
            # The headline claim — only measurable where a second core
            # exists; single-core hosts see pure pool overhead.
            assert best_parallel < serial_seconds, (
                f"no build speedup on {cores} cores: "
                f"serial {serial_seconds:.2f}s vs parallel {best_parallel:.2f}s"
            )

    benchmark.pedantic(run, rounds=1, iterations=1)


def bench_batch_throughput(benchmark):
    def run():
        n = scaled(400)
        dim = 8
        points = uniform_points(n, dim, seed=172)
        index = NNCellIndex.build(
            points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
        )
        queries = query_points(scaled(200), dim, seed=173)
        table = batch_throughput_table(index, queries,
                                       batch_sizes=(16, 64, None))
        publish(table, "batch_throughput")
        speedups = table.column("speedup_over_serial")
        # The full-batch row must beat the per-query loop: its point
        # queries share page reads the serial loop pays per query.
        assert speedups[-1] > 1.0, f"batched queries not faster: {speedups}"

    benchmark.pedantic(run, rounds=1, iterations=1)
