"""Sharding trajectory: build time and batched throughput vs shard count.

The sharding layer trades *total work* for *latency*: every scatter
query scans each shard's candidate set (the fleet-summed
``expected_candidates`` from the paper's Section 5 cost model grows
with N because smaller shards have coarser solution spaces), but the
per-shard walks run concurrently and per-shard builds parallelise
almost perfectly.  This bench publishes that trade as a
machine-readable root-level ``BENCH_shard.json``:

* ``shard{N}_build_seconds`` — wall time of
  :meth:`ShardedNNCellIndex.build` for N shards (N=1 is effectively
  the unsharded baseline plus routing bookkeeping);
* ``shard{N}_batch_qps`` — ``query_batch`` scatter-gather throughput
  over the same query workload, best of ``REPEATS`` interleaved
  passes;
* ``shard{N}_expected_candidates`` — the cost-model harness: the
  fleet-summed expected candidate-set size from
  :meth:`ShardedNNCellIndex.stats`, i.e. the model's prediction of the
  extra scan work sharding introduces (context, never gated);
* ``parity_mismatches`` — scatter answers diffed against the unsharded
  index over the full workload; anything but 0.0 is a bug.

Only the ``_seconds`` / ``_qps`` metrics gate (see
``tools/compare_bench.py``); the cost-model numbers are context.
Runnable both ways::

    PYTHONPATH=src pytest benchmarks/bench_shard.py --benchmark-only -s
    PYTHONPATH=src python benchmarks/bench_shard.py
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.shard import ShardConfig, ShardedNNCellIndex

try:  # direct `python benchmarks/bench_shard.py` runs too
    from bench_common import scaled
except ImportError:  # pragma: no cover - pytest inserts benchmarks/ on path
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_common import scaled

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_shard.json"

#: Shard counts on the measured trajectory (1 = routing-only baseline).
SHARD_COUNTS = (1, 2, 4, 8)

#: Interleaved throughput rounds per shard count; best pass kept
#: (loaded-box noise is one-sided, so max qps is the honest estimator).
REPEATS = 3


def _batch_qps(index, queries) -> float:
    """One timed ``query_batch`` pass (queries/s)."""
    started = time.perf_counter()
    index.query_batch(queries)
    elapsed = time.perf_counter() - started
    return queries.shape[0] / elapsed if elapsed > 0 else 0.0


def measure_shard_trajectory(points, queries) -> dict:
    """Build/throughput/cost-model numbers for every shard count."""
    flat = NNCellIndex.build(points)
    exp_ids, exp_dists, __ = flat.query_batch(queries)

    fleet = {}
    metrics_out = {}
    for n in SHARD_COUNTS:
        started = time.perf_counter()
        fleet[n] = ShardedNNCellIndex.build(points, ShardConfig(n_shards=n))
        metrics_out[f"shard{n}_build_seconds"] = (
            time.perf_counter() - started
        )
        metrics_out[f"shard{n}_expected_candidates"] = (
            fleet[n].stats()["expected_candidates"]
        )

    best = {n: 0.0 for n in SHARD_COUNTS}
    for __ in range(REPEATS):
        for n in SHARD_COUNTS:
            best[n] = max(best[n], _batch_qps(fleet[n], queries))
    for n in SHARD_COUNTS:
        metrics_out[f"shard{n}_batch_qps"] = best[n]

    mismatches = 0
    for n, sharded in fleet.items():
        ids, dists, __ = sharded.query_batch(queries)
        mismatches += int(np.sum(ids != exp_ids))
        mismatches += int(np.sum(dists != exp_dists))
        sharded.close()
    metrics_out["parity_mismatches"] = float(mismatches)
    return metrics_out


def run_bench(out_path: Path = BENCH_PATH) -> dict:
    """Build the workload, measure, and write the BENCH document."""
    dim = 6
    n_points = scaled(400)
    n_queries = scaled(300)
    points = uniform_points(n_points, dim, seed=281)
    queries = query_points(n_queries, dim, seed=282)

    document = {
        "bench": "shard",
        "format_version": 1,
        "config": {
            "n_points": n_points,
            "dim": dim,
            "n_queries": n_queries,
            "shard_counts": list(SHARD_COUNTS),
            "repeats": REPEATS,
        },
        "metrics": measure_shard_trajectory(points, queries),
    }
    mismatches = document["metrics"]["parity_mismatches"]
    if mismatches:
        raise AssertionError(
            f"sharded answers diverged from the unsharded index"
            f" ({mismatches:.0f} mismatched values)"
        )
    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def bench_shard(benchmark):
    document = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    m = document["metrics"]
    assert m["parity_mismatches"] == 0.0
    for n in SHARD_COUNTS:
        assert m[f"shard{n}_build_seconds"] > 0.0
        assert m[f"shard{n}_batch_qps"] > 0.0
        assert m[f"shard{n}_expected_candidates"] > 0.0
    print(f"\n(bench document written to {BENCH_PATH})")
    for name in sorted(m):
        print(f"  {name:<28} {m[name]:.3f}")


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2, sort_keys=True))
