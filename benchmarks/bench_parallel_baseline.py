"""Contextual baseline — parallel NN search ([Ber+ 97]).

The paper's introduction positions precomputation against its authors'
earlier parallel approach.  This bench compares, per query:

* serial R*-tree pages (RKV),
* parallel I/O rounds with round-robin vs proximity declustering over
  1..8 simulated disks,
* the NN-cell approach's point-query pages.

Checked shapes: parallel rounds shrink as disks are added, and proximity
declustering is at least as good as round-robin on average.
"""

import numpy as np

from bench_common import publish, scaled

from repro.data import uniform_points, query_points
from repro.eval.reporting import ResultTable
from repro.index.bulk import bulk_load
from repro.index.nnsearch import rkv_nearest
from repro.index.parallel import (
    parallel_nearest,
    proximity_declustering,
    round_robin_declustering,
)
from repro.index.rstar import RStarTree

DISKS = (1, 2, 4, 8)


def bench_parallel_baseline(benchmark):
    def run():
        dim = 6
        n = scaled(800)
        points = uniform_points(n, dim, seed=161)
        queries = query_points(scaled(20), dim, seed=162)
        tree = bulk_load(
            RStarTree(dim, leaf_entry_bytes=8 * dim + 8),
            points, points, np.arange(n),
        )
        table = ResultTable(
            "Parallel NN baseline ([Ber+ 97]) vs serial RKV",
            ["n_disks", "strategy", "mean_rounds", "mean_pages",
             "speedup_over_serial"],
        )
        serial_pages = float(np.mean(
            [rkv_nearest(tree, q).pages for q in queries]
        ))
        table.add_row(
            n_disks=1, strategy="serial-rkv", mean_rounds=serial_pages,
            mean_pages=serial_pages, speedup_over_serial=1.0,
        )
        for n_disks in DISKS:
            for name, strategy in (
                ("round-robin", round_robin_declustering),
                ("proximity", proximity_declustering),
            ):
                assignment = strategy(tree, n_disks)
                rounds, pages = [], []
                for q in queries:
                    result = parallel_nearest(tree, q, assignment, n_disks)
                    rounds.append(result.rounds)
                    pages.append(result.pages)
                mean_rounds = float(np.mean(rounds))
                table.add_row(
                    n_disks=n_disks,
                    strategy=name,
                    mean_rounds=mean_rounds,
                    mean_pages=float(np.mean(pages)),
                    speedup_over_serial=serial_pages / max(mean_rounds, 1e-9),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "parallel_baseline")

    def rounds_of(strategy):
        return [
            r["mean_rounds"] for r in table.rows
            if r["strategy"] == strategy
        ]

    for strategy in ("round-robin", "proximity"):
        series = rounds_of(strategy)
        assert series == sorted(series, reverse=True), (
            f"{strategy}: rounds must shrink as disks are added"
        )
    # Proximity declustering beats (or ties) round-robin on average.
    assert np.mean(rounds_of("proximity")) <= np.mean(
        rounds_of("round-robin")
    ) + 1e-9
