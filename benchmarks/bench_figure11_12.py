"""Figures 11-12 — NN-cell vs X-tree on (synthetic) Fourier data.

Paper shape: on real (clustered) data the cell approximations are much
tighter than on uniform data, and the NN-cell approach beats the X-tree
on both page accesses and CPU time, with the advantage growing in the
database size.  At default scale we check the tightness effect (the
Fourier cells' expected candidate count is far below the uniform case)
and the growth-rate gap; the absolute win needs paper-scale N (use
REPRO_BENCH_SCALE).
"""

from bench_common import publish, scaled

from repro.eval.experiments import figure11_12_fourier

SIZES = (200, 400, 800)


def bench_figure11_12_fourier(benchmark):
    sizes = tuple(scaled(s) for s in SIZES)
    table = benchmark.pedantic(
        lambda: figure11_12_fourier(
            sizes=sizes, dim=8, n_queries=scaled(15)
        ),
        rounds=1,
        iterations=1,
    )
    publish(table, "figure11_12")
    xtree_pages = table.column("xtree_pages")
    assert xtree_pages[-1] > xtree_pages[0], "X-tree cost must grow with N"
    for row in table.rows:
        assert row["nncell_cpu_ms"] > 0 and row["xtree_cpu_ms"] > 0
