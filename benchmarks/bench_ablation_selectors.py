"""Ablation — selector tuning and LP backends (ours, beyond the paper).

Two sweeps:

* the Sphere selector's radius factor (the paper's heuristic constant,
  OCR-damaged in the source; we expose it as a parameter and sweep it),
  showing the overlap / construction-cost trade-off around the paper's
  ``2.0``;
* the LP backend (from-scratch simplex vs scipy HiGHS) on the same cell
  workload, validating the auto-dispatch choice.
"""

from bench_common import publish, scaled

from repro.core.candidates import SelectorKind, SelectorParams
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.core.quality import average_overlap
from repro.data import uniform_points
from repro.eval.harness import Timer
from repro.eval.reporting import ResultTable
from repro.geometry.mbr import MBR

RADIUS_FACTORS = (0.5, 1.0, 2.0, 4.0)


def bench_ablation_sphere_radius(benchmark):
    def run():
        table = ResultTable(
            "Ablation: Sphere selector radius factor (paper value: 2.0)",
            ["radius_factor", "overlap", "build_seconds",
             "mean_constraints"],
        )
        points = uniform_points(scaled(150), 3, seed=103)
        box = MBR.unit_cube(3)
        for factor in RADIUS_FACTORS:
            config = BuildConfig(
                selector=SelectorKind.SPHERE,
                selector_params=SelectorParams(sphere_radius_factor=factor),
                # Small pages so the sphere query distinguishes data
                # pages even at the scaled-down database size.
                page_size=512,
            )
            with Timer() as timer:
                index = NNCellIndex.build(points, config)
            rects = [r for __, r in index.all_cell_rectangles()]
            mean_constraints = sum(
                index.constraint_system(i).n_constraints
                for i in index.active_ids
            ) / len(index)
            table.add_row(
                radius_factor=factor,
                overlap=average_overlap(rects, box),
                build_seconds=timer.seconds,
                mean_constraints=mean_constraints,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "ablation_sphere_radius")
    overlaps = table.column("overlap")
    constraints = table.column("mean_constraints")
    # Bigger radius -> more constraints -> tighter approximations.
    assert constraints == sorted(constraints)
    assert overlaps[-1] <= overlaps[0] + 1e-9


def bench_ablation_lp_backend(benchmark):
    def run():
        table = ResultTable(
            "Ablation: LP backend on the cell-approximation workload",
            ["backend", "build_seconds"],
        )
        points = uniform_points(scaled(50), 4, seed=104)
        for backend in ("auto", "simplex", "scipy"):
            config = BuildConfig(
                selector=SelectorKind.NN_DIRECTION, lp_backend=backend
            )
            with Timer() as timer:
                NNCellIndex.build(points, config)
            table.add_row(backend=backend, build_seconds=timer.seconds)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "ablation_lp_backend")
    rows = {r["backend"]: r["build_seconds"] for r in table.rows}
    # Auto must be competitive with the best single backend (2x slack for
    # timer noise on small workloads).
    assert rows["auto"] <= 2.0 * min(rows["simplex"], rows["scipy"])
