"""Figure 10 — NN-cell vs R*-tree vs X-tree over database size (d = 10).

Paper shape checked: the trees' page accesses and total time grow
clearly with N, while the NN-cell approach's candidate-scan cost grows
sub-linearly (near-logarithmically in the paper).  The absolute
crossover again belongs to paper-scale N; the *growth-rate gap* is the
scale-independent signature asserted here.
"""

from bench_common import publish, scaled

from repro.eval.experiments import figure10_size_sweep

SIZES = (150, 300, 600, 1200)


def bench_figure10_size_sweep(benchmark):
    sizes = tuple(scaled(s) for s in SIZES)
    table = benchmark.pedantic(
        lambda: figure10_size_sweep(
            sizes=sizes, dim=10, n_queries=scaled(15)
        ),
        rounds=1,
        iterations=1,
    )
    publish(table, "figure10")
    rstar_pages = table.column("rstar_pages")
    assert rstar_pages[-1] > rstar_pages[0], "R*-tree cost must grow with N"
    for col in ("nncell_total_s", "rstar_total_s", "xtree_total_s"):
        series = table.column(col)
        assert series[-1] > series[0], f"{col} must grow with N"
