"""Figure 13 — effect of decomposing the approximations.

Uses the most exact approximation algorithm (Correct), like the paper's
last experiment.  Shape checked: the decomposed approximations have
strictly lower overlap than the exact single-MBR approximations at every
dimension.
"""

from bench_common import publish, scaled

from repro.eval.experiments import figure13_decomposition

DIMS = (2, 4, 6)


def bench_figure13_decomposition(benchmark):
    table = benchmark.pedantic(
        lambda: figure13_decomposition(
            dims=DIMS, n_points=scaled(60), k_max=16
        ),
        rounds=1,
        iterations=1,
    )
    publish(table, "figure13")
    for row in table.rows:
        assert row["overlap_decomposed"] < row["overlap_exact"] + 1e-12, (
            f"decomposition failed to reduce overlap at d={row['dim']}"
        )
