"""Micro-benchmarks of the hot operations (pytest-benchmark proper).

These measure steady-state per-operation latency — the quantities the
figure benches aggregate — and guard against performance regressions in
the LP solver, the cell approximation, the solution-space point query
and the branch-and-bound baselines.
"""

import numpy as np
import pytest

from bench_common import scaled

from repro.core.approximation import approximate_cell
from repro.core.candidates import SelectorKind
from repro.core.constraints import cell_system
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.data import uniform_points
from repro.index.bulk import bulk_load
from repro.index.nnsearch import rkv_nearest
from repro.index.rstar import RStarTree
from repro.lp.interface import maximize


@pytest.fixture(scope="module")
def workload():
    n = scaled(400)
    points = uniform_points(n, 6, seed=105)
    tree = bulk_load(RStarTree(6), points, points, np.arange(n))
    index = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    queries = uniform_points(64, 6, seed=106)
    return points, tree, index, queries


def bench_lp_simplex_small(benchmark):
    rng = np.random.default_rng(107)
    a = rng.normal(size=(24, 6))
    x0 = rng.uniform(0.3, 0.7, size=6)
    b = a @ x0 + rng.uniform(0.0, 0.3, size=24)
    c = np.eye(6)[0]
    lb, ub = np.zeros(6), np.ones(6)
    benchmark(lambda: maximize(c, a, b, lb, ub, backend="simplex"))


def bench_cell_approximation(benchmark, workload):
    points, __, __, __ = workload
    n = points.shape[0]
    system = cell_system(points, 0, np.arange(n))

    benchmark(lambda: approximate_cell(system, center=points[0]))


def bench_nncell_point_query(benchmark, workload):
    __, __, index, queries = workload
    state = {"i": 0}

    def one_query():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return index.nearest(q)

    benchmark(one_query)


def bench_rkv_query(benchmark, workload):
    __, tree, __, queries = workload
    state = {"i": 0}

    def one_query():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return rkv_nearest(tree, q)

    benchmark(one_query)


def bench_rstar_insert(benchmark):
    rng = np.random.default_rng(108)
    tree = RStarTree(6)
    state = {"i": 0}

    def one_insert():
        tree.insert_point(rng.uniform(size=6), state["i"])
        state["i"] += 1

    benchmark(one_insert)


def bench_dynamic_cell_insert(benchmark):
    # Own small index: inserts touch every cell the new point's bisector
    # cuts, so the cost scales with the cell overlap of the workload.
    points = uniform_points(scaled(120, minimum=30), 4, seed=110)
    index = NNCellIndex.build(
        points, BuildConfig(selector=SelectorKind.NN_DIRECTION)
    )
    rng = np.random.default_rng(109)
    benchmark.pedantic(
        lambda: index.insert(rng.uniform(size=4)), rounds=5, iterations=1
    )
