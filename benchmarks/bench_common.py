"""Shared helpers for the figure benchmarks.

``scaled(n)`` multiplies workload sizes by the ``REPRO_BENCH_SCALE``
environment variable (default 1.0), so the same bench files serve both
the quick default run and paper-scale overnight runs:

    REPRO_BENCH_SCALE=10 pytest benchmarks/bench_figure07_09.py --benchmark-only -s
"""

import os
from pathlib import Path

from repro.eval.reporting import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 8) -> int:
    """Scale a workload size by REPRO_BENCH_SCALE."""
    return max(minimum, int(n * _SCALE))


def publish(table: ResultTable, name: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    text = table.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{name}.csv").write_text(table.to_csv() + "\n")
