"""Benchmark-suite configuration.

Makes the shared helpers importable and ensures a results directory
exists: every figure bench both prints its table and writes it to
``benchmarks/results/`` so a benchmark run leaves the paper's series on
disk.
"""

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
sys.path.insert(0, str(BENCH_DIR))

(BENCH_DIR / "results").mkdir(exist_ok=True)
