"""Ablation — decomposition design choices (ours, beyond the paper).

Sweeps the decomposition budget ``k_max`` and compares the two
obliqueness heuristics (cheap ``extent`` vs LP-based ``trial``), on both
uniform and clustered data.  Records overlap and construction time so
the quality/cost trade-off of Section 3's knobs is visible.
"""

from bench_common import publish, scaled

from repro.core.candidates import SelectorKind
from repro.core.decomposition import DecompositionConfig
from repro.core.nncell_index import BuildConfig, NNCellIndex
from repro.core.quality import average_overlap
from repro.data import clustered_points, uniform_points
from repro.eval.harness import Timer
from repro.eval.reporting import ResultTable
from repro.geometry.mbr import MBR

K_MAX_SWEEP = (1, 4, 16)
HEURISTICS = ("extent", "trial")


def _overlap_and_time(points, k_max, heuristic, strategy="grid"):
    config = BuildConfig(
        selector=SelectorKind.CORRECT,
        decompose=k_max > 1,
        decomposition=DecompositionConfig(
            k_max=k_max, heuristic=heuristic, strategy=strategy
        ),
    )
    with Timer() as timer:
        index = NNCellIndex.build(points, config)
    rects = [r for __, r in index.all_cell_rectangles()]
    box = MBR.unit_cube(points.shape[1])
    return average_overlap(rects, box), timer.seconds, len(rects)


def bench_ablation_decomposition(benchmark):
    def run():
        table = ResultTable(
            "Ablation: decomposition budget and obliqueness heuristic",
            ["dataset", "heuristic", "k_max", "overlap", "build_seconds",
             "n_rectangles"],
        )
        n = scaled(40)
        datasets = {
            "uniform-3d": uniform_points(n, 3, seed=101),
            "clustered-3d": clustered_points(n, 3, seed=102),
        }
        for name, points in datasets.items():
            for heuristic in HEURISTICS:
                for k_max in K_MAX_SWEEP:
                    overlap, seconds, n_rects = _overlap_and_time(
                        points, k_max, heuristic
                    )
                    table.add_row(
                        dataset=name,
                        heuristic=heuristic,
                        k_max=k_max,
                        overlap=overlap,
                        build_seconds=seconds,
                        n_rectangles=n_rects,
                    )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "ablation_decomposition")
    # Larger budgets monotonically reduce overlap per dataset/heuristic.
    for dataset in ("uniform-3d", "clustered-3d"):
        for heuristic in HEURISTICS:
            series = [
                r["overlap"]
                for r in table.rows
                if r["dataset"] == dataset and r["heuristic"] == heuristic
            ]
            assert series[0] >= series[-1] - 1e-9, (
                f"k_max sweep failed to reduce overlap for {dataset}/"
                f"{heuristic}"
            )


def bench_ablation_greedy_vs_grid(benchmark):
    """Grid (the paper's Definition 5) vs greedy recursive splitting at
    the same piece budget."""

    def run():
        table = ResultTable(
            "Ablation: grid (paper) vs greedy (ours) decomposition",
            ["dataset", "strategy", "k_max", "overlap", "build_seconds",
             "n_rectangles"],
        )
        n = scaled(40)
        datasets = {
            "uniform-3d": uniform_points(n, 3, seed=101),
            "clustered-3d": clustered_points(n, 3, seed=102),
        }
        for name, points in datasets.items():
            for strategy in ("grid", "greedy"):
                for k_max in (4, 8):
                    overlap, seconds, n_rects = _overlap_and_time(
                        points, k_max, "extent", strategy=strategy
                    )
                    table.add_row(
                        dataset=name,
                        strategy=strategy,
                        k_max=k_max,
                        overlap=overlap,
                        build_seconds=seconds,
                        n_rectangles=n_rects,
                    )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(table, "ablation_greedy_vs_grid")
    for dataset in ("uniform-3d", "clustered-3d"):
        for k_max in (4, 8):
            rows = {
                r["strategy"]: r for r in table.rows
                if r["dataset"] == dataset and r["k_max"] == k_max
            }
            assert rows["greedy"]["overlap"] <= (
                rows["grid"]["overlap"] * 1.05 + 1e-9
            ), f"greedy should not lose to grid on {dataset} k={k_max}"
