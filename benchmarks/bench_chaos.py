"""Tail-latency trajectory of scatter-gather mitigations, modelled clock.

What does one 10x-slow shard cost a fan-out query, and how much of that
cost does each mitigation tier buy back?  Wall-clock chaos runs answer
noisily and slowly (a stable p99 needs thousands of queries and real
sleeps), so this bench runs the **modelled clock** — the analytic
simulation in :mod:`repro.chaos.model`, deterministic for its seed and
parameterised exactly like the live policy
(:class:`~repro.shard.ResilienceConfig`) — and publishes the trajectory
as a machine-readable root-level ``BENCH_chaos.json``:

* ``none_p99_ms`` / ``none_p50_ms`` — no mitigation: the gather waits
  for every shard, so p99 *is* the slow shard's spike;
* ``timeout_p99_ms`` — per-probe timeout + exponential-backoff retries;
* ``hedge_p99_ms`` — timeout + retries + hedged duplicate probes (the
  tail-at-scale mitigation: slow-probability p becomes ~p²);
* ``partial_p99_ms`` — hedged *and* allowed to answer degraded at the
  gather deadline (the latency floor; availability traded for
  completeness);
* ``hedge_speedup_vs_none`` — the gated headline: hedged p99 must
  improve on the unmitigated p99 by **>= 3x** (asserted here and by
  ``tests/chaos/test_model.py``);
* ``partial_degraded_rate`` — fraction of modelled queries the partial
  policy answered without every shard (context, never gated).

The ``_ms`` metrics gate through ``tools/compare_bench.py`` (lower is
better); the speedup and rate are context.  Runnable both ways::

    PYTHONPATH=src pytest benchmarks/bench_chaos.py --benchmark-only -s
    PYTHONPATH=src python benchmarks/bench_chaos.py
"""

import json
from pathlib import Path

from repro.chaos import ScatterModel, simulate

try:  # direct `python benchmarks/bench_chaos.py` runs too
    from bench_common import scaled
except ImportError:  # pragma: no cover - pytest inserts benchmarks/ on path
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_common import scaled

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_chaos.json"

POLICIES = ("none", "timeout", "hedge", "partial")

#: The hedged-vs-unmitigated p99 improvement CI requires.
MIN_HEDGE_SPEEDUP = 3.0

#: The modelled workload: 4 shards, one of which spikes to 10x its
#: healthy latency on 15% of probe attempts (defaults of ScatterModel).
MODEL = ScatterModel()

SEED = 977


def measure_policies(n_queries: int) -> dict:
    """Simulate every policy on the same model; flat metrics mapping."""
    metrics_out = {}
    for policy in POLICIES:
        result = simulate(MODEL, policy, n_queries=n_queries, seed=SEED)
        summary = result.summary()
        metrics_out[f"{policy}_p50_ms"] = summary["p50_ms"]
        metrics_out[f"{policy}_p99_ms"] = summary["p99_ms"]
        metrics_out[f"{policy}_max_ms"] = summary["max_ms"]
        if policy == "partial":
            metrics_out["partial_degraded_rate"] = summary["degraded_rate"]
    metrics_out["hedge_speedup_vs_none"] = (
        metrics_out["none_p99_ms"] / metrics_out["hedge_p99_ms"]
    )
    return metrics_out


def run_bench(out_path: Path = BENCH_PATH) -> dict:
    """Simulate, assert the mitigation ordering, write the document."""
    n_queries = scaled(20_000, minimum=2_000)
    metrics_out = measure_policies(n_queries)

    document = {
        "bench": "chaos",
        "format_version": 1,
        "config": {
            "n_queries": n_queries,
            "n_shards": MODEL.n_shards,
            "slow_shards": list(MODEL.slow_shards),
            "slow_p": MODEL.slow_p,
            "slow_ms": MODEL.slow_ms,
            "timeout_ms": MODEL.timeout_ms,
            "max_retries": MODEL.max_retries,
            "hedge_after_ms": MODEL.hedge_after_ms,
            "deadline_ms": MODEL.deadline_ms,
            "seed": SEED,
        },
        "metrics": metrics_out,
    }

    speedup = metrics_out["hedge_speedup_vs_none"]
    if speedup < MIN_HEDGE_SPEEDUP:
        raise AssertionError(
            f"hedged p99 improved only {speedup:.2f}x over no mitigation"
            f" (gate: >= {MIN_HEDGE_SPEEDUP}x)"
        )
    ordering = [metrics_out[f"{p}_p99_ms"] for p in POLICIES]
    if not all(a >= b for a, b in zip(ordering, ordering[1:])):
        raise AssertionError(
            f"mitigation tiers out of order: "
            f"{dict(zip(POLICIES, ordering))}"
        )

    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def bench_chaos(benchmark):
    document = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    m = document["metrics"]
    assert m["hedge_speedup_vs_none"] >= MIN_HEDGE_SPEEDUP
    assert 0.0 <= m["partial_degraded_rate"] <= 1.0
    print(f"\n(bench document written to {BENCH_PATH})")
    for name in sorted(m):
        print(f"  {name:<28} {m[name]:.3f}")


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2, sort_keys=True))
