"""Figures 7-9 — NN-cell vs R*-tree vs X-tree over dimensionality.

One sweep produces all three figures' series: total search time
(Figure 7), speed-up over the R*-tree (Figure 8) and page accesses vs
CPU time (Figure 9).

Paper shapes checked here (those that survive the scaled-down database;
see EXPERIMENTS.md for the full discussion): every method's cost grows
with the dimensionality, and the branch-and-bound baselines degrade
toward a full scan at the high end — the [BBKK 97] effect that motivates
the paper.  The paper's total-time *crossover* in favour of the NN-cell
approach needs the paper's database scale (its N is ~100x ours relative
to pure-Python build throughput); run with REPRO_BENCH_SCALE and larger
dims to approach it.
"""

from bench_common import publish, scaled

from repro.eval.experiments import figure7_to_9_dimension_sweep

DIMS = (2, 4, 6, 8, 10)


def bench_figure07_09_dimension_sweep(benchmark):
    table = benchmark.pedantic(
        lambda: figure7_to_9_dimension_sweep(
            dims=DIMS,
            n_points=scaled(500),
            n_queries=scaled(15),
        ),
        rounds=1,
        iterations=1,
    )
    publish(table, "figure07_09")
    rstar_pages = table.column("rstar_pages")
    xtree_pages = table.column("xtree_pages")
    # Baselines degrade with dimension (monotone growth in page reads).
    assert rstar_pages[-1] > rstar_pages[0]
    assert xtree_pages[-1] > xtree_pages[0]
    # Everyone's totals grow with the dimension.
    for col in ("nncell_total_s", "rstar_total_s", "xtree_total_s"):
        series = table.column(col)
        assert series[-1] > series[0]
