"""Observability overhead: query throughput across telemetry modes.

The contract every ``repro.obs`` layer signs is *cheap when disabled* —
a hot-path event site pays one boolean check, and the acceptance bar is
< 3% query-throughput overhead with telemetry fully off.  This bench
measures the trajectory of that contract and publishes it as a
machine-readable root-level ``BENCH_obs.json``:

* ``disabled_qps`` / ``metrics_qps`` / ``metrics_events_qps`` /
  ``analytics_qps`` / ``tracing_qps`` — direct ``nearest`` throughput
  with telemetry off, with the metrics registry (plus time-series sink)
  on, with the structured event log on too, with the workload-analytics
  access recorder on top of metrics (the ``serve --analytics``
  configuration), and with span tracing recording into a tail-sampling
  :class:`~repro.obs.tracestore.TraceStore` (``serve --tracing``);
* ``overhead_metrics_pct`` / ``overhead_events_pct`` /
  ``overhead_tracing_pct`` — the same as relative slowdowns against
  ``disabled_qps``, plus ``overhead_analytics_pct`` measured against
  ``metrics_qps`` (the analytics recorder rides on an already-metered
  process).  Two numbers are *hard-gated*: ``run_bench`` raises when
  tracing overhead exceeds ``TRACING_OVERHEAD_BUDGET_PCT`` (25%) or
  analytics-over-metrics overhead exceeds
  ``ANALYTICS_OVERHEAD_BUDGET_PCT`` (10%), so both the CI bench leg
  and a local regeneration fail loudly.  The others are context;
* ``serve_wall_qps`` / ``serve_p50_ms`` / ``serve_p99_ms`` — a
  concurrent service run measured through the *new 60s windows*
  (``TimeSeries``), i.e. the numbers the live dashboard would show.

Diff two snapshots with ``python tools/compare_bench.py`` — it fails on
a >10% regression in any gated metric.  Runnable both ways::

    PYTHONPATH=src pytest benchmarks/bench_obs_overhead.py --benchmark-only -s
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

import json
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.eval.loadgen import run_service_load
from repro.obs import analytics, events, metrics, tracestore, tracing
from repro.obs.timeseries import TimeSeries
from repro.serve import ServeConfig

try:  # direct `python benchmarks/bench_obs_overhead.py` runs too
    from bench_common import scaled
except ImportError:  # pragma: no cover - pytest inserts benchmarks/ on path
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_common import scaled

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"

#: Interleaved timing rounds per mode; the fastest pass is kept
#: (loaded-box noise is one-sided, so min elapsed is the honest
#: estimator).
REPEATS = 5

#: Hard ceiling on the tracing-mode slowdown vs fully-disabled.  Spans
#: are the most expensive per-query instrumentation (object per stage,
#: two clock reads each); the tracing leg of CI fails when recording
#: them costs more than this share of direct query throughput.
TRACING_OVERHEAD_BUDGET_PCT = 25.0

#: Hard ceiling on the analytics-mode slowdown vs metrics-only.  The
#: access recorder adds one locked dict-plus-sketch update per hook, so
#: it must stay within a tenth of the already-metered throughput — the
#: promise ``serve --analytics`` makes to a production fleet.
ANALYTICS_OVERHEAD_BUDGET_PCT = 10.0


def _throughput_qps(index, queries) -> float:
    """One timed pass of direct ``nearest`` calls (queries/s)."""
    started = time.perf_counter()
    for q in queries:
        index.nearest(q)
    elapsed = time.perf_counter() - started
    return queries.shape[0] / elapsed if elapsed > 0 else 0.0


@contextmanager
def _mode_disabled():
    metrics.disable()
    events.disable()
    yield


@contextmanager
def _mode_metrics():
    with metrics.collecting(fresh=True):
        metrics.install_timeseries(TimeSeries())
        try:
            yield
        finally:
            metrics.uninstall_timeseries()


@contextmanager
def _mode_events():
    with _mode_metrics():
        with events.collecting():
            yield


@contextmanager
def _mode_analytics():
    # The `serve --analytics` configuration: metrics + windows on, and
    # the access recorder aggregating every cell/page touch.
    with _mode_metrics():
        analytics.install()
        try:
            yield
        finally:
            analytics.uninstall()


@contextmanager
def _mode_tracing():
    # The `serve --tracing` configuration: metrics + windows stay on,
    # and every span records into a tail-sampling store (events off,
    # as in the serve default).
    with _mode_metrics():
        store = tracestore.install(tracestore.TraceStore())
        tracing.enable(store)
        try:
            yield
        finally:
            tracing.disable()
            tracestore.uninstall()


_MODES = (
    ("disabled", _mode_disabled),
    ("metrics", _mode_metrics),
    ("events", _mode_events),
    ("analytics", _mode_analytics),
    ("tracing", _mode_tracing),
)


def measure_obs_overhead(index, queries) -> dict:
    """The four-mode throughput comparison as a flat metrics dict.

    Modes are interleaved round-robin — ``REPEATS`` rounds, one timed
    pass per mode per round, best pass kept — so slow machine drift
    (frequency scaling, a noisy neighbour) hits every mode about
    equally instead of penalising whichever mode happened to run last.
    """
    best = {name: 0.0 for name, __ in _MODES}
    for __ in range(REPEATS):
        for name, mode in _MODES:
            with mode():
                best[name] = max(best[name], _throughput_qps(index, queries))

    disabled_qps = best["disabled"]

    def overhead_pct(qps: float) -> float:
        if disabled_qps <= 0.0:
            return 0.0
        return 100.0 * (1.0 - qps / disabled_qps)

    metrics_qps = best["metrics"]
    analytics_over_metrics = (
        100.0 * (1.0 - best["analytics"] / metrics_qps)
        if metrics_qps > 0.0
        else 0.0
    )
    return {
        "disabled_qps": disabled_qps,
        "metrics_qps": metrics_qps,
        "metrics_events_qps": best["events"],
        "analytics_qps": best["analytics"],
        "tracing_qps": best["tracing"],
        "overhead_metrics_pct": overhead_pct(best["metrics"]),
        "overhead_events_pct": overhead_pct(best["events"]),
        "overhead_analytics_pct": analytics_over_metrics,
        "overhead_tracing_pct": overhead_pct(best["tracing"]),
    }


def measure_serve_windows(index, queries) -> dict:
    """Concurrent-serve latency as reported by the sliding windows.

    The service run is measured the way an operator would see it: the
    installed :class:`TimeSeries` aggregates ``serve.latency_ms`` into
    its 60s window, and p50/p99/QPS are read back from there.
    """
    ts = TimeSeries()
    with metrics.collecting(fresh=True):
        metrics.install_timeseries(ts)
        try:
            report = run_service_load(
                index, queries, n_threads=4,
                config=ServeConfig(max_batch_size=64, max_wait_ms=2.0),
            )
        finally:
            metrics.uninstall_timeseries()
    window = ts.window(60).get("serve.latency_ms")
    return {
        "serve_wall_qps": report.throughput_qps(),
        "serve_p50_ms": window.percentile(50) if window else 0.0,
        "serve_p99_ms": window.percentile(99) if window else 0.0,
        "serve_errors": float(report.errors),
    }


def run_bench(out_path: Path = BENCH_PATH) -> dict:
    """Build the workload, measure, and write the BENCH document."""
    dim = 6
    n_points = scaled(300)
    n_queries = scaled(400)
    index = NNCellIndex.build(uniform_points(n_points, dim, seed=271))
    queries = query_points(n_queries, dim, seed=272)

    document = {
        "bench": "obs_overhead",
        "format_version": 1,
        "config": {
            "n_points": n_points,
            "dim": dim,
            "n_queries": n_queries,
            "repeats": REPEATS,
        },
        "metrics": {
            **measure_obs_overhead(index, queries),
            **measure_serve_windows(index, queries),
        },
    }
    overhead = document["metrics"]["overhead_tracing_pct"]
    if overhead > TRACING_OVERHEAD_BUDGET_PCT:
        raise AssertionError(
            f"tracing overhead {overhead:.1f}% exceeds the"
            f" {TRACING_OVERHEAD_BUDGET_PCT:.0f}% budget"
            f" (disabled {document['metrics']['disabled_qps']:.0f} qps,"
            f" tracing {document['metrics']['tracing_qps']:.0f} qps)"
        )
    analytics_overhead = document["metrics"]["overhead_analytics_pct"]
    if analytics_overhead > ANALYTICS_OVERHEAD_BUDGET_PCT:
        raise AssertionError(
            f"analytics overhead {analytics_overhead:.1f}% over"
            f" metrics-only exceeds the"
            f" {ANALYTICS_OVERHEAD_BUDGET_PCT:.0f}% budget"
            f" (metrics {document['metrics']['metrics_qps']:.0f} qps,"
            f" analytics {document['metrics']['analytics_qps']:.0f} qps)"
        )
    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def bench_obs_overhead(benchmark):
    document = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    m = document["metrics"]
    assert m["disabled_qps"] > 0.0
    assert m["metrics_qps"] > 0.0
    assert m["tracing_qps"] > 0.0
    assert m["analytics_qps"] > 0.0
    assert m["overhead_tracing_pct"] <= TRACING_OVERHEAD_BUDGET_PCT
    assert m["overhead_analytics_pct"] <= ANALYTICS_OVERHEAD_BUDGET_PCT
    assert m["serve_errors"] == 0.0
    assert m["serve_p99_ms"] >= m["serve_p50_ms"] > 0.0
    print(f"\n(bench document written to {BENCH_PATH})")
    for name in sorted(m):
        print(f"  {name:<24} {m[name]:.3f}")


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2, sort_keys=True))
