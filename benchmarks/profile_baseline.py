"""Produce the longitudinal baseline profile of a standard workload.

Builds a fixed, seeded index and runs a fixed query workload with full
instrumentation (metrics + tracing) enabled, then writes the profile
document to ``benchmarks/results/profile_baseline.json``.  The counters
are deterministic (seeded data, simulated storage), so diffing the file
between commits shows exactly how much LP work, page traffic and
candidate scanning a change added or removed; only the span durations
vary run to run.

Usage::

    PYTHONPATH=src python benchmarks/profile_baseline.py
"""

from bench_common import RESULTS_DIR

from repro.core.nncell_index import NNCellIndex
from repro.data import query_points, uniform_points
from repro.obs import export, metrics, tracing

N_POINTS = 300
DIM = 6
N_QUERIES = 50
SEED = 1998  # the paper's year


def main() -> None:
    points = uniform_points(N_POINTS, DIM, seed=SEED)
    queries = query_points(N_QUERIES, DIM, seed=SEED + 1)
    with metrics.collecting(fresh=True) as registry:
        with tracing.collecting() as tracer:
            index = NNCellIndex.build(points)
            for q in queries:
                index.nearest(q)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "profile_baseline.json"
    document = export.write_profile(
        path,
        registry,
        tracer,
        meta={
            "workload": "uniform build + query baseline",
            "n_points": N_POINTS,
            "dim": DIM,
            "n_queries": N_QUERIES,
            "seed": SEED,
        },
    )
    counters = document["metrics"]["counters"]
    print(f"wrote {path}")
    print(f"  build.cells        {counters['build.cells']:.0f}")
    print(f"  lp.solves          {counters['lp.solves']:.0f}")
    print(f"  lp.constraint_rows {counters['lp.constraint_rows']:.0f}")
    print(f"  query.count        {counters['query.count']:.0f}")
    print(f"  root spans         {len(document['trace'])}")


if __name__ == "__main__":
    main()
