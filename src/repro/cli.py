"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main workflows for shell use:

* ``build``  — precompute a solution-space index over a dataset (a
  generated workload or a ``.npy``/``.csv`` point file) and save it;
* ``query``  — load a saved index and answer (k-)NN queries;
* ``serve``  — run the concurrent micro-batching query service over a
  saved index, speaking JSON-lines on stdin/stdout (docs/serving.md);
  ``--metrics-port`` binds a Prometheus scrape endpoint,
  ``--stats-interval`` prints a windowed dashboard line to stderr, and
  ``--events`` appends a JSONL record per sampled lifecycle;
* ``explain`` — full account of how one query is answered: the leaf
  rectangles hit, the candidate distances, tolerance retries and the
  fallback path, as text or ``--json``;
* ``info``   — print a saved index's statistics;
* ``stats``  — same statistics, plus ``--live`` metrics from a sample
  query workload run with instrumentation enabled, or ``--watch`` for a
  continuously refreshing windowed telemetry table;
* ``analyze`` — drive a captured workload (from ``serve --capture``)
  through an index with access accounting on and print the hotspot
  report: per-shard work shares, hot cells/pages, cache-hit ratio and
  a partitioner-balance verdict (exit 2 on skew; docs/analytics.md);
* ``replay`` — re-execute a captured workload and verify every answer
  is bit-identical to the capture (exit 1 on any mismatch);
* ``experiment`` — run one of the paper's figure experiments and print
  (optionally save) its table.

``build`` and ``query`` accept ``--profile PATH``: the command runs with
:mod:`repro.obs` metrics and tracing enabled and writes a profile JSON
document (counters, histograms, nested spans) to ``PATH``.

``build --workers N`` runs cell construction on ``N`` parallel workers
(``0`` = all CPU cores) — the built index is identical to a serial build.
``query --batch FILE`` answers every query point in ``FILE`` through one
batched index walk instead of one walk per query (docs/scaling.md).

Examples::

    python -m repro build --dataset uniform --n 500 --dim 6 --out idx.npz
    python -m repro build --dataset uniform --n 2000 --dim 16 \
        --selector nn-direction --workers 0 --out idx.npz
    python -m repro query idx.npz --point 0.5,0.5,0.5,0.5,0.5,0.5 -k 3
    python -m repro query idx.npz --batch queries.npy
    echo '[0.5, 0.5, 0.5, 0.5, 0.5, 0.5]' | python -m repro serve idx.npz
    python -m repro serve idx.npz --metrics-port 9100 --stats-interval 5
    python -m repro explain idx.npz --point 0.5,0.5,0.5,0.5,0.5,0.5
    python -m repro info idx.npz
    python -m repro stats idx.npz --live
    python -m repro stats idx.npz --watch --duration 10
    python -m repro analyze fleet --workload capture.jsonl --json
    python -m repro replay fleet --workload capture.jsonl --mode batch
    python -m repro build --dataset uniform --n 200 --dim 4 \
        --out idx.npz --profile build_profile.json
    python -m repro experiment figure4 --param dims=2,4 --param n_points=50
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import List, Sequence

import numpy as np

from .core.candidates import SelectorKind, SelectorParams
from .core.decomposition import DecompositionConfig
from .core.nncell_index import BuildConfig, NNCellIndex
from .core.persistence import (
    is_sharded_archive,
    load_any_index,
    save_index,
    save_sharded_index,
)
from .data.registry import dataset_names, make_dataset
from .data.synthetic import query_points
from .eval import experiments as experiments_module
from .eval.loadgen import run_service_load
from .eval.replay import replay as run_replay
from .eval.reporting import ResultTable
from .obs import analytics as obs_analytics
from .obs import export as obs_export
from .obs import metrics as obs_metrics
from .obs import workload as obs_workload
from .obs import timeseries as obs_timeseries
from .obs import tracectx as obs_tracectx
from .obs import tracestore as obs_tracestore
from .obs import tracing as obs_tracing
from .serve import (
    QueryService,
    ServeConfig,
    ServeError,
    TelemetryConfig,
    TelemetrySession,
)
from .shard import PARTITIONER_KINDS, ShardConfig, ShardedNNCellIndex

__all__ = ["main"]

_EXPERIMENTS = {
    "figure2": experiments_module.figure2_cell_gallery,
    "figure4": experiments_module.figure4_selector_tradeoff,
    "figure5": experiments_module.figure5_quality_performance,
    "figure7-9": experiments_module.figure7_to_9_dimension_sweep,
    "figure10": experiments_module.figure10_size_sweep,
    "figure11-12": experiments_module.figure11_12_fourier,
    "figure13": experiments_module.figure13_decomposition,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point: parse ``argv`` and run the selected command."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Voronoi NN-cell nearest-neighbor search (ICDE 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="precompute and save an index")
    source = build.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", choices=dataset_names(),
        help="generate a synthetic workload",
    )
    source.add_argument(
        "--points", type=Path,
        help=".npy or .csv file with one point per row (unit-cube data)",
    )
    build.add_argument("--n", type=int, default=500,
                       help="points to generate (with --dataset)")
    build.add_argument("--dim", type=int, default=8,
                       help="dimensionality (with --dataset)")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--selector",
        choices=[k.value for k in SelectorKind],
        default=SelectorKind.SPHERE.value,
    )
    build.add_argument("--sphere-radius-factor", type=float, default=2.0)
    build.add_argument("--decompose", action="store_true",
                       help="decompose cells (Section 3)")
    build.add_argument("--k-max", type=int, default=100,
                       help="decomposition budget")
    build.add_argument("--workers", type=int, default=1,
                       help="parallel cell-construction workers"
                            " (0 = all CPU cores; see docs/scaling.md)")
    build.add_argument("--executor", choices=["process", "thread"],
                       default="process",
                       help="worker pool kind for --workers > 1")
    build.add_argument("--shards", type=int, default=0,
                       help="partition the index across N shards"
                            " (0 = unsharded; see docs/sharding.md)")
    build.add_argument("--partitioner", choices=list(PARTITIONER_KINDS),
                       default="hash",
                       help="point-to-shard routing policy (with --shards)")
    build.add_argument("--out", type=Path, required=True,
                       help="output .npz archive (a directory with"
                            " --shards)")
    _add_profile_argument(build)
    build.set_defaults(handler=_cmd_build)

    query = sub.add_parser("query", help="query a saved index")
    query.add_argument("index", type=Path)
    what = query.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--point",
        help="comma-separated query coordinates",
    )
    what.add_argument(
        "--batch", type=Path, metavar="FILE",
        help=".npy or .csv file of query points, answered in one"
             " batched index walk",
    )
    query.add_argument("-k", type=int, default=1,
                       help="number of neighbors (with --point)")
    query.add_argument("--batch-size", type=int, default=None,
                       help="queries per batched walk (with --batch;"
                            " default: the whole file at once)")
    _add_profile_argument(query)
    query.set_defaults(handler=_cmd_query)

    serve = sub.add_parser(
        "serve",
        help="micro-batching query service over a saved index"
             " (JSON lines on stdin/stdout)",
    )
    serve.add_argument("index", type=Path)
    serve.add_argument("--shards", type=int, default=0,
                       help="re-shard an unsharded archive across N"
                            " shards at startup (sharded archives load"
                            " with their built shard count)")
    serve.add_argument("--max-batch-size", type=int, default=32,
                       help="most queries one flush may coalesce")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="longest a queued query waits for the batch"
                            " to fill before flushing anyway")
    serve.add_argument("--queue-depth", type=int, default=1024,
                       help="admission-control bound on pending queries"
                            " (0 = unbounded)")
    serve.add_argument("--admission", choices=["reject", "block"],
                       default="reject",
                       help="what a submission hitting a full queue does")
    serve.add_argument("--timeout-ms", type=float, default=None,
                       help="default per-request deadline")
    serve.add_argument("--shard-timeout-ms", type=float, default=None,
                       metavar="MS",
                       help="per-shard probe timeout; a timed-out probe"
                            " retries with exponential backoff"
                            " (sharded index; docs/resilience.md)")
    serve.add_argument("--shard-retries", type=int, default=2,
                       metavar="N",
                       help="probe attempts after the first, per shard"
                            " (with a resilience flag)")
    serve.add_argument("--hedge-after-ms", type=float, default=None,
                       metavar="MS",
                       help="launch a duplicate probe this long into an"
                            " unanswered attempt; first answer wins"
                            " (sharded index)")
    serve.add_argument("--allow-partial", action="store_true",
                       help="answer from the surviving shards when some"
                            " fail permanently, marking the response"
                            " degraded with its failed_shards, instead"
                            " of failing the query")
    serve.add_argument("--stats", action="store_true",
                       help="print serving statistics to stderr at EOF")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="bind a Prometheus scrape endpoint on this"
                            " port (0 = ephemeral; the bound port is"
                            " announced on stderr)")
    serve.add_argument("--stats-interval", type=float, default=0.0,
                       metavar="SECONDS",
                       help="print a windowed dashboard line (QPS,"
                            " p50/p99, queue depth, fallback %%) to"
                            " stderr every N seconds")
    serve.add_argument("--events", type=Path, default=None, metavar="PATH",
                       help="append one JSONL record per sampled"
                            " query/flush lifecycle to PATH")
    serve.add_argument("--events-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="event sampling rate in [0, 1]"
                            " (with --events)")
    serve.add_argument("--tracing", action="store_true",
                       help="record request traces into a tail-sampled"
                            " store (slowest + degraded requests;"
                            " resolve ids via GET /trace/<id>)")
    serve.add_argument("--slo", action="store_true",
                       help="run the SLO burn-rate watchdog (alert state"
                            " on /telemetry, 503 /healthz while paging)")
    serve.add_argument("--slo-degrade", action="store_true",
                       help="let a paging SLO shed the micro-batching"
                            " delay (QueryService degraded mode)")
    serve.add_argument("--analytics", action="store_true",
                       help="record cell/page access heatmaps and"
                            " per-shard load shares; the skew report is"
                            " served at GET /analytics (docs/analytics.md)")
    serve.add_argument("--capture", type=Path, default=None, metavar="PATH",
                       help="append served queries and their answers to a"
                            " replayable workload log (JSONL;"
                            " see 'repro replay')")
    serve.add_argument("--capture-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="workload capture sampling rate in (0, 1]"
                            " (with --capture)")
    serve.set_defaults(handler=_cmd_serve)

    analyze = sub.add_parser(
        "analyze",
        help="drive a captured workload through an index with access"
             " accounting on and print the hotspot/skew report"
             " (per-shard load shares, Gini, hot cells/pages,"
             " partitioner-balance verdict; docs/analytics.md)",
    )
    analyze.add_argument("index", type=Path)
    analyze.add_argument("--workload", type=Path, required=True,
                         metavar="PATH",
                         help="captured workload (JSONL or NPZ; from"
                              " 'serve --capture' or save_workload_npz)")
    analyze.add_argument("--shards", type=int, default=0,
                         help="re-shard an unsharded archive across N"
                              " shards before analyzing")
    analyze.add_argument("--mode", choices=["serial", "batch"],
                         default="serial",
                         help="how to re-execute the workload")
    analyze.add_argument("--top", type=int, default=10,
                         help="hot cells/pages listed in the report")
    analyze.add_argument("--json", action="store_true",
                         help="emit the raw analytics report document")
    analyze.set_defaults(handler=_cmd_analyze)

    replay = sub.add_parser(
        "replay",
        help="re-execute a captured workload against an index and verify"
             " bit parity of every answer (A/B re-sharding, rebuilds,"
             " cache sizing; docs/analytics.md)",
    )
    replay.add_argument("index", type=Path)
    replay.add_argument("--workload", type=Path, required=True,
                        metavar="PATH",
                        help="captured workload (JSONL or NPZ)")
    replay.add_argument("--shards", type=int, default=0,
                        help="re-shard an unsharded archive across N"
                             " shards before replaying")
    replay.add_argument("--mode", choices=["serial", "batch"],
                        default="serial",
                        help="one query at a time, or batched walks")
    replay.add_argument("--batch-size", type=int, default=None,
                        metavar="N",
                        help="bound on queries per batched walk"
                             " (--mode batch)")
    replay.add_argument("--json", action="store_true",
                        help="emit the replay report as JSON")
    replay.set_defaults(handler=_cmd_replay)

    chaos = sub.add_parser(
        "chaos",
        help="run a reproducible failure drill against a sharded index:"
             " inject faults, serve a concurrent workload, verify every"
             " answer is bit-exact or explicitly degraded"
             " (docs/resilience.md)",
    )
    chaos.add_argument("index", type=Path)
    chaos.add_argument("--shards", type=int, default=0,
                       help="re-shard an unsharded archive across N"
                            " shards for the drill")
    chaos.add_argument("--queries", type=int, default=200,
                       help="concurrent workload size")
    chaos.add_argument("--threads", type=int, default=4,
                       help="concurrent client threads")
    chaos.add_argument("--seed", type=int, default=0,
                       help="workload and fault-plan seed")
    chaos.add_argument("--slow-shard", type=int, action="append",
                       default=None, metavar="S",
                       help="afflict shard S with latency spikes"
                            " (repeatable)")
    chaos.add_argument("--slow-p", type=float, default=1.0,
                       help="per-attempt spike probability on slow shards")
    chaos.add_argument("--slow-ms", type=float, default=20.0,
                       help="injected latency of one spike")
    chaos.add_argument("--fail-shard", type=int, action="append",
                       default=None, metavar="S",
                       help="afflict shard S with raised probe faults"
                            " (repeatable)")
    chaos.add_argument("--fail-p", type=float, default=1.0,
                       help="per-attempt fault probability on failing"
                            " shards")
    chaos.add_argument("--flaky-p", type=float, default=0.0,
                       help="per-read flaky-page probability (storage"
                            " layer, all shards)")
    chaos.add_argument("--shard-timeout-ms", type=float, default=None,
                       metavar="MS",
                       help="resilience under test: per-probe timeout")
    chaos.add_argument("--shard-retries", type=int, default=2,
                       metavar="N",
                       help="resilience under test: retries per shard")
    chaos.add_argument("--hedge-after-ms", type=float, default=None,
                       metavar="MS",
                       help="resilience under test: hedge delay")
    chaos.add_argument("--allow-partial", action="store_true",
                       help="resilience under test: degraded partial"
                            " answers instead of failed queries")
    chaos.add_argument("--json", action="store_true",
                       help="emit the drill report as JSON")
    chaos.set_defaults(handler=_cmd_chaos)

    explain = sub.add_parser(
        "explain",
        help="full account of how one query is answered"
             " (rectangles hit, candidates, retries, fallback path)",
    )
    explain.add_argument("index", type=Path)
    explain.add_argument("--point", required=True,
                         help="comma-separated query coordinates")
    explain.add_argument("--json", action="store_true",
                         help="emit the raw QueryExplain document")
    explain.set_defaults(handler=_cmd_explain)

    info = sub.add_parser("info", help="statistics of a saved index")
    info.add_argument("index", type=Path)
    info.set_defaults(handler=_cmd_info)

    stats = sub.add_parser(
        "stats", help="index statistics and (optionally) live metrics"
    )
    stats.add_argument("index", type=Path)
    stats.add_argument(
        "--live", action="store_true",
        help="run a sample workload with instrumentation enabled and"
             " print the collected metrics",
    )
    stats.add_argument(
        "--watch", action="store_true",
        help="run the sample workload continuously and refresh a"
             " windowed telemetry table (QPS, p50/p99) in place",
    )
    stats.add_argument("--queries", type=int, default=20,
                       help="workload size for --live / --watch")
    stats.add_argument("--seed", type=int, default=0,
                       help="workload seed for --live / --watch")
    stats.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh period for --watch")
    stats.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="stop --watch after this long"
                            " (default: until interrupted)")
    stats.set_defaults(handler=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="run a traced sample workload through the query service and"
             " inspect the tail: slowest requests, per-stage critical"
             " path, Chrome trace export",
    )
    trace.add_argument("index", type=Path)
    trace.add_argument("action", choices=["top", "show", "export"],
                       help="top: slowest-request table with stage"
                            " attribution; show: one trace's span tree +"
                            " critical path; export: Chrome trace-event"
                            " JSON (load in Perfetto)")
    trace.add_argument("--queries", type=int, default=200,
                       help="workload size driven through the service")
    trace.add_argument("--seed", type=int, default=0,
                       help="workload seed")
    trace.add_argument("--threads", type=int, default=4,
                       help="concurrent client threads")
    trace.add_argument("--limit", type=int, default=10,
                       help="rows in the top table")
    trace.add_argument("--trace-id", default=None, metavar="ID",
                       help="trace to show (default: the slowest"
                            " request)")
    trace.add_argument("--out", type=Path, default=None, metavar="PATH",
                       help="write the Chrome trace JSON here (export;"
                            " default: stdout)")
    trace.set_defaults(handler=_cmd_trace)

    experiment = sub.add_parser(
        "experiment", help="run a paper experiment and print its table"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="experiment keyword (int, float, or comma list of ints)",
    )
    experiment.add_argument("--csv", type=Path,
                            help="also write the table as CSV")
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------

def _add_profile_argument(subparser: argparse.ArgumentParser) -> None:
    """The shared ``--profile PATH`` option of build and query."""
    subparser.add_argument("--profile", type=Path, metavar="PATH",
                           help="write a metrics+trace profile JSON")


def _require_parent_dir(path: Path, what: str) -> None:
    """Fail before the expensive build/query, not after, when an output
    path cannot possibly be written."""
    parent = path.parent
    if not parent.is_dir():
        raise OSError(f"{what} directory {parent} does not exist")


@contextmanager
def _profiled(path: "Path | None", **meta):
    """Run a block under metrics + tracing; write profile JSON to ``path``.

    A no-op (instrumentation stays off) when ``path`` is ``None``.
    """
    if path is None:
        yield
        return
    _require_parent_dir(path, "profile")
    with obs_metrics.collecting(fresh=True) as registry:
        with obs_tracing.collecting() as tracer:
            yield
    obs_export.write_profile(path, registry, tracer, meta=meta)
    print(f"(profile written to {path})")


def _print_stats(stats: dict, title: str) -> None:
    """Render index statistics through the shared exporter table."""
    print(obs_export.stats_table(stats, title).render())


def _cmd_build(args: argparse.Namespace) -> int:
    _require_parent_dir(args.out, "output")
    if args.dataset:
        points = make_dataset(
            args.dataset, **_dataset_params(args)
        )
    else:
        points = _load_points(args.points)
    config = BuildConfig(
        selector=SelectorKind(args.selector),
        selector_params=SelectorParams(
            sphere_radius_factor=args.sphere_radius_factor
        ),
        decompose=args.decompose,
        decomposition=DecompositionConfig(k_max=args.k_max),
        workers=args.workers,
        executor=args.executor,
    )
    if args.shards < 0:
        raise ValueError("--shards must be >= 0 (0 means unsharded)")
    with _profiled(args.profile, command="build",
                   selector=args.selector,
                   workers=args.workers,
                   shards=args.shards,
                   n_points=int(points.shape[0]),
                   dim=int(points.shape[1])):
        if args.shards:
            index = ShardedNNCellIndex.build(
                points,
                ShardConfig(
                    n_shards=args.shards, partitioner=args.partitioner
                ),
                config,
            )
        else:
            index = NNCellIndex.build(points, config)
    if args.shards:
        save_sharded_index(index, args.out)
    else:
        save_index(index, args.out)
    stats = index.stats()
    print(
        f"built index over {int(stats['n_points'])} points "
        f"({int(stats['n_rectangles'])} rectangles) -> {args.out}"
    )
    if args.shards:
        sizes = ", ".join(str(s) for s in index.shard_sizes())
        print(f"shards ({args.partitioner} partitioner): [{sizes}]")
    _print_stats(stats, "Build statistics")
    return 0


def _dataset_params(args: argparse.Namespace) -> dict:
    if args.dataset == "grid":
        per_axis = max(2, int(round(args.n ** (1.0 / args.dim))))
        return {"per_axis": per_axis, "dim": args.dim}
    return {"n": args.n, "dim": args.dim, "seed": args.seed}


def _load_points(path: Path) -> np.ndarray:
    if not path.exists():
        raise OSError(f"point file {path} does not exist")
    if path.suffix == ".npy":
        return np.load(path)
    return np.loadtxt(path, delimiter=",", ndmin=2)


def _cmd_query(args: argparse.Namespace) -> int:
    index = load_any_index(args.index)
    if args.batch is not None:
        return _query_batch_file(args, index)
    point = _parse_point(args.point, index.dim)
    with _profiled(args.profile, command="query", k=args.k,
                   dim=index.dim):
        if args.k == 1:
            pid, dist, info = index.nearest(point)
            ids: "List[int]" = [pid]
            dists = [dist]
        else:
            ids, dists, info = index.k_nearest(point, args.k)
    for rank, (pid, dist) in enumerate(zip(ids, dists), start=1):
        coords = ", ".join(f"{c:.4f}" for c in index.points[pid])
        print(f"#{rank}  point {pid}  distance {dist:.6f}  [{coords}]")
    print(
        f"candidates: {info.n_candidates}, pages: {info.pages}, "
        f"fallback: {info.fallback}"
    )
    return 0


#: --batch prints every answer up to this many queries, then summarises.
_BATCH_PRINT_LIMIT = 20


def _query_batch_file(args: argparse.Namespace, index) -> int:
    if args.k != 1:
        raise ValueError("--batch answers 1-NN queries; -k must be 1")
    queries = _load_points(args.batch)
    if queries.ndim != 2 or queries.shape[1] != index.dim:
        raise ValueError(
            f"batch file must hold (m, {index.dim}) points, "
            f"got shape {queries.shape}"
        )
    with _profiled(args.profile, command="query-batch",
                   n_queries=int(queries.shape[0]), dim=index.dim):
        ids, dists, info = index.query_batch(
            queries, batch_size=args.batch_size
        )
    shown = min(len(ids), _BATCH_PRINT_LIMIT)
    for i in range(shown):
        print(f"query {i}  ->  point {ids[i]}  distance {dists[i]:.6f}")
    if shown < len(ids):
        print(f"... ({len(ids) - shown} more)")
    print(
        f"batch: {info.n_queries} queries, pages: {info.pages}, "
        f"candidates: {info.n_candidates}, fallbacks: {info.fallbacks}"
    )
    return 0


# ----------------------------------------------------------------------
# serve: JSON-lines request loop
# ----------------------------------------------------------------------
#
# Request per line: a bare coordinate array ``[0.5, 0.5]`` or an object
# ``{"point": [...], "id": ..., "timeout_ms": ..., "explain": true}``.
# Response per line (in input order): ``{"ok": true, "point_id": ...,
# "distance": ..., "source": ..., "id": ...}`` or ``{"ok": false,
# "error": <code>, "message": ...}``; with ``"explain": true`` the ok
# response additionally carries the full ``QueryExplain`` document under
# ``"explain"``.  Responses stream as soon as the head of the pipeline
# completes, so batching shows through without reordering.

def _parse_serve_request(line: str, dim: int):
    """``(point, request_id, timeout_ms, explain)`` from one JSONL line.

    Parse errors are raised as :class:`ValueError` with a ``request_id``
    attribute (when the request carried one), so the error response can
    still be correlated with the request that caused it.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as err:
        raise ValueError(f"bad JSON: {err}") from None
    request_id = None
    timeout_ms = None
    explain = False
    if isinstance(payload, dict):
        request_id = payload.get("id")
        timeout_ms = payload.get("timeout_ms")
        explain = bool(payload.get("explain", False))
        payload = payload.get("point")

    def bail(message: str) -> "ValueError":
        err = ValueError(message)
        err.request_id = request_id
        return err

    if not isinstance(payload, list) or len(payload) != dim:
        raise bail(f"point must be a {dim}-element array")
    try:
        point = [float(v) for v in payload]
    except (TypeError, ValueError):
        raise bail("point coordinates must be numbers") from None
    return point, request_id, timeout_ms, explain


def _serve_response(pending, request_id, explain_point, index) -> dict:
    """Resolve one pending request into a JSON-serialisable response.

    ``explain_point`` is the request's point when it asked for an
    explanation, else ``None``; the explain traversal runs here, after
    the answer, so it never slows the micro-batched path for requests
    that did not opt in.
    """
    try:
        result = pending.result()
        response = {
            "ok": True,
            "point_id": result.point_id,
            "distance": result.distance,
            "source": result.source,
            "trace_id": result.trace_id,
        }
        if result.degraded:
            # Degradation is always explicit: the flag, the casualty
            # list, and the surviving-shard count travel with the
            # answer (docs/resilience.md).
            response["degraded"] = True
            response["failed_shards"] = [
                int(s) for s in result.failed_shards
            ]
            response["shards_answered"] = result.shards_answered
        if explain_point is not None:
            response["explain"] = index.explain(explain_point).as_dict()
    except ServeError as err:
        response = {"ok": False, "error": err.code, "message": str(err)}
        # Failed requests are the ones worth looking up afterwards:
        # echo the trace id so the client can hit /trace/<id> or grep
        # the event log.
        if getattr(err, "trace_id", ""):
            response["trace_id"] = err.trace_id
    if request_id is not None:
        response["id"] = request_id
    return response


def _resolve_entry(entry, index) -> dict:
    """One pipeline entry — already-decided dict or pending — resolved."""
    head, head_id, explain_point = entry
    if isinstance(head, dict):
        return head
    return _serve_response(head, head_id, explain_point, index)


def _serve_telemetry(args: argparse.Namespace) -> "TelemetrySession | None":
    """A :class:`TelemetrySession` when any serve telemetry flag is set."""
    config = TelemetryConfig(
        metrics_port=args.metrics_port,
        stats_interval_s=args.stats_interval,
        events_path=str(args.events) if args.events is not None else None,
        events_sample=args.events_sample,
        tracing=args.tracing,
        slo=args.slo or args.slo_degrade,
        slo_degrade=args.slo_degrade,
        analytics=args.analytics,
        capture_path=(
            str(args.capture) if args.capture is not None else None
        ),
        capture_sample=args.capture_sample,
    )
    if not config.active:
        return None
    if args.events is not None:
        _require_parent_dir(args.events, "events")
    if args.capture is not None:
        _require_parent_dir(args.capture, "capture")
    session = TelemetrySession(config)
    if session.port is not None:
        print(
            f"metrics endpoint: http://{config.metrics_host}:"
            f"{session.port}/metrics",
            file=sys.stderr, flush=True,
        )
    return session


def _cmd_serve(args: argparse.Namespace) -> int:
    index = load_any_index(args.index)
    if args.shards:
        if isinstance(index, ShardedNNCellIndex):
            if index.n_shards != args.shards:
                raise ValueError(
                    f"archive is sharded {index.n_shards} ways; --shards"
                    f" {args.shards} conflicts (omit --shards to serve a"
                    " sharded archive as built)"
                )
        else:
            # Re-shard in memory: partition the live points and rebuild
            # per-shard solution spaces.  Ids compact to the live order.
            index = ShardedNNCellIndex.from_index(
                index, ShardConfig(n_shards=args.shards)
            )
    resilience = _resilience_from_args(args)
    if resilience is not None:
        if not isinstance(index, ShardedNNCellIndex):
            raise ValueError(
                "--shard-timeout-ms/--hedge-after-ms/--allow-partial"
                " need a sharded index (serve a sharded archive or pass"
                " --shards N)"
            )
        index.set_resilience(resilience)
    config = ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue_depth=args.queue_depth or None,
        admission=args.admission,
        default_timeout_ms=args.timeout_ms,
    )
    print(
        f"serving {args.index} (n={len(index)}, d={index.dim}); "
        "one JSON request per line on stdin",
        file=sys.stderr,
    )
    telemetry = _serve_telemetry(args)
    # Entries: (pending | response dict, request id, explain point).
    pipeline: "deque" = deque()
    try:
        with QueryService(index, config) as service:
            if telemetry is not None:
                telemetry.set_degrade_target(service)
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                request_id = None
                try:
                    point, request_id, timeout_ms, explain = (
                        _parse_serve_request(line, index.dim)
                    )
                    pipeline.append((
                        service.submit_async(point, timeout_ms=timeout_ms),
                        request_id,
                        point if explain else None,
                    ))
                except (ValueError, ServeError) as err:
                    code = (
                        err.code if isinstance(err, ServeError)
                        else "bad_request"
                    )
                    request_id = getattr(err, "request_id", request_id)
                    response = {
                        "ok": False, "error": code, "message": str(err),
                    }
                    if request_id is not None:
                        response["id"] = request_id
                    pipeline.append((response, None, None))
                # Stream every response that is already decided,
                # preserving input order (the head may still be in
                # flight).
                while pipeline and (
                    isinstance(pipeline[0][0], dict) or pipeline[0][0].done()
                ):
                    print(
                        json.dumps(_resolve_entry(pipeline.popleft(), index)),
                        flush=True,
                    )
            while pipeline:
                print(
                    json.dumps(_resolve_entry(pipeline.popleft(), index)),
                    flush=True,
                )
            stats = service.stats()
        if args.stats:
            print(
                obs_export.stats_table(stats, "Serving statistics").render(),
                file=sys.stderr,
            )
            if telemetry is not None:
                print(
                    obs_timeseries.telemetry_table(
                        telemetry.timeseries
                    ).render(),
                    file=sys.stderr,
                )
    finally:
        if telemetry is not None:
            telemetry.close()
    return 0


def _resilience_from_args(args: argparse.Namespace):
    """A :class:`ResilienceConfig` when any resilience flag is set.

    Shared by ``serve`` and ``chaos``; ``None`` (all flags at their
    defaults) keeps the original wait-for-everything scatter.
    """
    from .shard import ResilienceConfig

    if (
        args.shard_timeout_ms is None
        and args.hedge_after_ms is None
        and not args.allow_partial
    ):
        return None
    return ResilienceConfig(
        probe_timeout_ms=args.shard_timeout_ms,
        max_retries=args.shard_retries,
        hedge_after_ms=args.hedge_after_ms,
        allow_partial=args.allow_partial,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    """``chaos``: one reproducible failure drill, verdict on stdout.

    Builds the fault plan from the flags, installs the resilience policy
    under test, drives a concurrent workload through a
    :class:`QueryService` over the faulted fleet, and verifies the
    resilience contract on every response (bit-exact or explicitly
    degraded — never silently wrong).  Exit status 0 iff the contract
    held.
    """
    from dataclasses import replace as dc_replace

    from .chaos import FaultPlan, PageFaults, ShardFaults, run_drill

    index = load_any_index(args.index)
    if not isinstance(index, ShardedNNCellIndex):
        if args.shards < 2:
            raise ValueError(
                "chaos drills need a sharded index: serve a sharded"
                " archive or pass --shards N (N >= 2)"
            )
        index = ShardedNNCellIndex.from_index(
            index, ShardConfig(n_shards=args.shards)
        )
    elif args.shards and index.n_shards != args.shards:
        raise ValueError(
            f"archive is sharded {index.n_shards} ways; --shards"
            f" {args.shards} conflicts"
        )
    shard_faults: dict = {}
    for s in args.slow_shard or ():
        shard_faults[s] = ShardFaults(
            slow_p=args.slow_p, slow_ms=args.slow_ms
        )
    for s in args.fail_shard or ():
        base = shard_faults.get(s, ShardFaults())
        shard_faults[s] = dc_replace(base, fail_p=args.fail_p)
    plan = FaultPlan(
        shards=shard_faults,
        pages=PageFaults(flaky_p=args.flaky_p),
        seed=args.seed,
    )
    resilience = _resilience_from_args(args)
    if resilience is not None:
        index.set_resilience(resilience)
    try:
        report = run_drill(
            index,
            plan,
            n_queries=args.queries,
            n_threads=args.threads,
            seed=args.seed,
        )
    finally:
        index.close()
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.passed else 1
    verdict = "PASSED" if report.passed else "FAILED"
    print(
        f"chaos drill: {verdict}  ({report.n_queries} queries,"
        f" {report.n_threads} threads, seed {args.seed})"
    )
    outcomes = ", ".join(
        f"{key}={count}" for key, count in sorted(report.outcomes.items())
    )
    print(f"outcomes:  {outcomes or 'none'}")
    injected = ", ".join(
        f"{key}={count}"
        for key, count in sorted(report.injected.items())
        if "." not in key
    )
    print(f"injected:  {injected or 'none'}")
    counters = ", ".join(
        f"{name}={int(value)}"
        for name, value in sorted(report.counters.items())
    )
    print(f"observed:  {counters or 'none'}")
    if report.faulted_shards:
        shards = ", ".join(str(s) for s in report.faulted_shards)
        print(f"degraded answers named shards: [{shards}]")
    if not report.passed:
        print(
            f"CONTRACT VIOLATIONS: {report.mismatches} silent wrong"
            f" answers, {report.unaccounted_degraded} unaccounted"
            f" degraded, {report.untyped_errors} untyped errors"
        )
    return 0 if report.passed else 1


def _parse_point(text: str, dim: int) -> np.ndarray:
    try:
        values = [float(v) for v in text.split(",")]
    except ValueError:
        raise ValueError(f"could not parse point {text!r}") from None
    if len(values) != dim:
        raise ValueError(
            f"query has {len(values)} coordinates; the index is {dim}-d"
        )
    return np.asarray(values)


#: explain prints every rectangle/candidate up to this many, then elides.
_EXPLAIN_PRINT_LIMIT = 10


def _maybe_reshard(index, n_shards: int):
    """Honour a ``--shards N`` request against a loaded archive."""
    if not n_shards:
        return index
    if isinstance(index, ShardedNNCellIndex):
        if index.n_shards != n_shards:
            raise ValueError(
                f"archive is sharded {index.n_shards} ways; --shards"
                f" {n_shards} conflicts (omit --shards to keep the"
                " built shard count)"
            )
        return index
    return ShardedNNCellIndex.from_index(
        index, ShardConfig(n_shards=n_shards)
    )


def _print_analytics_report(report: dict, top: int) -> None:
    """Human rendering of an :meth:`AccessRecorder.report` document."""
    shards = report.get("shards", {})
    if shards:
        print(f"shard load ({report['total_probes']} probes,"
              f" gini={report['gini']:.3f}):")
        for shard in sorted(shards, key=int):
            row = shards[shard]
            bar = "#" * int(round(40 * row["load_share"]))
            ratio = row["cache_hit_ratio"]
            hit = "n/a" if ratio is None else f"{ratio:.1%}"
            print(
                f"  shard {shard:>3}: {row['load_share']:6.1%}"
                f"  pages={row['pages']:<6d}"
                f" cache_hit={hit}  {bar}"
            )
    verdict = report["verdict"]
    if verdict["balanced"]:
        print("verdict: balanced — no shard exceeds its fair share")
    else:
        hot = ", ".join(str(s) for s in verdict["hot_shards"])
        print(f"verdict: SKEWED — hot shard(s): {hot}")
    print(f"  {verdict['advice']}")
    for kind in ("hot_cells", "hot_pages"):
        sketch = report[kind]
        rows = sketch["top"][:top]
        if not rows:
            continue
        label = kind.replace("_", " ")
        print(f"{label} (decayed counts; tracking"
              f" {sketch['tracked']}/{sketch['capacity']} keys):")
        for row in rows:
            print(f"  {label[4:-1]} {row['key']:>8}: {row['count']:.0f}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    """``analyze``: re-run a captured workload with access accounting on.

    Exit status 0 when the partitioner verdict is *balanced*, 2 when the
    report names hot shards — scriptable skew detection.
    """
    captured = obs_workload.load_workload(args.workload)
    index = _maybe_reshard(load_any_index(args.index), args.shards)
    with obs_analytics.recording() as recorder:
        run_replay(index, captured, mode=args.mode)
        report = recorder.report(top_k=args.top)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"analyzed {len(captured)} captured queries"
            f" against {args.index}"
        )
        _print_analytics_report(report, args.top)
    return 0 if report["verdict"]["balanced"] else 2


def _cmd_replay(args: argparse.Namespace) -> int:
    """``replay``: bit-parity verdict of a capture vs. an index.

    Exit status 0 iff every replayed answer matched the capture.
    """
    captured = obs_workload.load_workload(args.workload)
    index = _maybe_reshard(load_any_index(args.index), args.shards)
    report = run_replay(
        index, captured, mode=args.mode, batch_size=args.batch_size
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.bit_identical else 1
    print(
        f"replayed {report.n_queries} queries ({report.mode}) in"
        f" {report.wall_seconds:.3f}s ({report.throughput_qps():.0f}"
        f" qps): {report.pages} pages"
        f" (captured: {report.captured_pages})"
    )
    if report.bit_identical:
        print("parity: bit-identical — every id and distance matched")
        return 0
    print(f"parity: {len(report.mismatches)} MISMATCHES")
    for mismatch in report.mismatches[:10]:
        print(
            f"  query {mismatch.index}: expected"
            f" ({mismatch.expected_id}, {mismatch.expected_distance!r})"
            f" got ({mismatch.got_id}, {mismatch.got_distance!r})"
        )
    return 1


def _cmd_explain(args: argparse.Namespace) -> int:
    index = load_any_index(args.index)
    point = _parse_point(args.point, index.dim)
    # Explain is a one-request workflow: mint and bind a trace id so any
    # span/event the traversal records is attributed, and echo the id so
    # the output joins against the event log / trace store.
    trace_id = obs_tracectx.new_trace_id()
    with obs_tracectx.bind(trace_id):
        result = index.explain(point)
    if args.json:
        document = result.as_dict()
        document["trace_id"] = trace_id
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    coords = ", ".join(f"{c:.4f}" for c in result.query)
    print(f"query: [{coords}]")
    print(f"trace: {trace_id}")
    retry = "  (after tolerance retry)" if result.retried_atol else ""
    print(f"path:  {result.path}{retry}")
    print(f"atol:  {result.atol:g}")
    print(
        f"answer: point {result.nearest_id}"
        f"  distance {result.nearest_distance:.6f}"
    )
    print(
        f"cost:  {result.pages} pages, "
        f"{result.nodes_visited} index nodes visited"
    )
    if not result.candidates:
        print("no cell candidates: branch-and-bound fallback answered")
        return 0
    print(f"leaf rectangles containing the query: {len(result.rectangles)}")
    print(f"candidates ({len(result.candidates)}, nearest first):")
    for pid, dist in result.candidates[:_EXPLAIN_PRINT_LIMIT]:
        marker = "  <- answer" if pid == result.nearest_id else ""
        print(f"  point {pid:>6}  distance {dist:.6f}{marker}")
    if len(result.candidates) > _EXPLAIN_PRINT_LIMIT:
        print(f"  ... ({len(result.candidates) - _EXPLAIN_PRINT_LIMIT} more)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    index = load_any_index(args.index)
    print(f"index: {args.index}")
    print(f"  selector:       {index.config.selector.value}")
    print(f"  decomposed:     {index.config.decompose}")
    print(f"  dimensionality: {index.dim}")
    if is_sharded_archive(args.index):
        sizes = ", ".join(str(s) for s in index.shard_sizes())
        print(
            f"  sharding:       {index.n_shards} shards"
            f" ({index.shard_config.partitioner} partitioner),"
            f" sizes [{sizes}]"
        )
    _print_stats(index.stats(), "Statistics")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    index = load_any_index(args.index)
    _print_stats(index.stats(), f"Index statistics: {args.index}")
    if args.watch:
        return _stats_watch(args, index)
    if args.live:
        workload = query_points(args.queries, index.dim, seed=args.seed)
        with obs_metrics.collecting(fresh=True) as registry:
            for q in workload:
                index.nearest(q)
        print()
        print(
            obs_export.metrics_table(
                registry,
                f"Live metrics ({args.queries} sample queries)",
            ).render()
        )
    return 0


def _stats_watch(args: argparse.Namespace, index) -> int:
    """``stats --watch``: drive the sample workload and render windows.

    Each query's wall-clock latency is recorded as ``query.latency_ms``,
    which the dashboard falls back to when there is no serving layer —
    so the table shows the same QPS/p50/p99 columns ``serve
    --stats-interval`` prints, sourced from direct ``nearest`` calls.
    Runs until ``--duration`` elapses (or Ctrl-C).
    """
    if args.queries < 0:
        raise ValueError("--queries must be >= 0")
    workload = (
        query_points(args.queries, index.dim, seed=args.seed)
        if args.queries else np.empty((0, index.dim))
    )
    if args.interval <= 0:
        raise ValueError("--interval must be > 0")
    deadline = (
        None if args.duration is None
        else time.monotonic() + args.duration
    )
    with TelemetrySession(TelemetryConfig()) as session:
        next_render = time.monotonic() + args.interval
        i = 0
        try:
            while deadline is None or time.monotonic() < deadline:
                # An empty workload (--queries 0) must still render the
                # (all-zero) telemetry windows, not divide by zero.
                if len(workload):
                    q = workload[i % len(workload)]
                    i += 1
                    started = time.perf_counter()
                    index.nearest(q)
                    obs_metrics.observe(
                        "query.latency_ms",
                        1e3 * (time.perf_counter() - started),
                    )
                else:
                    time.sleep(min(0.05, args.interval))
                now = time.monotonic()
                if now >= next_render:
                    print(
                        obs_timeseries.telemetry_table(
                            session.timeseries
                        ).render()
                    )
                    print(flush=True)
                    next_render = now + args.interval
        except KeyboardInterrupt:
            pass
        print(
            obs_timeseries.telemetry_table(
                session.timeseries, title=f"Live telemetry ({i} queries)"
            ).render()
        )
    return 0


#: ``trace top`` column -> critical-path stage.
_TRACE_STAGE_COLUMNS = (
    ("queue_ms", "queue_wait"),
    ("walk_ms", "tree_walk"),
    ("scan_ms", "candidate_scan"),
    ("lp_ms", "lp"),
    ("fallback_ms", "fallback"),
    ("deliver_ms", "deliver"),
)


def _cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: traced service workload + tail inspection.

    Drives ``--queries`` sample queries through a :class:`QueryService`
    with tracing enabled (the same wiring ``serve --tracing`` uses),
    then reads the populated trace store: the slowest-request table
    (``top``), one span tree with its critical path (``show``), or a
    Chrome trace-event export (``export``).
    """
    index = load_any_index(args.index)
    if args.queries < 1:
        raise ValueError("--queries must be >= 1")
    if args.action == "export" and args.out is not None:
        _require_parent_dir(args.out, "trace output")
    workload = query_points(args.queries, index.dim, seed=args.seed)
    with TelemetrySession(TelemetryConfig(tracing=True)) as session:
        report = run_service_load(index, workload, n_threads=args.threads)
        store = session.tracestore
        if args.action == "top":
            _trace_top(store, args.limit, report)
        elif args.action == "show":
            _trace_show(store, args.trace_id)
        else:
            _trace_export(store, args.out)
    return 0


def _trace_top(store, limit: int, report) -> None:
    rows = store.slowest(limit, kind="request")
    table = ResultTable(
        title=(
            f"Slowest requests — {len(rows)} of {len(store)} stored"
            f" traces ({report.n_queries} queries,"
            f" {report.errors} errors)"
        ),
        columns=(
            ["trace_id", "total_ms", "coverage"]
            + [column for column, __ in _TRACE_STAGE_COLUMNS]
            + ["flags"]
        ),
    )
    for trace in rows:
        path = obs_tracestore.critical_path(trace, store)
        flags = ",".join(
            flag for flag, on in
            (("error", trace.error), ("fallback", trace.fallback),
             ("degraded", trace.degraded)) if on
        )
        row = {
            "trace_id": trace.trace_id,
            "total_ms": f"{trace.duration_ms:.3f}",
            "coverage": f"{100.0 * path.coverage:.0f}%",
            "flags": flags or "-",
        }
        for column, stage in _TRACE_STAGE_COLUMNS:
            row[column] = f"{path.stages.get(stage, 0.0):.3f}"
        table.add_row(**row)
    print(table.render())


def _trace_show(store, trace_id: "str | None") -> None:
    if trace_id is not None:
        trace = store.get(trace_id)
        if trace is None:
            raise ValueError(f"no stored trace with id {trace_id!r}")
    else:
        slowest = store.slowest(1, kind="request")
        if not slowest:
            raise ValueError("no request traces were stored")
        trace = slowest[0]
    path = obs_tracestore.critical_path(trace, store)
    flags = ",".join(
        flag for flag, on in
        (("error", trace.error), ("fallback", trace.fallback),
         ("degraded", trace.degraded)) if on
    )
    print(f"trace:    {trace.trace_id}  ({trace.kind})")
    print(f"duration: {trace.duration_ms:.3f} ms")
    if flags:
        print(f"flags:    {flags}")
    if trace.links:
        print(f"links:    {', '.join(trace.links)}")
    print(f"critical path (coverage {100.0 * path.coverage:.0f}%):")
    for stage in obs_tracestore.STAGES:
        if stage in path.stages:
            print(f"  {stage:<14} {path.stages[stage]:10.3f} ms")
    print("spans:")
    _print_span_tree(trace.root, 0, trace.root.start)
    # A request's compute segment is one opaque span; the detail lives
    # in the micro-batch flush trace it links to.  Show it too.
    for child in trace.root.children:
        flush_id = child.attributes.get("flush")
        if flush_id:
            flush = store.get(str(flush_id))
            if flush is not None:
                print(f"flush {flush.trace_id} spans:")
                _print_span_tree(flush.root, 0, trace.root.start)


def _print_span_tree(span, depth: int, base: float) -> None:
    """One span per line: name, offset from ``base``, duration."""
    offset_ms = 1e3 * (span.start - base)
    label = "  " * depth + span.name
    print(
        f"  {label:<36} +{offset_ms:9.3f} ms"
        f"  {1e3 * span.duration_seconds:9.3f} ms"
    )
    for child in span.children:
        _print_span_tree(child, depth + 1, base)


def _trace_export(store, out: "Path | None") -> None:
    document = obs_tracestore.to_chrome_trace(store.traces())
    text = json.dumps(document, sort_keys=True)
    if out is None:
        print(text)
        return
    out.write_text(text + "\n")
    print(
        f"({len(document['traceEvents'])} trace events written to {out})",
        file=sys.stderr,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    params = {}
    for item in args.param:
        if "=" not in item:
            raise ValueError(f"--param expects KEY=VALUE, got {item!r}")
        key, __, raw = item.partition("=")
        params[key] = _parse_param(raw)
    if args.csv:
        _require_parent_dir(args.csv, "csv")
    table = _EXPERIMENTS[args.name](**params)
    print(table.render())
    if args.csv:
        args.csv.write_text(table.to_csv() + "\n")
        print(f"(csv written to {args.csv})")
    return 0


def _parse_param(raw: str):
    if "," in raw:
        return tuple(int(v) for v in raw.split(",") if v)
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
