"""Plain-text rendering of experiment results.

Every experiment in :mod:`repro.eval.experiments` returns a
:class:`ResultTable`; the benchmark harness prints it so a run regenerates
the paper's rows/series on stdout, and EXPERIMENTS.md quotes the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A titled table of experiment rows (ordered dict per row)."""

    title: str
    columns: "List[str]"
    rows: "List[Dict[str, object]]" = field(default_factory=list)
    notes: "List[str]" = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row; every declared column must be present."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row is missing columns: {missing}")
        self.rows.append({c: values[c] for c in self.columns})

    def column(self, name: str) -> "List[object]":
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [[_fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (header + rows)."""
        out = [",".join(self.columns)]
        out.extend(
            ",".join(_fmt(row[c]) for c in self.columns) for row in self.rows
        )
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
