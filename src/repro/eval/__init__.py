"""Evaluation harness: measurements, cost models and per-figure experiments."""

from .costmodel import (
    expected_leaf_accesses,
    expected_nn_distance,
    nn_sphere_volume_fraction,
    unit_ball_volume,
)
from .experiments import (
    ComparisonRun,
    compare_methods,
    figure2_cell_gallery,
    figure4_selector_tradeoff,
    figure5_quality_performance,
    figure7_to_9_dimension_sweep,
    figure10_size_sweep,
    figure11_12_fourier,
    figure13_decomposition,
)
from .harness import (
    CostModel,
    QueryMeasurement,
    Timer,
    measure_nncell_queries,
    measure_scan_queries,
    measure_tree_queries,
)
from .loadgen import (
    LoadReport,
    run_direct_load,
    run_service_load,
    serving_throughput_table,
)
from .metrics import speedup_percent, summarize_series, verify_against_scan
from .replay import Mismatch, ReplayReport, replay, replay_file
from .reporting import ResultTable

__all__ = [
    "ComparisonRun",
    "CostModel",
    "LoadReport",
    "Mismatch",
    "ReplayReport",
    "QueryMeasurement",
    "ResultTable",
    "Timer",
    "compare_methods",
    "expected_leaf_accesses",
    "expected_nn_distance",
    "figure2_cell_gallery",
    "figure4_selector_tradeoff",
    "figure5_quality_performance",
    "figure7_to_9_dimension_sweep",
    "figure10_size_sweep",
    "figure11_12_fourier",
    "figure13_decomposition",
    "measure_nncell_queries",
    "measure_scan_queries",
    "measure_tree_queries",
    "nn_sphere_volume_fraction",
    "replay",
    "replay_file",
    "run_direct_load",
    "run_service_load",
    "serving_throughput_table",
    "speedup_percent",
    "summarize_series",
    "unit_ball_volume",
    "verify_against_scan",
]
