"""Measurement harness for the paper's experiments.

The paper reports *total search time*, decomposed into CPU time and page
accesses (Figure 9/12).  On the 1998 testbed total time was wall-clock on
a real disk; our storage layer is simulated, so total time is modelled as

    ``total = cpu_seconds + page_accesses * io_seconds_per_block``

with a configurable per-block I/O cost (default 10 ms — a late-1990s disk
seek+transfer, the regime the paper was measured in).  CPU time is real
measured wall-clock of the in-process query code.  Both components are
reported separately so the *shape* comparisons (who wins where) do not
depend on the I/O constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence

import numpy as np

from ..core.nncell_index import NNCellIndex
from ..index.linear_scan import LinearScan
from ..index.nnsearch import hs_nearest, rkv_nearest
from ..index.rstar import RStarTree
from ..obs import metrics as obs_metrics
from .reporting import ResultTable

__all__ = [
    "CostModel",
    "QueryMeasurement",
    "batch_throughput_table",
    "measure_nncell_batch_queries",
    "measure_nncell_queries",
    "measure_tree_queries",
    "measure_scan_queries",
    "Timer",
]

DEFAULT_IO_SECONDS = 0.010  # 10 ms per block: a 1998-era disk access


@dataclass(frozen=True)
class CostModel:
    """Translates (cpu seconds, page accesses) into total search time."""

    io_seconds_per_block: float = DEFAULT_IO_SECONDS

    def total_seconds(self, cpu_seconds: float, pages: int) -> float:
        """Modelled wall-clock: CPU plus per-block I/O cost."""
        return cpu_seconds + pages * self.io_seconds_per_block


@dataclass
class QueryMeasurement:
    """Aggregated measurements over a query workload."""

    method: str
    n_queries: int = 0
    cpu_seconds: float = 0.0
    pages: int = 0
    distance_computations: int = 0
    candidates: int = 0
    extra: "Dict[str, float]" = field(default_factory=dict)
    #: counter increments observed during the workload (empty unless
    #: :mod:`repro.obs.metrics` was enabled while measuring)
    metrics: "Dict[str, float]" = field(default_factory=dict)

    def total_seconds(self, cost_model: "CostModel | None" = None) -> float:
        """Modelled total time of the whole workload."""
        model = cost_model or CostModel()
        return model.total_seconds(self.cpu_seconds, self.pages)

    def per_query(self) -> "Dict[str, float]":
        """Per-query averages of every counter."""
        n = max(self.n_queries, 1)
        return {
            "cpu_ms": 1e3 * self.cpu_seconds / n,
            "pages": self.pages / n,
            "distance_computations": self.distance_computations / n,
            "candidates": self.candidates / n,
        }

    def throughput_qps(
        self, cost_model: "CostModel | None" = None
    ) -> float:
        """Modelled queries per second over the whole workload."""
        total = self.total_seconds(cost_model)
        if total <= 0.0:
            return float("inf") if self.n_queries else 0.0
        return self.n_queries / total


class Timer:
    """Minimal context-manager stopwatch."""

    def __enter__(self) -> "Timer":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


def measure_nncell_queries(
    index: NNCellIndex,
    queries: np.ndarray,
    drop_cache: bool = True,
) -> QueryMeasurement:
    """Run a workload through :meth:`NNCellIndex.nearest`."""
    meas = QueryMeasurement("nn-cell")
    fallbacks = 0
    before = obs_metrics.snapshot() if obs_metrics.enabled() else None
    for q in np.atleast_2d(queries):
        if drop_cache:
            index.cell_tree.pages.drop_cache()
        with Timer() as timer:
            __, __, info = index.nearest(q)
        meas.n_queries += 1
        meas.cpu_seconds += timer.seconds
        meas.pages += info.pages
        meas.distance_computations += info.distance_computations
        meas.candidates += info.n_candidates
        fallbacks += int(info.fallback)
    meas.extra["fallbacks"] = float(fallbacks)
    if before is not None:
        meas.metrics = obs_metrics.delta_since(before)
    return meas


def measure_tree_queries(
    tree: RStarTree,
    queries: np.ndarray,
    method: str = "rkv",
    drop_cache: bool = True,
) -> QueryMeasurement:
    """Run a workload through branch-and-bound NN search on a tree."""
    algorithms: "Dict[str, Callable]" = {"rkv": rkv_nearest, "hs": hs_nearest}
    if method not in algorithms:
        raise ValueError(f"method must be one of {sorted(algorithms)}")
    search = algorithms[method]
    meas = QueryMeasurement(method)
    before = obs_metrics.snapshot() if obs_metrics.enabled() else None
    for q in np.atleast_2d(queries):
        if drop_cache:
            tree.pages.drop_cache()
        with Timer() as timer:
            result = search(tree, q)
        meas.n_queries += 1
        meas.cpu_seconds += timer.seconds
        meas.pages += result.pages
        meas.distance_computations += result.distance_computations
    if before is not None:
        meas.metrics = obs_metrics.delta_since(before)
    return meas


def measure_nncell_batch_queries(
    index: NNCellIndex,
    queries: np.ndarray,
    batch_size: "int | None" = None,
    drop_cache: bool = True,
) -> QueryMeasurement:
    """Run a workload through :meth:`NNCellIndex.query_batch`.

    The batched counterpart of :func:`measure_nncell_queries`: the cache
    is dropped once before the batch (cold start), after which the walk
    amortises page reads across the whole workload — the regime a
    high-traffic serving deployment runs in.
    """
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    meas = QueryMeasurement("nn-cell-batch")
    before = obs_metrics.snapshot() if obs_metrics.enabled() else None
    if drop_cache:
        index.cell_tree.pages.drop_cache()
    with Timer() as timer:
        __, __, info = index.query_batch(qs, batch_size=batch_size)
    meas.n_queries = info.n_queries
    meas.cpu_seconds = timer.seconds
    meas.pages = info.pages
    meas.distance_computations = info.distance_computations
    meas.candidates = info.n_candidates
    meas.extra["fallbacks"] = float(info.fallbacks)
    meas.extra["batches"] = float(info.n_batches)
    if before is not None:
        meas.metrics = obs_metrics.delta_since(before)
    return meas


def batch_throughput_table(
    index: NNCellIndex,
    queries: np.ndarray,
    batch_sizes: "Sequence[int | None]" = (16, 64, None),
    cost_model: "CostModel | None" = None,
) -> ResultTable:
    """Serial vs batched throughput of one index over one workload.

    One row per mode: the serial per-query loop first (the baseline the
    speedup column is relative to), then :meth:`NNCellIndex.query_batch`
    at each requested ``batch_size`` (``None`` = the whole workload in
    one walk).  Throughput is modelled via ``cost_model`` so the I/O
    amortisation is visible alongside CPU vectorisation gains.
    """
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    table = ResultTable(
        "Query throughput: serial vs batched",
        ["mode", "batch_size", "cpu_ms_per_query", "pages_per_query",
         "throughput_qps", "speedup_over_serial"],
    )
    serial = measure_nncell_queries(index, qs)
    serial_qps = serial.throughput_qps(cost_model)
    table.add_row(
        mode="serial",
        batch_size=1,
        cpu_ms_per_query=serial.per_query()["cpu_ms"],
        pages_per_query=serial.per_query()["pages"],
        throughput_qps=serial_qps,
        speedup_over_serial=1.0,
    )
    for batch_size in batch_sizes:
        meas = measure_nncell_batch_queries(index, qs, batch_size=batch_size)
        qps = meas.throughput_qps(cost_model)
        table.add_row(
            mode="batch",
            batch_size=qs.shape[0] if batch_size is None else batch_size,
            cpu_ms_per_query=meas.per_query()["cpu_ms"],
            pages_per_query=meas.per_query()["pages"],
            throughput_qps=qps,
            speedup_over_serial=qps / serial_qps if serial_qps else float("inf"),
        )
    return table


def measure_scan_queries(
    scan: LinearScan, queries: np.ndarray, drop_cache: bool = True
) -> QueryMeasurement:
    """Run a workload through the sequential-scan baseline."""
    meas = QueryMeasurement("linear-scan")
    before = obs_metrics.snapshot() if obs_metrics.enabled() else None
    for q in np.atleast_2d(queries):
        if drop_cache:
            scan.pages.drop_cache()
        with Timer() as timer:
            result = scan.nearest(q)
        meas.n_queries += 1
        meas.cpu_seconds += timer.seconds
        meas.pages += result.pages
        meas.distance_computations += result.distance_computations
    if before is not None:
        meas.metrics = obs_metrics.delta_since(before)
    return meas
