"""Reproductions of every figure in the paper's evaluation (Section 4).

Each ``figure*`` function regenerates the corresponding figure's series as
a :class:`repro.eval.reporting.ResultTable` whose rows mirror the paper's
x-axis points.  Default problem sizes are scaled down from the paper's
(100,000+ points on 1998 C++) to pure-Python scale; every function takes
the size parameters as keywords so full-scale runs are possible.  The
benchmark harness under ``benchmarks/`` calls these with its own defaults
and prints the tables; EXPERIMENTS.md records paper-vs-measured shapes.

Figure map:

* Figure 2  -> :func:`figure2_cell_gallery` (2-d cell/approximation stats
  per distribution)
* Figure 4  -> :func:`figure4_selector_tradeoff` (construction performance
  and overlap of Correct/Point/Sphere/NN-Direction vs. dimension)
* Figure 5  -> :func:`figure5_quality_performance`
* Figures 7-9 -> :func:`figure7_to_9_dimension_sweep` (one sweep feeds the
  total-time, speed-up and pages-vs-CPU views)
* Figure 10 -> :func:`figure10_size_sweep`
* Figures 11-12 -> :func:`figure11_12_fourier`
* Figure 13 -> :func:`figure13_decomposition`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from ..core.candidates import SelectorKind
from ..core.decomposition import DecompositionConfig
from ..core.nncell_index import BuildConfig, NNCellIndex
from ..core.quality import average_overlap, quality_to_performance
from ..data.fourier import fourier_points
from ..data.synthetic import query_points, uniform_points
from ..geometry.mbr import MBR
from ..index.bulk import bulk_load
from ..index.rstar import RStarTree
from ..index.xtree import XTree
from ..obs import metrics as obs_metrics
from .harness import (
    CostModel,
    QueryMeasurement,
    Timer,
    measure_nncell_queries,
    measure_tree_queries,
)
from .metrics import speedup_percent
from .reporting import ResultTable

__all__ = [
    "ComparisonRun",
    "compare_methods",
    "figure2_cell_gallery",
    "figure4_selector_tradeoff",
    "figure5_quality_performance",
    "figure7_to_9_dimension_sweep",
    "figure10_size_sweep",
    "figure11_12_fourier",
    "figure13_decomposition",
]

#: the selector the paper recommends for high-dimensional data (best
#: quality-to-performance at d >= 12, Figure 5) — used for the search-time
#: experiments where index construction is off the measured path.
SEARCH_SELECTOR = SelectorKind.NN_DIRECTION


# ======================================================================
# Shared machinery
# ======================================================================

@dataclass
class ComparisonRun:
    """One dataset's measurements across all competing methods."""

    n_points: int
    dim: int
    build_seconds: float
    measurements: "Dict[str, QueryMeasurement]" = field(default_factory=dict)

    def total_seconds(self, method: str, cost_model: CostModel) -> float:
        """Modelled total search time of one method over the workload."""
        return self.measurements[method].total_seconds(cost_model)


def compare_methods(
    points: np.ndarray,
    queries: np.ndarray,
    build_config: "BuildConfig | None" = None,
    methods: "Sequence[str]" = ("nn-cell", "rstar", "xtree"),
    cache_pages: int = 32,
) -> ComparisonRun:
    """Build each competitor over ``points`` and measure ``queries``.

    Methods: ``"nn-cell"`` (the paper's approach, point query on the
    solution space), ``"rstar"``, ``"xtree"`` and ``"guttman"``
    (branch-and-bound NN search on the respective data index).  Every
    index gets the same buffer-pool budget, as in the paper.
    """
    from ..index.guttman import GuttmanRTree

    points = np.asarray(points, dtype=np.float64)
    n, dim = points.shape
    run = ComparisonRun(n_points=n, dim=dim, build_seconds=0.0)
    ids = np.arange(n)
    tree_classes = {
        "rstar": RStarTree,
        "xtree": XTree,
        "guttman": GuttmanRTree,
    }

    for method in methods:
        if method == "nn-cell":
            config = build_config or BuildConfig(
                selector=SEARCH_SELECTOR, cache_pages=cache_pages
            )
            with Timer() as timer:
                index = NNCellIndex.build(points, config)
            run.build_seconds += timer.seconds
            run.measurements[method] = measure_nncell_queries(index, queries)
        elif method in tree_classes:
            tree_cls = tree_classes[method]
            tree = tree_cls(
                dim,
                cache_pages=cache_pages,
                leaf_entry_bytes=8 * dim + 8,  # data pages hold points
            )
            with Timer() as timer:
                bulk_load(tree, points, points, ids)
            run.build_seconds += timer.seconds
            run.measurements[method] = measure_tree_queries(
                tree, queries, method="rkv"
            )
        else:
            raise ValueError(f"unknown method {method!r}")
    return run


def _cells_for(
    points: np.ndarray,
    selector: SelectorKind,
    decompose: bool = False,
    k_max: int = 100,
    heuristic: str = "extent",
    page_size: int = 4096,
) -> "tuple[NNCellIndex, float]":
    config = BuildConfig(
        selector=selector,
        decompose=decompose,
        decomposition=DecompositionConfig(k_max=k_max, heuristic=heuristic),
        page_size=page_size,
    )
    with Timer() as timer:
        index = NNCellIndex.build(points, config)
    return index, timer.seconds


# ======================================================================
# Figure 2 — NN-cells and their MBR approximations (2-d gallery)
# ======================================================================

def figure2_cell_gallery(
    n_points: int = 16, seed: int = 2
) -> ResultTable:
    """Quantifies Figure 2: approximation quality per 2-d distribution.

    For the regular grid the MBR approximations coincide with the cells
    (overlap 0); iid-uniform data overlaps mildly; the sparse population
    (few points along the diagonal, as in the paper's Figure 2e where the
    cells stretch across the whole data space) approaches total overlap.
    The gallery script ``examples/cell_gallery.py`` draws the diagrams.
    """
    from ..data.synthetic import diagonal_points, grid_points

    table = ResultTable(
        "Figure 2: MBR approximations of NN-cells by distribution (2-d)",
        ["distribution", "n_points", "expected_candidates", "overlap"],
    )
    per_axis = max(2, int(round(n_points ** 0.5)))
    datasets = {
        "uniform": uniform_points(n_points, 2, seed=seed),
        "grid": grid_points(per_axis, 2),
        "sparse": diagonal_points(max(4, n_points // 2), 2, jitter=0.05,
                                  seed=seed),
    }
    box = MBR.unit_cube(2)
    for name, pts in datasets.items():
        index, __ = _cells_for(pts, SelectorKind.CORRECT)
        rects = [rect for __, rect in index.all_cell_rectangles()]
        overlap = average_overlap(rects, box)
        table.add_row(
            distribution=name,
            n_points=pts.shape[0],
            expected_candidates=overlap + 1.0,
            overlap=overlap,
        )
    table.notes.append(
        "grid must give overlap ~0 (best case); sparse the largest overlap"
        " (worst case)"
    )
    return table


# ======================================================================
# Figures 4 & 5 — the four candidate-selection algorithms
# ======================================================================

def figure4_selector_tradeoff(
    dims: "Sequence[int]" = (4, 8, 12, 16),
    n_points: int = 150,
    seed: int = 4,
    page_size: int = 1024,
) -> ResultTable:
    """Construction performance vs. approximation overlap per selector.

    Paper shape: time per point grows with d for every strategy and ranks
    Correct > Sphere ~ Point > NN-Direction, while overlap ranks the
    opposite way (the most accurate algorithm is the slowest).

    Besides wall-clock ``build_seconds`` (noisy on shared machines, kept
    for the paper's Figure 4 axis) the table reports a *deterministic*
    cost model of construction work from the metrics registry:
    ``build_lp_rows`` (total constraint rows shipped to the LP solver —
    the counted CPU work of the 2d-LPs-per-cell pipeline),
    ``build_pages`` (page accesses during construction, dominated by the
    Point/Sphere selectors' data-index queries) and their sum
    ``build_cost``, the machine-independent analogue of the paper's
    CPU + I/O decomposition.

    ``page_size`` defaults below the experiment default (1 KB vs 4 KB) so
    the Point/Sphere selectors operate on several data pages even at the
    scaled-down database sizes; at the paper's 100k+ points the 4 KB
    default produces the same granularity.
    """
    table = ResultTable(
        "Figure 4: performance and overlap of the four selectors",
        ["dim", "algorithm", "build_seconds", "build_lp_rows",
         "build_pages", "build_cost", "overlap", "mean_constraints"],
    )
    for dim in dims:
        points = uniform_points(n_points, dim, seed=seed)
        box = MBR.unit_cube(dim)
        for kind in (
            SelectorKind.CORRECT,
            SelectorKind.POINT,
            SelectorKind.SPHERE,
            SelectorKind.NN_DIRECTION,
        ):
            with obs_metrics.collecting() as registry:
                before = registry.snapshot()
                index, seconds = _cells_for(points, kind,
                                            page_size=page_size)
                delta = registry.delta_since(before)
            lp_rows = delta.get("lp.constraint_rows", 0.0)
            pages = delta.get("storage.logical_reads", 0.0)
            rects = [rect for __, rect in index.all_cell_rectangles()]
            mean_constraints = float(
                np.mean(
                    [
                        index.constraint_system(i).n_constraints
                        for i in index.active_ids
                    ]
                )
            )
            table.add_row(
                dim=dim,
                algorithm=kind.value,
                build_seconds=seconds,
                build_lp_rows=lp_rows,
                build_pages=pages,
                build_cost=lp_rows + pages,
                overlap=average_overlap(rects, box),
                mean_constraints=mean_constraints,
            )
    table.notes.append(
        "paper shape: Correct slowest/most accurate, NN-Direction"
        " fastest/least accurate; both columns grow with dim"
    )
    table.notes.append(
        "build_cost = LP constraint rows + page accesses: the"
        " deterministic construction-work model backing the shape tests"
    )
    return table


def figure5_quality_performance(
    figure4: "ResultTable | None" = None, **kwargs
) -> ResultTable:
    """Quality-to-performance ratio of the four selectors (Figure 5).

    Paper shape: Sphere wins at low dimensions (4, 8); NN-Direction wins
    at high dimensions (12, 16).
    """
    source = figure4 or figure4_selector_tradeoff(**kwargs)
    table = ResultTable(
        "Figure 5: quality-to-performance ratio of the four selectors",
        ["dim", "algorithm", "quality_to_performance"],
    )
    for row in source.rows:
        table.add_row(
            dim=row["dim"],
            algorithm=row["algorithm"],
            quality_to_performance=quality_to_performance(
                float(row["overlap"]), float(row["build_seconds"])
            ),
        )
    table.notes.append(
        "paper shape: Sphere best at d in {4, 8}; NN-Direction best at"
        " d in {12, 16}"
    )
    return table


# ======================================================================
# Figures 7, 8, 9 — search-time comparison over dimensionality
# ======================================================================

def figure7_to_9_dimension_sweep(
    dims: "Sequence[int]" = (4, 6, 8, 10, 12, 14, 16),
    n_points: int = 1000,
    n_queries: int = 40,
    seed: int = 7,
    cost_model: "CostModel | None" = None,
    selector: SelectorKind = SEARCH_SELECTOR,
) -> ResultTable:
    """Total search time / speed-up / pages / CPU over dimensionality.

    One sweep provides all three figures: Figure 7 reads the
    ``*_total_s`` columns, Figure 8 the ``speedup_vs_rstar`` column and
    Figure 9 the ``*_pages`` / ``*_cpu_ms`` columns.

    Paper shape: comparable at low d; the NN-cell approach increasingly
    faster at high d (>3x over the R*-tree at d = 16), always with lower
    CPU, beating the R*-tree (not necessarily the X-tree) on page counts.
    """
    model = cost_model or CostModel()
    table = ResultTable(
        "Figures 7-9: NN-cell vs R*-tree vs X-tree over dimensionality",
        [
            "dim",
            "nncell_total_s", "rstar_total_s", "xtree_total_s",
            "speedup_vs_rstar", "speedup_vs_xtree",
            "nncell_pages", "rstar_pages", "xtree_pages",
            "nncell_cpu_ms", "rstar_cpu_ms", "xtree_cpu_ms",
        ],
    )
    for dim in dims:
        points = uniform_points(n_points, dim, seed=seed)
        queries = query_points(n_queries, dim, seed=seed + 1)
        run = compare_methods(
            points,
            queries,
            build_config=BuildConfig(selector=selector, cache_pages=32),
        )
        per = {m: run.measurements[m].per_query() for m in run.measurements}
        totals = {
            m: run.total_seconds(m, model) / n_queries
            for m in run.measurements
        }
        table.add_row(
            dim=dim,
            nncell_total_s=totals["nn-cell"],
            rstar_total_s=totals["rstar"],
            xtree_total_s=totals["xtree"],
            speedup_vs_rstar=speedup_percent(totals["rstar"], totals["nn-cell"]),
            speedup_vs_xtree=speedup_percent(totals["xtree"], totals["nn-cell"]),
            nncell_pages=per["nn-cell"]["pages"],
            rstar_pages=per["rstar"]["pages"],
            xtree_pages=per["xtree"]["pages"],
            nncell_cpu_ms=per["nn-cell"]["cpu_ms"],
            rstar_cpu_ms=per["rstar"]["cpu_ms"],
            xtree_cpu_ms=per["xtree"]["cpu_ms"],
        )
    table.notes.append(
        "paper shape: NN-cell total time lowest, gap widening with dim;"
        " speed-up over the R*-tree grows past 300%"
    )
    return table


# ======================================================================
# Figure 10 — search-time comparison over database size (d = 10)
# ======================================================================

def figure10_size_sweep(
    sizes: "Sequence[int]" = (500, 1000, 2000, 4000),
    dim: int = 10,
    n_queries: int = 40,
    seed: int = 10,
    cost_model: "CostModel | None" = None,
) -> ResultTable:
    """Total time / pages / CPU over database size at fixed dimension.

    Paper shape (N = 50k..200k at d = 10, scaled here): the NN-cell
    approach is significantly faster throughout and grows roughly
    logarithmically in N, while the trees' costs grow faster.
    """
    model = cost_model or CostModel()
    table = ResultTable(
        "Figure 10: NN-cell vs R*-tree vs X-tree over database size",
        [
            "n_points",
            "nncell_total_s", "rstar_total_s", "xtree_total_s",
            "nncell_pages", "rstar_pages", "xtree_pages",
            "nncell_cpu_ms", "rstar_cpu_ms", "xtree_cpu_ms",
        ],
    )
    queries = query_points(n_queries, dim, seed=seed + 1)
    for n_points in sizes:
        points = uniform_points(n_points, dim, seed=seed)
        run = compare_methods(points, queries)
        per = {m: run.measurements[m].per_query() for m in run.measurements}
        totals = {
            m: run.total_seconds(m, model) / n_queries
            for m in run.measurements
        }
        table.add_row(
            n_points=n_points,
            nncell_total_s=totals["nn-cell"],
            rstar_total_s=totals["rstar"],
            xtree_total_s=totals["xtree"],
            nncell_pages=per["nn-cell"]["pages"],
            rstar_pages=per["rstar"]["pages"],
            xtree_pages=per["xtree"]["pages"],
            nncell_cpu_ms=per["nn-cell"]["cpu_ms"],
            rstar_cpu_ms=per["rstar"]["cpu_ms"],
            xtree_cpu_ms=per["xtree"]["cpu_ms"],
        )
    table.notes.append(
        "paper shape: NN-cell fastest at every size, near-logarithmic in N"
    )
    return table


# ======================================================================
# Figures 11 & 12 — real (Fourier) data
# ======================================================================

def figure11_12_fourier(
    sizes: "Sequence[int]" = (500, 1000, 2000, 4000),
    dim: int = 8,
    n_queries: int = 40,
    seed: int = 11,
    cost_model: "CostModel | None" = None,
) -> ResultTable:
    """NN-cell vs X-tree on (synthetic) Fourier data, over database size.

    Paper shape: the NN-cell approach beats the X-tree on *both* page
    accesses and CPU time on real data — the clustered distribution makes
    the cell approximations tighter than in the uniform case.
    """
    model = cost_model or CostModel()
    table = ResultTable(
        "Figures 11-12: NN-cell vs X-tree on Fourier data",
        [
            "n_points",
            "nncell_total_s", "xtree_total_s", "speedup_vs_xtree",
            "nncell_pages", "xtree_pages",
            "nncell_cpu_ms", "xtree_cpu_ms",
        ],
    )
    for n_points in sizes:
        points = fourier_points(n_points, dim=dim, seed=seed)
        rng = np.random.default_rng(seed + 1)
        # Query near the data distribution: perturbed database points.
        base = points[rng.integers(points.shape[0], size=n_queries)]
        queries = np.clip(
            base + rng.normal(scale=0.05, size=base.shape), 0.0, 1.0
        )
        run = compare_methods(points, queries, methods=("nn-cell", "xtree"))
        per = {m: run.measurements[m].per_query() for m in run.measurements}
        totals = {
            m: run.total_seconds(m, model) / n_queries
            for m in run.measurements
        }
        table.add_row(
            n_points=n_points,
            nncell_total_s=totals["nn-cell"],
            xtree_total_s=totals["xtree"],
            speedup_vs_xtree=speedup_percent(
                totals["xtree"], totals["nn-cell"]
            ),
            nncell_pages=per["nn-cell"]["pages"],
            xtree_pages=per["xtree"]["pages"],
            nncell_cpu_ms=per["nn-cell"]["cpu_ms"],
            xtree_cpu_ms=per["xtree"]["cpu_ms"],
        )
    table.notes.append(
        "paper shape: NN-cell wins both pages and CPU on real data"
        " (speed-up up to ~250%)"
    )
    return table


# ======================================================================
# Figure 13 — effect of decomposing the approximations
# ======================================================================

def figure13_decomposition(
    dims: "Sequence[int]" = (4, 8, 12),
    n_points: int = 120,
    seed: int = 13,
    k_max: int = 16,
    heuristic: str = "extent",
) -> ResultTable:
    """Overlap of exact vs decomposed approximations (Correct selector).

    Paper shape: decomposition reduces overlap at every dimension, with
    the improvement growing in the dimensionality.
    """
    table = ResultTable(
        "Figure 13: overlap of exact vs decomposed approximations",
        ["dim", "overlap_exact", "overlap_decomposed", "improvement"],
    )
    for dim in dims:
        points = uniform_points(n_points, dim, seed=seed)
        box = MBR.unit_cube(dim)
        exact_index, __ = _cells_for(points, SelectorKind.CORRECT)
        exact_rects = [r for __, r in exact_index.all_cell_rectangles()]
        overlap_exact = average_overlap(exact_rects, box)
        dec_index, __ = _cells_for(
            points,
            SelectorKind.CORRECT,
            decompose=True,
            k_max=k_max,
            heuristic=heuristic,
        )
        dec_rects = [r for __, r in dec_index.all_cell_rectangles()]
        overlap_dec = average_overlap(dec_rects, box)
        table.add_row(
            dim=dim,
            overlap_exact=overlap_exact,
            overlap_decomposed=overlap_dec,
            improvement=(
                overlap_exact / overlap_dec if overlap_dec > 0 else np.inf
            ),
        )
    table.notes.append(
        "paper shape: decomposed overlap strictly below exact overlap,"
        " improvement growing with dim"
    )
    return table
