"""Workload replay: re-execute a captured query stream for A/B parity.

The point of capturing a workload (:mod:`repro.obs.workload`) is to be
able to ask *"would a different index answer it the same, and at what
page cost?"* — re-sharding, a new partitioner, a bigger cache, a fresh
build.  :func:`replay` re-executes every captured query against an
index and reports:

* **bit parity** — answers are compared with exact equality on ids and
  float-exact equality on distances (the same contract the shard and
  batch parity suites enforce; no tolerance, because the repo's merges
  are deterministic).  Mismatches are listed per query;
* **cost** — total pages touched by the replay vs. the capture, wall
  seconds, and QPS, so an A/B between two configurations is one
  :func:`replay` call each plus a diff of the reports.

``mode="serial"`` answers one query at a time through ``nearest``;
``mode="batch"`` drives ``query_batch`` (both are bit-identical to each
other by the engine parity contract, so either is a valid referee).
Works against any index exposing the ``nearest``/``query_batch``
surface: :class:`~repro.core.nncell_index.NNCellIndex` and
:class:`~repro.shard.sharded.ShardedNNCellIndex` both qualify.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..obs.workload import Workload, load_workload

__all__ = [
    "Mismatch",
    "ReplayReport",
    "replay",
    "replay_file",
]

_MODES = ("serial", "batch")


@dataclass(frozen=True)
class Mismatch:
    """One replayed query whose answer differs from the capture."""

    index: int
    expected_id: int
    got_id: int
    expected_distance: float
    got_distance: float

    def as_dict(self) -> "Dict[str, object]":
        return {
            "index": self.index,
            "expected_id": self.expected_id,
            "got_id": self.got_id,
            "expected_distance": self.expected_distance,
            "got_distance": self.got_distance,
        }


@dataclass
class ReplayReport:
    """Outcome of replaying one workload against one index."""

    mode: str
    n_queries: int = 0
    #: Queries whose (id, distance) differed from the capture.
    mismatches: "List[Mismatch]" = field(default_factory=list)
    #: Pages the replay touched / the capture recorded.
    pages: int = 0
    captured_pages: int = 0
    wall_seconds: float = 0.0

    @property
    def bit_identical(self) -> bool:
        """Every replayed answer matched the capture exactly."""
        return not self.mismatches

    def throughput_qps(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.n_queries / self.wall_seconds

    def as_dict(self, max_mismatches: int = 20) -> "Dict[str, object]":
        return {
            "mode": self.mode,
            "n_queries": self.n_queries,
            "bit_identical": self.bit_identical,
            "n_mismatches": len(self.mismatches),
            "mismatches": [
                m.as_dict() for m in self.mismatches[:max_mismatches]
            ],
            "pages": self.pages,
            "captured_pages": self.captured_pages,
            "wall_seconds": self.wall_seconds,
            "qps": self.throughput_qps(),
        }


def replay(
    index,
    workload: Workload,
    mode: str = "serial",
    batch_size: "Optional[int]" = None,
) -> ReplayReport:
    """Re-execute ``workload`` against ``index``; parity + cost report.

    Captured answers with ``point_id < 0`` (a query the capturing index
    could not answer) are replayed but never counted as mismatches on
    distance — only the id must agree.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    report = ReplayReport(mode=mode, n_queries=len(workload))
    report.captured_pages = int(workload.pages.sum())
    if not len(workload):
        return report
    started = time.perf_counter()
    if mode == "serial":
        got_ids = np.empty(len(workload), dtype=np.int64)
        got_dists = np.empty(len(workload))
        pages = 0
        for i in range(len(workload)):
            point_id, distance, info = index.nearest(workload.queries[i])
            got_ids[i] = point_id
            got_dists[i] = distance
            pages += info.pages
        report.pages = pages
    else:
        got_ids, got_dists, info = index.query_batch(
            workload.queries, batch_size=batch_size
        )
        report.pages = int(info.pages)
    report.wall_seconds = time.perf_counter() - started
    for i in range(len(workload)):
        expected_id = int(workload.point_ids[i])
        expected_dist = float(workload.distances[i])
        got_id = int(got_ids[i])
        got_dist = float(got_dists[i])
        ids_agree = got_id == expected_id
        dists_agree = (
            expected_id < 0  # unanswerable capture: id comparison only
            or got_dist == expected_dist
            or (np.isnan(got_dist) and np.isnan(expected_dist))
        )
        if not (ids_agree and dists_agree):
            report.mismatches.append(
                Mismatch(i, expected_id, got_id, expected_dist, got_dist)
            )
    return report


def replay_file(
    index,
    path,
    mode: str = "serial",
    batch_size: "Optional[int]" = None,
) -> ReplayReport:
    """:func:`replay` a workload loaded from ``path`` (JSONL or NPZ)."""
    return replay(index, load_workload(path), mode, batch_size)
