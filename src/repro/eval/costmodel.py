"""Analytic cost model for high-dimensional NN search.

The paper motivates precomputing the solution space with the theoretical
result of [BBKK 97] ("A Cost Model for Nearest Neighbor Search in
High-Dimensional Data Spaces"): under uniformity assumptions, classic
index-based NN search must touch a growing fraction of the database as
the dimensionality rises.  This module reproduces that model's headline
quantities, which the experiment notes in EXPERIMENTS.md use to sanity
check the measured baselines:

* :func:`expected_nn_distance` — the expected distance from a uniform
  query point to its nearest data point (derived from the volume of the
  d-dimensional ball);
* :func:`nn_sphere_volume_fraction` — the fraction of the data space
  covered by the NN sphere (rises toward 1 with ``d``: the "curse");
* :func:`expected_leaf_accesses` — a Minkowski-sum estimate of how many
  data pages an NN query must touch on a block-partitioned index.
"""

from __future__ import annotations

import math

__all__ = [
    "unit_ball_volume",
    "expected_nn_distance",
    "nn_sphere_volume_fraction",
    "expected_leaf_accesses",
]


def unit_ball_volume(dim: int) -> float:
    """Volume of the unit ball in ``dim`` dimensions."""
    if dim < 1:
        raise ValueError("dim must be >= 1")
    return math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)


def expected_nn_distance(n: int, dim: int) -> float:
    """Expected NN distance for ``n`` uniform points in ``[0,1]^dim``.

    Solves ``n * vol_ball(r) = 1`` for ``r`` — the radius at which the
    query sphere is expected to capture one point.  (The paper's sphere
    selector heuristic is twice this scale, modulo the ball-volume
    constant.)
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return (1.0 / (n * unit_ball_volume(dim))) ** (1.0 / dim)


def nn_sphere_volume_fraction(n: int, dim: int) -> float:
    """Fraction of the data space *spanned* by the expected NN sphere.

    Uses the Minkowski bounding-box surrogate ``min(1, (2 r)^d)`` — the
    volume of the axis-aligned cube enclosing the NN sphere — because the
    ball volume itself identically equals ``1/n`` by construction.  The
    surrogate measures how much of the data space a correct NN search
    must be prepared to inspect; values near 1 are the [BBKK 97] dilemma
    (the NN sphere spans the whole space)."""
    r = expected_nn_distance(n, dim)
    return min(1.0, (2.0 * r) ** dim)


def expected_leaf_accesses(
    n: int, dim: int, points_per_page: int
) -> float:
    """Estimated data pages touched by an exact NN query.

    Model: leaves partition the cube into ``P = n / c`` hyper-cubic pages
    of side ``s = (c / n)^(1/d)``; a page is touched when it intersects
    the NN sphere of radius ``r``, which by a Minkowski-sum argument has
    probability ``min(1, (s + 2 r)^d / s^d * (c / n))`` per page.  The
    estimate saturates at ``P`` — full scan — exactly the high-``d``
    behaviour the paper's Figure 7 baselines show.
    """
    if points_per_page < 1:
        raise ValueError("points_per_page must be >= 1")
    if n < points_per_page:
        return 1.0
    n_pages = n / points_per_page
    side = (points_per_page / n) ** (1.0 / dim)
    r = expected_nn_distance(n, dim)
    touched_fraction = min(1.0, (side + 2.0 * r) ** dim)
    return min(n_pages, touched_fraction / side ** dim)
