"""Derived experiment metrics: speed-ups, agreement checks, summaries."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..core.nncell_index import NNCellIndex
from ..geometry.distance import nearest_of

__all__ = ["speedup_percent", "verify_against_scan", "summarize_series"]


def speedup_percent(baseline_seconds: float, improved_seconds: float) -> float:
    """Speed-up of *improved* over *baseline* in percent, as the paper's
    Figure 8 reports it (``100 * baseline / improved``; >100 means the
    improved method is faster)."""
    if improved_seconds <= 0.0:
        raise ValueError("improved_seconds must be positive")
    if baseline_seconds < 0.0:
        raise ValueError("baseline_seconds must be >= 0")
    return 100.0 * baseline_seconds / improved_seconds


def verify_against_scan(
    index: NNCellIndex,
    points: np.ndarray,
    queries: np.ndarray,
    atol: float = 1e-9,
) -> "Dict[str, float]":
    """Compare the cell index answer with brute force on every query.

    Returns mismatch statistics; the no-false-dismissal guarantee (Lemma
    2) means ``mismatches`` must be zero, which the test suite asserts on
    every configuration.
    """
    queries = np.atleast_2d(queries)
    mismatches = 0
    fallbacks = 0
    for q in queries:
        pid, dist, info = index.nearest(q)
        __, true_dist = nearest_of(q, points)
        fallbacks += int(info.fallback)
        if abs(dist - true_dist) > atol:
            mismatches += 1
    return {
        "queries": float(queries.shape[0]),
        "mismatches": float(mismatches),
        "fallbacks": float(fallbacks),
    }


def summarize_series(values: "Sequence[float]") -> "Dict[str, float]":
    """Mean / min / max summary of a measurement series."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("series must be non-empty")
    return {
        "mean": float(np.mean(arr)),
        "min": float(np.min(arr)),
        "max": float(np.max(arr)),
    }
