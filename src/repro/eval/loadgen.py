"""Load generator for the serving layer: concurrent clients, tail latency.

Andoni/Indyk/Razenshteyn (2018) frame ANN as an online query service
where *tail* latency, not average cost, is the number that matters — so
this harness drives a :class:`~repro.serve.QueryService` with ``N``
closed-loop client threads and reports p50/p95/p99 latency alongside
throughput, against the one-query-at-a-time baseline (the same threads
calling ``index.nearest`` directly, no batching).

Throughput is reported twice, because the repo measures cost in two
currencies:

* ``wall`` — real queries per second of the in-process run (includes
  GIL effects and the service's coalescing wait);
* ``modelled`` — queries per second under the standard
  :class:`~repro.eval.harness.CostModel`, charging each *page access*
  the configured I/O cost.  This is the paper's total-search-time
  currency and the regime where micro-batching pays: the service
  amortises one tree walk (and its page reads) across every coalesced
  batch, while the baseline pays a full walk per query.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..serve.config import ServeConfig
from ..serve.errors import ServeError
from ..serve.service import QueryService
from .harness import CostModel
from .reporting import ResultTable

__all__ = [
    "LoadReport",
    "run_direct_load",
    "run_service_load",
    "serving_throughput_table",
]


@dataclass
class LoadReport:
    """Outcome of one concurrent load run (service or direct baseline)."""

    mode: str
    n_threads: int
    n_queries: int = 0
    #: Typed serving errors observed (overload, deadline); never raised.
    errors: int = 0
    wall_seconds: float = 0.0
    pages: int = 0
    #: Mean coalesced batch size (1.0 for the direct baseline).
    mean_batch_size: float = 1.0
    latencies_ms: "List[float]" = field(default_factory=list)
    #: First error message per error class, for diagnostics.
    error_samples: "Dict[str, str]" = field(default_factory=dict)

    def percentile(self, q: float) -> float:
        """Latency percentile in milliseconds (0 when nothing completed)."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def throughput_qps(self) -> float:
        """Completed queries per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return len(self.latencies_ms) / self.wall_seconds

    def modelled_throughput_qps(
        self, cost_model: "CostModel | None" = None
    ) -> float:
        """Throughput under the page-cost model (the paper's currency)."""
        model = cost_model or CostModel()
        total = model.total_seconds(self.wall_seconds, self.pages)
        if total <= 0.0:
            return 0.0
        return len(self.latencies_ms) / total

    def summary(self) -> "Dict[str, float]":
        return {
            "n_queries": float(self.n_queries),
            "errors": float(self.errors),
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "wall_qps": self.throughput_qps(),
            "pages": float(self.pages),
            "mean_batch_size": self.mean_batch_size,
        }


def _drive(n_threads: int, n_queries: int, worker) -> float:
    """Run ``worker(thread_idx)`` on ``n_threads`` threads; wall seconds."""
    threads = [
        threading.Thread(target=worker, args=(t,), name=f"loadgen-{t}")
        for t in range(n_threads)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started


def run_direct_load(
    index, queries: np.ndarray, n_threads: int = 4
) -> LoadReport:
    """Baseline: ``n_threads`` closed-loop clients calling ``nearest``.

    One query at a time per thread, no batching — the throughput floor
    the serving layer has to beat.  Queries are striped across threads.
    """
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    report = LoadReport("direct", n_threads, n_queries=qs.shape[0])
    lock = threading.Lock()

    def worker(t: int) -> None:
        latencies: "List[float]" = []
        pages = 0
        for i in range(t, qs.shape[0], n_threads):
            started = time.perf_counter()
            __, __, info = index.nearest(qs[i])
            latencies.append(1e3 * (time.perf_counter() - started))
            pages += info.pages
        with lock:
            report.latencies_ms.extend(latencies)
            report.pages += pages

    report.wall_seconds = _drive(n_threads, qs.shape[0], worker)
    return report


def run_service_load(
    index,
    queries: np.ndarray,
    n_threads: int = 4,
    config: "ServeConfig | None" = None,
    timeout_ms: "float | None" = None,
    service: "Optional[QueryService]" = None,
) -> LoadReport:
    """Drive a :class:`QueryService` with ``n_threads`` closed-loop clients.

    Typed serving errors (overload rejections, missed deadlines) are
    *counted*, not raised — a load test measures degradation, it does
    not crash on it.  Pass ``service`` to drive an existing instance
    (its lifetime stays with the caller); otherwise one is created from
    ``config`` and closed before the report is returned.
    """
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    report = LoadReport("service", n_threads, n_queries=qs.shape[0])
    lock = threading.Lock()
    own_service = service is None
    svc = service or QueryService(index, config)
    pages_before = svc.stats()["pages"]

    def worker(t: int) -> None:
        latencies: "List[float]" = []
        errors = 0
        samples: "Dict[str, str]" = {}
        for i in range(t, qs.shape[0], n_threads):
            started = time.perf_counter()
            try:
                svc.submit(qs[i], timeout_ms=timeout_ms)
            except ServeError as err:
                errors += 1
                samples.setdefault(type(err).__name__, str(err))
                continue
            latencies.append(1e3 * (time.perf_counter() - started))
        with lock:
            report.latencies_ms.extend(latencies)
            report.errors += errors
            for name, message in samples.items():
                report.error_samples.setdefault(name, message)

    try:
        report.wall_seconds = _drive(n_threads, qs.shape[0], worker)
        stats = svc.stats()
    finally:
        if own_service:
            svc.close()
    report.pages = int(stats["pages"] - pages_before)
    report.mean_batch_size = stats["mean_batch_size"]
    return report


def serving_throughput_table(
    index,
    queries: np.ndarray,
    n_threads: int = 4,
    config: "ServeConfig | None" = None,
    cost_model: "CostModel | None" = None,
) -> ResultTable:
    """Service vs. unbatched baseline under identical concurrent load.

    One row per mode; the ``modelled_speedup`` column is the service's
    modelled throughput over the baseline's — the number the acceptance
    harness checks, since page amortisation is deterministic where
    wall-clock on a loaded CI box is not.
    """
    table = ResultTable(
        f"Serving throughput ({n_threads} client threads)",
        ["mode", "errors", "p50_ms", "p95_ms", "p99_ms", "wall_qps",
         "pages_per_query", "modelled_qps", "mean_batch_size",
         "modelled_speedup"],
    )
    baseline = run_direct_load(index, queries, n_threads)
    served = run_service_load(index, queries, n_threads, config=config)
    base_qps = baseline.modelled_throughput_qps(cost_model)
    for report in (baseline, served):
        qps = report.modelled_throughput_qps(cost_model)
        n = max(1, len(report.latencies_ms))
        table.add_row(
            mode=report.mode,
            errors=report.errors,
            p50_ms=report.percentile(50),
            p95_ms=report.percentile(95),
            p99_ms=report.percentile(99),
            wall_qps=report.throughput_qps(),
            pages_per_query=report.pages / n,
            modelled_qps=qps,
            mean_batch_size=report.mean_batch_size,
            modelled_speedup=qps / base_qps if base_qps else float("inf"),
        )
    return table
