"""Sequential-scan baseline.

The theoretical results the paper builds on ([BBKK 97]) show that in high
dimensions index-based NN search degenerates toward reading most of the
database — i.e. toward this baseline.  The scan stores points densely in
pages of the same size as the index blocks, so its page-access counts are
directly comparable.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..geometry.distance import distances_to_points
from ..storage.page import DEFAULT_PAGE_SIZE, PageManager
from .nnsearch import NNResult

__all__ = ["LinearScan"]


class LinearScan:
    """A paged flat file of points with full-scan query operators."""

    def __init__(
        self,
        points: np.ndarray,
        page_manager: "PageManager | None" = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = 0,
    ):
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self.dim = pts.shape[1]
        self.pages = page_manager or PageManager(page_size, cache_pages)
        per_page = self.pages.entries_per_page(8 * self.dim + 8)
        self._page_ids: List[int] = []
        self._offsets: List[int] = []  # first global row id of each page
        for start in range(0, pts.shape[0], per_page):
            chunk = pts[start:start + per_page].copy()
            self._page_ids.append(self.pages.allocate(chunk))
            self._offsets.append(start)
        self.n_points = pts.shape[0]

    def __len__(self) -> int:
        return self.n_points

    def nearest(self, query: Sequence[float]) -> NNResult:
        """Exact nearest neighbor by scanning every page."""
        return self.k_nearest(query, k=1)

    def k_nearest(self, query: Sequence[float], k: int) -> NNResult:
        """Exact k-nearest neighbors by scanning every page."""
        if k < 1:
            raise ValueError("k must be >= 1")
        q = np.asarray(query, dtype=np.float64)
        result = NNResult()
        best_ids: "List[int]" = []
        best_sq: "List[float]" = []
        for page_id, offset in zip(self._page_ids, self._offsets):
            before = self.pages.stats.logical_reads
            chunk = self.pages.read(page_id)
            result.pages += self.pages.stats.logical_reads - before
            dist_sq = distances_to_points(q, chunk)
            result.distance_computations += chunk.shape[0]
            for local_idx in np.argsort(dist_sq)[:k]:
                best_ids.append(offset + int(local_idx))
                best_sq.append(float(dist_sq[local_idx]))
        order = np.argsort(best_sq)[:k]
        result.ids = [best_ids[i] for i in order]
        result.distances = [float(np.sqrt(best_sq[i])) for i in order]
        return result

    def within_radius(self, center: Sequence[float], radius: float) -> np.ndarray:
        """Ids of all points within Euclidean distance ``radius``."""
        c = np.asarray(center, dtype=np.float64)
        r_sq = radius * radius + 1e-12
        hits: "List[int]" = []
        for page_id, offset in zip(self._page_ids, self._offsets):
            chunk = self.pages.read(page_id)
            dist_sq = distances_to_points(c, chunk)
            hits.extend(offset + int(i) for i in np.flatnonzero(dist_sq <= r_sq))
        return np.asarray(hits, dtype=np.int64)
