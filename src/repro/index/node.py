"""Shared node representation for the R-tree family (R*-tree, X-tree).

A node is a flat, vectorised record: ``(n, d)`` arrays of entry MBR bounds
plus an ``(n,)`` id vector.  For directory nodes the ids are child page
ids; for leaves they are object ids (database point ids, or NN-cell owner
ids in the solution-space index).  Nodes live inside
:class:`repro.storage.PageManager` pages so every traversal step is a
counted page access.

Entries are manipulated with copy-on-write style helpers; tree logic never
mutates bound arrays in place, which keeps snapshots (e.g. for forced
reinsert) trivially correct.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..geometry.mbr import MBR

__all__ = ["Node", "entry_bytes"]


def entry_bytes(dim: int, id_bytes: int = 8) -> int:
    """On-disk size of one node entry: two float64 bound vectors + an id."""
    return 2 * 8 * dim + id_bytes


class Node:
    """One index node (a page payload)."""

    __slots__ = ("is_leaf", "level", "lows", "highs", "ids")

    def __init__(
        self,
        is_leaf: bool,
        level: int,
        lows: np.ndarray,
        highs: np.ndarray,
        ids: np.ndarray,
    ):
        self.is_leaf = is_leaf
        self.level = level  # 0 for leaves, grows toward the root
        self.lows = np.asarray(lows, dtype=np.float64)
        self.highs = np.asarray(highs, dtype=np.float64)
        self.ids = np.asarray(ids, dtype=np.int64)
        if self.lows.shape != self.highs.shape:
            raise ValueError("entry bound arrays must have equal shapes")
        if self.lows.ndim != 2:
            raise ValueError("entry bounds must be (n, d) arrays")
        if self.ids.shape != (self.lows.shape[0],):
            raise ValueError("ids must have one entry per bound row")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, is_leaf: bool, level: int, dim: int) -> "Node":
        return cls(
            is_leaf,
            level,
            np.zeros((0, dim)),
            np.zeros((0, dim)),
            np.zeros(0, dtype=np.int64),
        )

    @property
    def n_entries(self) -> int:
        return self.lows.shape[0]

    @property
    def dim(self) -> int:
        return self.lows.shape[1]

    def mbr(self) -> MBR:
        """Tight bounding rectangle over all entries."""
        if self.n_entries == 0:
            raise ValueError("empty node has no MBR")
        return MBR(self.lows.min(axis=0), self.highs.max(axis=0))

    # ------------------------------------------------------------------
    # Entry manipulation (returns new arrays; the node object is reused)
    # ------------------------------------------------------------------
    def append(self, low: np.ndarray, high: np.ndarray, entry_id: int) -> None:
        """Add one entry at the end."""
        self.lows = np.vstack([self.lows, np.asarray(low, dtype=np.float64)])
        self.highs = np.vstack([self.highs, np.asarray(high, dtype=np.float64)])
        self.ids = np.append(self.ids, np.int64(entry_id))

    def extend(
        self, lows: np.ndarray, highs: np.ndarray, ids: Sequence[int]
    ) -> None:
        """Add several entries at once."""
        self.lows = np.vstack([self.lows, np.asarray(lows, dtype=np.float64)])
        self.highs = np.vstack([self.highs, np.asarray(highs, dtype=np.float64)])
        self.ids = np.concatenate([self.ids, np.asarray(ids, dtype=np.int64)])

    def take(self, indices: "np.ndarray | Sequence[int]") -> "Node":
        """New node with the selected entries (same leaf-ness and level)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Node(
            self.is_leaf,
            self.level,
            self.lows[idx].copy(),
            self.highs[idx].copy(),
            self.ids[idx].copy(),
        )

    def remove_at(self, index: int) -> None:
        """Delete the entry at position ``index``."""
        keep = np.arange(self.n_entries) != index
        self.lows = self.lows[keep]
        self.highs = self.highs[keep]
        self.ids = self.ids[keep]

    def replace_at(
        self, index: int, low: np.ndarray, high: np.ndarray, entry_id: int
    ) -> None:
        """Overwrite the entry at ``index`` with new bounds and id."""
        if not 0 <= index < self.n_entries:
            raise IndexError(f"entry index {index} out of range")
        lows = self.lows.copy()
        highs = self.highs.copy()
        lows[index] = low
        highs[index] = high
        self.lows = lows
        self.highs = highs
        ids = self.ids.copy()
        ids[index] = entry_id
        self.ids = ids

    def find_child(self, child_id: int) -> int:
        """Index of the entry pointing at ``child_id`` (directory nodes)."""
        matches = np.flatnonzero(self.ids == child_id)
        if matches.size == 0:
            raise KeyError(f"child {child_id} not found in node")
        return int(matches[0])

    def entries(self) -> "Iterable[tuple[np.ndarray, np.ndarray, int]]":
        """Iterate ``(low, high, id)`` triples."""
        for i in range(self.n_entries):
            yield self.lows[i], self.highs[i], int(self.ids[i])

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "dir"
        return f"Node({kind}, level={self.level}, n_entries={self.n_entries})"
