"""Sort-Tile-Recursive (STR) bulk loading for the R-tree family.

The paper builds its indexes by repeated insertion (1998-era C++ made that
cheap).  In pure Python, one-by-one insertion of tens of thousands of
rectangles dominates experiment runtime, so the benchmark harness bulk
loads with STR (Leutenegger, Lopez & Edgington, ICDE 1997): entries are
sorted and tiled into slabs recursively per dimension, packing nodes to a
configurable fill grade, then the directory is built bottom-up the same
way.  Dynamic insertion remains available and is what the dynamic-update
experiments use.

**Invariant (load-bearing for** :mod:`repro.engine.parallel` **):** bulk
loading is a pure function of its inputs — identical entries in
identical order produce an identical tree.  Every build worker rebuilds
its data tree through this path, and the engine's bit-identical parity
guarantee (docs/scaling.md) breaks if any tie-break here becomes
order- or scheduling-dependent.  ``tests/engine/test_parallel_build.py``
pins this down to the node bytes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .node import Node
from .rstar import RStarTree

__all__ = ["bulk_load", "DEFAULT_FILL"]

DEFAULT_FILL = 0.75


def bulk_load(
    tree: RStarTree,
    lows: np.ndarray,
    highs: np.ndarray,
    ids: Sequence[int],
    fill: float = DEFAULT_FILL,
) -> RStarTree:
    """Fill an *empty* tree with the given entries using STR packing.

    Returns the tree for chaining.  Node occupancy targets
    ``fill * max_entries`` but never drops below the tree's minimum fill
    grade, so the result satisfies every structural invariant of
    :meth:`RStarTree.validate`.
    """
    lows = np.atleast_2d(np.asarray(lows, dtype=np.float64))
    highs = np.atleast_2d(np.asarray(highs, dtype=np.float64))
    ids_arr = np.asarray(ids, dtype=np.int64)
    if tree.n_entries != 0:
        raise ValueError("bulk_load requires an empty tree")
    if lows.shape != highs.shape or lows.shape[0] != ids_arr.shape[0]:
        raise ValueError("lows, highs and ids must agree in length")
    if lows.shape[1] != tree.dim:
        raise ValueError(f"entries must be {tree.dim}-dimensional")
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be within (0, 1]")
    n = lows.shape[0]
    if n == 0:
        return tree

    capacity = max(2, int(fill * tree.max_entries))
    capacity = max(capacity, tree.min_entries)
    leaf_capacity = max(2, int(fill * tree.leaf_max_entries))
    leaf_capacity = max(leaf_capacity, tree.leaf_min_entries)

    # ----- leaf level ------------------------------------------------
    centers = (lows + highs) / 2.0
    groups = _str_groups(
        centers,
        np.arange(n),
        leaf_capacity,
        tree.leaf_min_entries,
        list(range(tree.dim)),
    )
    level_nodes: "List[Node]" = [
        Node(True, 0, lows[g], highs[g], ids_arr[g]) for g in groups
    ]
    level_ids = [
        tree.pages.allocate(node, n_blocks=tree._blocks_for(node))
        for node in level_nodes
    ]

    # ----- directory levels ------------------------------------------
    level = 0
    while len(level_nodes) > 1:
        level += 1
        mbr_lows = np.stack([node.mbr().low for node in level_nodes])
        mbr_highs = np.stack([node.mbr().high for node in level_nodes])
        child_ids = np.asarray(level_ids, dtype=np.int64)
        centers = (mbr_lows + mbr_highs) / 2.0
        groups = _str_groups(
            centers,
            np.arange(len(level_nodes)),
            capacity,
            tree.min_entries,
            list(range(tree.dim)),
        )
        level_nodes = [
            Node(False, level, mbr_lows[g], mbr_highs[g], child_ids[g])
            for g in groups
        ]
        level_ids = [
            tree.pages.allocate(node, n_blocks=tree._blocks_for(node))
            for node in level_nodes
        ]

    tree.pages.free(tree.root_id)
    tree.root_id = level_ids[0]
    tree.height = level + 1
    tree.n_entries = n
    return tree


def _str_groups(
    centers: np.ndarray,
    indices: np.ndarray,
    capacity: int,
    min_entries: int,
    dims: List[int],
) -> "List[np.ndarray]":
    """Tile ``indices`` into groups of at most ``capacity`` entries.

    Sorts along ``dims[0]``, slices into ``ceil(P^(1/k))`` slabs (``P`` the
    number of pages still needed, ``k`` the remaining dimensions) and
    recurses; the last dimension chops runs directly.  Group sizes are
    balanced so no group falls below ``min_entries`` (except a single
    root-sized group).
    """
    n = indices.shape[0]
    if n <= capacity:
        return [indices]
    order = indices[np.argsort(centers[indices, dims[0]], kind="stable")]
    pages_needed = -(-n // capacity)
    if len(dims) == 1 or pages_needed <= 1:
        return _balanced_chunks(order, capacity, min_entries)
    slabs = int(np.ceil(pages_needed ** (1.0 / len(dims))))
    slab_chunks = _balanced_chunks(order, -(-n // slabs), min_entries)
    groups: "List[np.ndarray]" = []
    for slab in slab_chunks:
        groups.extend(
            _str_groups(centers, slab, capacity, min_entries, dims[1:])
        )
    return groups


def _balanced_chunks(
    order: np.ndarray, capacity: int, min_entries: int
) -> "List[np.ndarray]":
    """Split ``order`` into contiguous chunks of balanced sizes that are
    at most ``capacity`` and (where possible) at least ``min_entries``."""
    n = order.shape[0]
    n_chunks = -(-n // capacity)
    # Shrinking the chunk count keeps every balanced chunk >= min_entries.
    while n_chunks > 1 and n // n_chunks < min_entries:
        n_chunks -= 1
    return [chunk for chunk in np.array_split(order, n_chunks) if chunk.size]
