"""Nearest-neighbor search on R-tree-family indexes.

Two classic algorithms, both benchmarked by the paper as the state of the
art it improves on:

* :func:`rkv_nearest` — the depth-first branch-and-bound of Roussopoulos,
  Kelley & Vincent (SIGMOD 1995).  Children are visited in MINDIST order;
  MINMAXDIST supplies an upper bound that prunes branches early.  The
  paper notes that the required *sorting of the nodes according to the
  min-max distance* is what makes the X-tree's NN query CPU-heavy — this
  implementation reproduces that cost profile.

* :func:`hs_nearest` — the best-first incremental algorithm of Hjaltason
  & Samet (SSD 1995), driven by a global priority queue on MINDIST.  It
  is I/O-optimal and generalises directly to k-NN / ranking queries.

Both operate on any :class:`repro.index.rstar.RStarTree` (hence also the
X-tree) whose leaf entries are data points stored as degenerate
rectangles, and report the page accesses and distance computations they
performed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..geometry.distance import mindist_sq_arrays, minmaxdist_sq_arrays
from ..obs import metrics
from ..obs.tracing import span
from .rstar import RStarTree

__all__ = ["NNResult", "rkv_nearest", "hs_nearest", "hs_k_nearest"]


@dataclass
class NNResult:
    """Outcome of a (k-)NN query on an index.

    ``ids``/``distances`` are ordered by increasing distance.  ``pages``
    counts logical page (block) reads, ``distance_computations`` counts
    point-distance evaluations — the two axes of Figure 9 of the paper.
    """

    ids: List[int] = field(default_factory=list)
    distances: List[float] = field(default_factory=list)
    pages: int = 0
    distance_computations: int = 0

    @property
    def nearest_id(self) -> int:
        if not self.ids:
            raise ValueError("query produced no result (empty index?)")
        return self.ids[0]

    @property
    def nearest_distance(self) -> float:
        if not self.distances:
            raise ValueError("query produced no result (empty index?)")
        return self.distances[0]


def rkv_nearest(tree: RStarTree, query: Sequence[float]) -> NNResult:
    """Branch-and-bound nearest neighbor (Roussopoulos et al., 1995)."""
    q = np.asarray(query, dtype=np.float64)
    result = NNResult()
    state = {"best_sq": np.inf, "best_id": -1}

    def visit(page_id: int) -> None:
        before = tree.pages.stats.logical_reads
        node = tree._read(page_id)
        result.pages += tree.pages.stats.logical_reads - before
        metrics.inc("search.node_visits")
        if node.n_entries == 0:
            return
        if node.is_leaf:
            dist_sq = mindist_sq_arrays(q, node.lows, node.highs)
            result.distance_computations += node.n_entries
            idx = int(np.argmin(dist_sq))
            # Non-strict: the MINMAXDIST bound may already equal the true
            # nearest distance (e.g. a single-entry leaf), and the entry
            # achieving it must still be recorded.
            if dist_sq[idx] <= state["best_sq"]:
                state["best_sq"] = float(dist_sq[idx])
                state["best_id"] = int(node.ids[idx])
            return
        mindists = mindist_sq_arrays(q, node.lows, node.highs)
        minmaxdists = minmaxdist_sq_arrays(q, node.lows, node.highs)
        # MINMAXDIST guarantees an object within that distance, so it
        # tightens the global upper bound before any child is expanded.
        # Relative epsilon slack: the bound and the later exact distance
        # are computed by different float expressions, and the guaranteed
        # object must not be rejected by a last-ulp difference.
        best_upper = float(np.min(minmaxdists))
        best_upper += 1e-12 * (1.0 + best_upper)
        if best_upper < state["best_sq"]:
            state["best_sq"] = best_upper
            # No id yet: the guaranteed object is discovered on descent.
        order = np.argsort(mindists)
        for child_pos in order:
            if mindists[child_pos] > state["best_sq"] + 1e-12:
                break  # sorted: every later child is pruned too
            visit(int(node.ids[child_pos]))

    with span("search.rkv") as s:
        visit(tree.root_id)
        s.set("pages", result.pages)
        s.set("distance_computations", result.distance_computations)
    metrics.inc("search.queries")
    metrics.inc("search.distance_computations", result.distance_computations)
    if state["best_id"] >= 0:
        result.ids = [state["best_id"]]
        result.distances = [float(np.sqrt(state["best_sq"]))]
    return result


def hs_nearest(tree: RStarTree, query: Sequence[float]) -> NNResult:
    """Best-first nearest neighbor (Hjaltason & Samet, 1995)."""
    return hs_k_nearest(tree, query, k=1)


def hs_k_nearest(tree: RStarTree, query: Sequence[float], k: int) -> NNResult:
    """Best-first k-nearest neighbors on a global MINDIST priority queue."""
    if k < 1:
        raise ValueError("k must be >= 1")
    q = np.asarray(query, dtype=np.float64)
    result = NNResult()
    counter = 0  # heap tie-break
    # Heap items: (mindist_sq, counter, kind, payload); kind 0 = node page,
    # kind 1 = data entry.
    heap: "List[tuple[float, int, int, int]]" = [(0.0, counter, 0, tree.root_id)]
    with span("search.hs", k=k) as s:
        while heap and len(result.ids) < k:
            dist_sq, __, kind, payload = heapq.heappop(heap)
            if kind == 1:
                result.ids.append(payload)
                result.distances.append(float(np.sqrt(dist_sq)))
                continue
            before = tree.pages.stats.logical_reads
            node = tree._read(payload)
            result.pages += tree.pages.stats.logical_reads - before
            metrics.inc("search.node_visits")
            if node.n_entries == 0:
                continue
            dists = mindist_sq_arrays(q, node.lows, node.highs)
            if node.is_leaf:
                result.distance_computations += node.n_entries
            for i in range(node.n_entries):
                counter += 1
                heapq.heappush(
                    heap,
                    (float(dists[i]), counter, int(node.is_leaf),
                     int(node.ids[i])),
                )
        s.set("pages", result.pages)
        s.set("distance_computations", result.distance_computations)
    metrics.inc("search.queries")
    metrics.inc("search.distance_computations", result.distance_computations)
    return result
