"""Hilbert-curve bulk loading (packed R-tree variant).

An alternative to the STR packing in :mod:`repro.index.bulk`: entries are
sorted along the Hilbert space-filling curve of their centres (Kamel &
Faloutsos' Hilbert-packed R-tree) and cut into consecutive runs.  Hilbert
ordering preserves locality better than per-dimension tiling on clustered
data, which shows up as slightly tighter leaf regions; the decomposition
ablation bench compares both packings.

The Hilbert index is computed with the classic Butz/Lawder bit
transposition algorithm, implemented here for arbitrary dimensionality
and precision (no lookup tables).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .bulk import DEFAULT_FILL, _balanced_chunks
from .node import Node
from .rstar import RStarTree

__all__ = ["hilbert_indices", "hilbert_bulk_load"]


def hilbert_indices(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Hilbert-curve index of each row of ``points`` (unit-cube data).

    ``bits`` is the per-dimension precision; the result fits in signed
    64-bit integers as long as ``bits * dim <= 62``.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, dim = pts.shape
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if bits * dim > 62:
        raise ValueError(
            f"bits * dim = {bits * dim} exceeds the 64-bit key budget"
        )
    grid = np.clip((pts * (1 << bits)).astype(np.int64), 0, (1 << bits) - 1)
    keys = np.empty(n, dtype=np.int64)
    for row in range(n):
        keys[row] = _hilbert_key(grid[row].tolist(), bits)
    return keys


def _hilbert_key(coords: "List[int]", bits: int) -> int:
    """Point -> Hilbert index (Skilling's transposition algorithm)."""
    dim = len(coords)
    x = list(coords)
    # Inverse undo of the Gray-code transform (Skilling 2004).
    m = 1 << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            if x[i] & q:
                x[0] ^= p  # invert low bits of x[0]
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, dim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dim):
        x[i] ^= t
    # Interleave the transposed bits into a single key.
    key = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(dim):
            key = (key << 1) | ((x[i] >> bit) & 1)
    return key


def hilbert_bulk_load(
    tree: RStarTree,
    lows: np.ndarray,
    highs: np.ndarray,
    ids: Sequence[int],
    fill: float = DEFAULT_FILL,
    bits: int = 10,
) -> RStarTree:
    """Fill an empty tree with entries packed in Hilbert order."""
    lows = np.atleast_2d(np.asarray(lows, dtype=np.float64))
    highs = np.atleast_2d(np.asarray(highs, dtype=np.float64))
    ids_arr = np.asarray(ids, dtype=np.int64)
    if tree.n_entries != 0:
        raise ValueError("hilbert_bulk_load requires an empty tree")
    if lows.shape != highs.shape or lows.shape[0] != ids_arr.shape[0]:
        raise ValueError("lows, highs and ids must agree in length")
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be within (0, 1]")
    n = lows.shape[0]
    if n == 0:
        return tree
    bits = min(bits, max(1, 62 // lows.shape[1]))

    centers = (lows + highs) / 2.0
    order = np.argsort(hilbert_indices(centers, bits=bits), kind="stable")

    leaf_capacity = max(2, int(fill * tree.leaf_max_entries))
    leaf_capacity = max(leaf_capacity, tree.leaf_min_entries)
    groups = _balanced_chunks(order, leaf_capacity, tree.leaf_min_entries)
    level_nodes = [Node(True, 0, lows[g], highs[g], ids_arr[g]) for g in groups]
    level_ids = [
        tree.pages.allocate(node, n_blocks=tree._blocks_for(node))
        for node in level_nodes
    ]

    capacity = max(2, int(fill * tree.max_entries))
    capacity = max(capacity, tree.min_entries)
    level = 0
    while len(level_nodes) > 1:
        level += 1
        mbr_lows = np.stack([node.mbr().low for node in level_nodes])
        mbr_highs = np.stack([node.mbr().high for node in level_nodes])
        child_ids = np.asarray(level_ids, dtype=np.int64)
        # Children are already in curve order: consecutive runs suffice.
        order = np.arange(len(level_nodes))
        groups = _balanced_chunks(order, capacity, tree.min_entries)
        level_nodes = [
            Node(False, level, mbr_lows[g], mbr_highs[g], child_ids[g])
            for g in groups
        ]
        level_ids = [
            tree.pages.allocate(node, n_blocks=tree._blocks_for(node))
            for node in level_nodes
        ]

    tree.pages.free(tree.root_id)
    tree.root_id = level_ids[0]
    tree.height = level + 1
    tree.n_entries = n
    return tree
