"""R*-tree (Beckmann, Kriegel, Schneider & Seeger, SIGMOD 1990).

The paper benchmarks the NN-cell approach against NN search on the R*-tree
and on the X-tree; the R*-tree is also the substrate the solution-space
index is built on (the X-tree in :mod:`repro.index.xtree` subclasses this
implementation).

Implemented faithfully:

* **ChooseSubtree** — minimum overlap enlargement at the leaf level,
  minimum area enlargement above, with the usual tie-breaks;
* **Forced reinsert** — on the first overflow per level per insertion, the
  30 % of entries farthest from the node centre are reinserted;
* **Topological split** — split axis by minimum margin sum, split index by
  minimum overlap (ties: minimum area);
* **Condense on delete** — underflowing nodes are dissolved and their
  entries reinserted at their original level.

Nodes are pages of a :class:`repro.storage.PageManager`; node fan-out is
derived from the page size (4 KB by default, as in the paper) and the entry
byte size, so page-access counts follow the data dimensionality exactly as
they would on disk.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.mbr import MBR
from ..obs import metrics
from ..storage.page import DEFAULT_PAGE_SIZE, PageManager
from .node import Node, entry_bytes

__all__ = ["RStarTree", "REINSERT_FRACTION"]

REINSERT_FRACTION = 0.3  # the R*-tree paper's p = 30 %


class RStarTree:
    """A disk-block R*-tree over ``dim``-dimensional rectangles.

    Entries are ``(low, high, entry_id)`` triples; data *points* are stored
    as degenerate rectangles.  ``entry_id`` values need not be unique —
    the decomposed NN-cell index stores several rectangles per cell — but
    deletion then requires the exact rectangle (:meth:`delete`).
    """

    #: fraction of the maximum fan-out used as the minimum fill grade
    MIN_FILL = 0.4

    def __init__(
        self,
        dim: int,
        page_manager: "PageManager | None" = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = 0,
        max_entries: "int | None" = None,
        leaf_entry_bytes: "int | None" = None,
    ):
        """``leaf_entry_bytes`` sizes the *payload* of one leaf entry on
        disk: a data tree storing points passes ``8 * dim + 8`` (the paper
        stores points, not rectangles, on data pages), the NN-cell index
        passes ``3 * 8 * dim + 8`` (cell MBR plus the owner's coordinates).
        Directory entries are always rectangles (``entry_bytes(dim)``).
        Defaults to the directory entry size."""
        if dim < 1:
            raise ValueError("dimension must be positive")
        self.dim = dim
        self.pages = page_manager or PageManager(page_size, cache_pages)
        if max_entries is None:
            max_entries = self.pages.entries_per_page(entry_bytes(dim))
        if max_entries < 4:
            max_entries = 4
        self.max_entries = max_entries
        self.min_entries = max(2, int(self.MIN_FILL * max_entries))
        if leaf_entry_bytes is None:
            leaf_max = max_entries
        else:
            leaf_max = max(4, self.pages.entries_per_page(leaf_entry_bytes))
        self.leaf_max_entries = leaf_max
        self.leaf_min_entries = max(2, int(self.MIN_FILL * leaf_max))
        self.height = 1
        self.n_entries = 0
        self.root_id = self.pages.allocate(Node.empty(True, 0, dim))

    # ==================================================================
    # Page helpers
    # ==================================================================
    def _read(self, page_id: int) -> Node:
        return self.pages.read(page_id)

    def _write(self, page_id: int, node: Node) -> None:
        self.pages.write(page_id, node, n_blocks=self._write_blocks(page_id))

    def _write_blocks(self, page_id: int) -> int:
        """Block count to record when rewriting an existing page.  The
        X-tree preserves supernode sizes here; plain R*-nodes are always
        one block."""
        return 1

    def _blocks_for(self, node: Node) -> int:
        """Block count of a freshly created node (allocation and split
        install paths).  Always one block: supernodes only arise through
        the X-tree's explicit grow step."""
        return 1

    def _node_capacity(self, page_id: int, node: Node) -> int:
        """Maximum entries of the node on ``page_id`` (X-tree supernodes
        override this)."""
        return self.leaf_max_entries if node.is_leaf else self.max_entries

    def _min_for(self, node: Node) -> int:
        """Minimum fill grade of a node of this kind."""
        return self.leaf_min_entries if node.is_leaf else self.min_entries

    # ==================================================================
    # Insertion
    # ==================================================================
    def insert(
        self, low: Sequence[float], high: Sequence[float], entry_id: int
    ) -> None:
        """Insert one rectangle entry."""
        low_arr = np.asarray(low, dtype=np.float64)
        high_arr = np.asarray(high, dtype=np.float64)
        if low_arr.shape != (self.dim,) or high_arr.shape != (self.dim,):
            raise ValueError(f"entry bounds must be {self.dim}-vectors")
        if np.any(low_arr > high_arr):
            raise ValueError("entry low bound exceeds high bound")
        reinserted: Set[int] = set()
        self._insert_at_level(low_arr, high_arr, int(entry_id), 0, reinserted)
        self.n_entries += 1

    def insert_point(self, point: Sequence[float], entry_id: int) -> None:
        """Insert a data point (degenerate rectangle)."""
        self.insert(point, point, entry_id)

    def insert_many(self, lows: np.ndarray, highs: np.ndarray,
                    ids: Sequence[int]) -> None:
        """Insert entries one by one (dynamic path; see
        :mod:`repro.index.bulk` for fast bulk loading)."""
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        for i, entry_id in enumerate(ids):
            self.insert(lows[i], highs[i], entry_id)

    def _insert_at_level(
        self,
        low: np.ndarray,
        high: np.ndarray,
        entry_id: int,
        target_level: int,
        reinserted_levels: Set[int],
    ) -> None:
        path = self._choose_path(low, high, target_level)
        node_id = path[-1]
        node = self._read(node_id)
        node.append(low, high, entry_id)
        self._write(node_id, node)
        self._adjust_upward(path)
        self._handle_overflow(path, reinserted_levels)

    def _choose_path(
        self, low: np.ndarray, high: np.ndarray, target_level: int
    ) -> List[int]:
        """Page ids from the root down to a node at ``target_level``."""
        path = [self.root_id]
        node = self._read(self.root_id)
        while node.level > target_level:
            child_idx = self._choose_subtree(node, low, high)
            child_id = int(node.ids[child_idx])
            path.append(child_id)
            node = self._read(child_id)
        return path

    def _choose_subtree(
        self, node: Node, low: np.ndarray, high: np.ndarray
    ) -> int:
        """R* ChooseSubtree: index of the child entry to descend into."""
        lows, highs = node.lows, node.highs
        enl_lows = np.minimum(lows, low)
        enl_highs = np.maximum(highs, high)
        areas = np.prod(highs - lows, axis=1)
        enl_areas = np.prod(enl_highs - enl_lows, axis=1)
        area_enlarge = enl_areas - areas

        if node.level == 1:  # children are leaves: minimum overlap cost
            overlap_delta = self._overlap_enlargements(
                lows, highs, enl_lows, enl_highs
            )
            order = np.lexsort((areas, area_enlarge, overlap_delta))
        else:
            order = np.lexsort((areas, area_enlarge))
        return int(order[0])

    @staticmethod
    def _overlap_enlargements(
        lows: np.ndarray,
        highs: np.ndarray,
        enl_lows: np.ndarray,
        enl_highs: np.ndarray,
    ) -> np.ndarray:
        """For each entry j: how much the overlap with its siblings grows
        when j is enlarged to cover the new rectangle."""
        n = lows.shape[0]
        deltas = np.zeros(n)
        for j in range(n):
            old_sides = np.minimum(highs, highs[j]) - np.maximum(lows, lows[j])
            new_sides = np.minimum(highs, enl_highs[j]) - np.maximum(
                lows, enl_lows[j]
            )
            old_ov = np.prod(np.clip(old_sides, 0.0, None), axis=1)
            new_ov = np.prod(np.clip(new_sides, 0.0, None), axis=1)
            diff = new_ov - old_ov
            diff[j] = 0.0
            deltas[j] = float(np.sum(diff))
        return deltas

    def _adjust_upward(self, path: List[int]) -> None:
        """Recompute parent entry MBRs along ``path`` (bottom-up)."""
        for depth in range(len(path) - 1, 0, -1):
            child_id = path[depth]
            parent_id = path[depth - 1]
            child = self._read(child_id)
            parent = self._read(parent_id)
            idx = parent.find_child(child_id)
            child_mbr = child.mbr()
            if (
                np.array_equal(parent.lows[idx], child_mbr.low)
                and np.array_equal(parent.highs[idx], child_mbr.high)
            ):
                continue
            parent.replace_at(idx, child_mbr.low, child_mbr.high, child_id)
            self._write(parent_id, parent)

    # ------------------------------------------------------------------
    # Overflow: forced reinsert, then split
    # ------------------------------------------------------------------
    def _handle_overflow(
        self, path: List[int], reinserted_levels: Set[int]
    ) -> None:
        depth = len(path) - 1
        while depth >= 0:
            node_id = path[depth]
            node = self._read(node_id)
            if node.n_entries <= self._node_capacity(node_id, node):
                depth -= 1
                continue
            is_root = node_id == self.root_id
            if not is_root and node.level not in reinserted_levels:
                reinserted_levels.add(node.level)
                self._reinsert(path[: depth + 1], reinserted_levels)
                # Reinsertion may have restructured the tree; the path is
                # stale, so stop — any remaining overflow was handled by
                # the recursive inserts.
                return
            self._split(path[: depth + 1], reinserted_levels)
            return
        return

    def _reinsert(self, path: List[int], reinserted_levels: Set[int]) -> None:
        """Forced reinsert of the entries farthest from the node centre."""
        node_id = path[-1]
        node = self._read(node_id)
        center = node.mbr().center
        entry_centers = (node.lows + node.highs) / 2.0
        dist_sq = np.sum((entry_centers - center) ** 2, axis=1)
        p = max(1, int(REINSERT_FRACTION * node.n_entries))
        order = np.argsort(dist_sq)  # close ... far
        keep_idx = order[: node.n_entries - p]
        toss_idx = order[node.n_entries - p:]
        tossed = node.take(toss_idx)
        kept = node.take(keep_idx)
        self._write(node_id, kept)
        self._adjust_upward(path)
        # Close reinsert: nearest removed entries first.
        for low, high, entry_id in tossed.entries():
            self._insert_at_level(
                low, high, entry_id, tossed.level, reinserted_levels
            )

    def _split(self, path: List[int], reinserted_levels: Set[int]) -> None:
        node_id = path[-1]
        node = self._read(node_id)
        group1, group2 = self._split_node(node_id, node)
        metrics.inc("index.splits")
        self._install_split(path, node_id, group1, group2, reinserted_levels)

    def _split_node(self, node_id: int, node: Node) -> "Tuple[Node, Node]":
        """Produce the two halves of an overflowing node (R* topological
        split).  Subclasses (X-tree) override this."""
        idx1, idx2 = self._rstar_split_indices(
            node.lows, node.highs, self._min_for(node)
        )
        return node.take(idx1), node.take(idx2)

    @staticmethod
    def _rstar_split_indices(
        lows: np.ndarray, highs: np.ndarray, min_entries: int
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """R* split: returns the two index groups.

        Axis choice minimises the sum of group margins over all candidate
        distributions; the distribution on that axis minimises overlap
        volume, with total area as the tie-break.
        """
        n, dim = lows.shape
        m = min(min_entries, n // 2)
        m = max(1, m)
        ks = np.arange(m, n - m + 1)  # size of group 1

        best_axis = -1
        best_margin = np.inf
        axis_orders: "List[Tuple[np.ndarray, np.ndarray]]" = []
        for axis in range(dim):
            margin_total = 0.0
            orders = (
                np.argsort(lows[:, axis], kind="stable"),
                np.argsort(highs[:, axis], kind="stable"),
            )
            axis_orders.append(orders)
            for order in orders:
                g1_margin, g2_margin, __, __ = _distribution_stats(
                    lows[order], highs[order], ks
                )
                margin_total += float(np.sum(g1_margin + g2_margin))
            if margin_total < best_margin:
                best_margin = margin_total
                best_axis = axis

        best_score: "Tuple[float, float]" = (np.inf, np.inf)
        best_split: "Optional[Tuple[np.ndarray, int]]" = None
        for order in axis_orders[best_axis]:
            __, __, overlaps, areas = _distribution_stats(
                lows[order], highs[order], ks
            )
            for i, k in enumerate(ks):
                score = (float(overlaps[i]), float(areas[i]))
                if score < best_score:
                    best_score = score
                    best_split = (order, int(k))
        assert best_split is not None
        order, k = best_split
        return order[:k], order[k:]

    def _install_split(
        self,
        path: List[int],
        node_id: int,
        group1: Node,
        group2: Node,
        reinserted_levels: Set[int],
    ) -> None:
        """Replace ``node_id`` by the two split halves and fix the parent."""
        self.pages.write(node_id, group1, n_blocks=self._blocks_for(group1))
        new_id = self.pages.allocate(group2, n_blocks=self._blocks_for(group2))
        mbr1 = group1.mbr()
        mbr2 = group2.mbr()

        if node_id == self.root_id:
            root = Node(
                is_leaf=False,
                level=group1.level + 1,
                lows=np.stack([mbr1.low, mbr2.low]),
                highs=np.stack([mbr1.high, mbr2.high]),
                ids=np.array([node_id, new_id], dtype=np.int64),
            )
            self.root_id = self.pages.allocate(root)
            self.height += 1
            return

        parent_id = path[-2]
        parent = self._read(parent_id)
        idx = parent.find_child(node_id)
        parent.replace_at(idx, mbr1.low, mbr1.high, node_id)
        parent.append(mbr2.low, mbr2.high, new_id)
        self._write(parent_id, parent)
        self._adjust_upward(path[:-1])
        self._handle_overflow(path[:-1], reinserted_levels)

    # ==================================================================
    # Deletion
    # ==================================================================
    def delete(
        self, low: Sequence[float], high: Sequence[float], entry_id: int
    ) -> bool:
        """Delete the exact entry ``(low, high, entry_id)``.

        Returns True if the entry was found.  Underflowing nodes are
        condensed: dissolved and their entries reinserted.
        """
        low_arr = np.asarray(low, dtype=np.float64)
        high_arr = np.asarray(high, dtype=np.float64)
        path = self._find_leaf(self.root_id, low_arr, high_arr, int(entry_id))
        if path is None:
            return False
        leaf_id = path[-1]
        leaf = self._read(leaf_id)
        idx = _find_entry(leaf, low_arr, high_arr, int(entry_id))
        leaf.remove_at(idx)
        self._write(leaf_id, leaf)
        self.n_entries -= 1
        self._condense(path)
        return True

    def _find_leaf(
        self,
        page_id: int,
        low: np.ndarray,
        high: np.ndarray,
        entry_id: int,
    ) -> "Optional[List[int]]":
        node = self._read(page_id)
        if node.is_leaf:
            if _find_entry(node, low, high, entry_id, missing_ok=True) >= 0:
                return [page_id]
            return None
        covers = np.logical_and(
            np.all(node.lows <= low + 1e-12, axis=1),
            np.all(high <= node.highs + 1e-12, axis=1),
        )
        for child_idx in np.flatnonzero(covers):
            sub = self._find_leaf(int(node.ids[child_idx]), low, high, entry_id)
            if sub is not None:
                return [page_id] + sub
        return None

    def _condense(self, path: List[int]) -> None:
        """Condense-tree after a removal: dissolve underfull nodes and
        reinsert their entries, then shrink ancestor MBRs."""
        orphans: "List[Node]" = []
        for depth in range(len(path) - 1, 0, -1):
            node_id = path[depth]
            node = self._read(node_id)
            if node.n_entries < self._min_for(node):
                parent_id = path[depth - 1]
                parent = self._read(parent_id)
                parent.remove_at(parent.find_child(node_id))
                self._write(parent_id, parent)
                self.pages.free(node_id)
                if node.n_entries:
                    orphans.append(node)
            else:
                self._adjust_upward(path[: depth + 1])
        self._adjust_upward([path[0]])

        for node in orphans:
            reinserted: Set[int] = set()
            for low, high, entry_id in node.entries():
                self._insert_at_level(low, high, entry_id, node.level, reinserted)

        # Shrink the tree if the root lost all but one child.
        root = self._read(self.root_id)
        while not root.is_leaf and root.n_entries == 1:
            old_root = self.root_id
            self.root_id = int(root.ids[0])
            self.pages.free(old_root)
            self.height -= 1
            root = self._read(self.root_id)

    def update_entry(
        self,
        old_low: Sequence[float],
        old_high: Sequence[float],
        new_low: Sequence[float],
        new_high: Sequence[float],
        entry_id: int,
    ) -> None:
        """Replace an entry's rectangle (delete + reinsert)."""
        if not self.delete(old_low, old_high, entry_id):
            raise KeyError(f"entry {entry_id} with the given bounds not found")
        self.insert(new_low, new_high, entry_id)

    # ==================================================================
    # Queries
    # ==================================================================
    def point_query(
        self, point: Sequence[float], atol: float = 1e-12
    ) -> np.ndarray:
        """Ids of all entries whose rectangle contains ``point``.

        ``atol`` loosens the containment test; the NN-cell index queries
        with a small positive tolerance to absorb LP roundoff on cell
        boundaries.
        """
        q = np.asarray(point, dtype=np.float64)
        result: "List[int]" = []
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            mask = np.logical_and(
                np.all(node.lows <= q + atol, axis=1),
                np.all(q <= node.highs + atol, axis=1),
            )
            hits = np.flatnonzero(mask)
            if node.is_leaf:
                result.extend(int(node.ids[i]) for i in hits)
            else:
                stack.extend(int(node.ids[i]) for i in hits)
        return np.asarray(result, dtype=np.int64)

    def range_query(
        self, low: Sequence[float], high: Sequence[float]
    ) -> np.ndarray:
        """Ids of all entries intersecting the query rectangle."""
        rect = MBR(low, high)
        result: "List[int]" = []
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            mask = np.logical_and(
                np.all(node.lows <= rect.high + 1e-12, axis=1),
                np.all(rect.low <= node.highs + 1e-12, axis=1),
            )
            hits = np.flatnonzero(mask)
            if node.is_leaf:
                result.extend(int(node.ids[i]) for i in hits)
            else:
                stack.extend(int(node.ids[i]) for i in hits)
        return np.asarray(result, dtype=np.int64)

    def sphere_query(self, center: Sequence[float], radius: float) -> np.ndarray:
        """Ids of all entries whose rectangle intersects ``B(center, r)``."""
        c = np.asarray(center, dtype=np.float64)
        r_sq = radius * radius + 1e-12
        result: "List[int]" = []
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            nearest = np.clip(c, node.lows, node.highs)
            diff = nearest - c
            mask = np.einsum("ij,ij->i", diff, diff) <= r_sq
            hits = np.flatnonzero(mask)
            if node.is_leaf:
                result.extend(int(node.ids[i]) for i in hits)
            else:
                stack.extend(int(node.ids[i]) for i in hits)
        return np.asarray(result, dtype=np.int64)

    def leaves_containing(self, point: Sequence[float]) -> "List[Node]":
        """Leaf nodes whose *region* (node MBR) contains ``point`` — the
        paper's *Point* candidate selector reads all points stored on such
        pages."""
        return self._leaves_matching(
            lambda node_mbr: node_mbr.contains_point(point, atol=1e-12)
        )

    def leaves_intersecting_sphere(
        self, center: Sequence[float], radius: float
    ) -> "List[Node]":
        """Leaf nodes whose region intersects the sphere — the paper's
        *Sphere* candidate selector."""
        return self._leaves_matching(
            lambda node_mbr: node_mbr.intersects_sphere(center, radius)
        )

    def _leaves_matching(self, predicate: "Callable[[MBR], bool]") -> "List[Node]":
        result: "List[Node]" = []
        root = self._read(self.root_id)
        if root.n_entries == 0:
            return result
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            if node.n_entries and not predicate(node.mbr()):
                continue
            if node.is_leaf:
                result.append(node)
            else:
                stack.extend(int(i) for i in node.ids)
        return result

    # ==================================================================
    # Introspection / validation
    # ==================================================================
    def __len__(self) -> int:
        return self.n_entries

    def iter_leaf_entries(self) -> "Iterator[Tuple[np.ndarray, np.ndarray, int]]":
        """All leaf entries (validation / rebuild helper)."""
        stack = [self.root_id]
        while stack:
            node = self._read(stack.pop())
            if node.is_leaf:
                yield from node.entries()
            else:
                stack.extend(int(i) for i in node.ids)

    def iter_nodes(self) -> "Iterator[Tuple[int, Node]]":
        """Iterate ``(page_id, node)`` over the whole tree."""
        stack = [self.root_id]
        while stack:
            page_id = stack.pop()
            node = self._read(page_id)
            yield page_id, node
            if not node.is_leaf:
                stack.extend(int(i) for i in node.ids)

    def validate(self) -> None:
        """Raise AssertionError on any structural invariant violation."""
        root = self._read(self.root_id)
        assert root.level == self.height - 1, "root level != height - 1"
        total = self._validate_node(self.root_id, is_root=True)
        assert total == self.n_entries, (
            f"leaf entry count {total} != recorded {self.n_entries}"
        )

    def _validate_node(self, page_id: int, is_root: bool) -> int:
        node = self._read(page_id)
        assert node.n_entries <= self._node_capacity(page_id, node), (
            "node overflow"
        )
        if not is_root:
            assert node.n_entries >= self._min_for(node), "node underflow"
        elif not node.is_leaf:
            assert node.n_entries >= 2, "directory root with < 2 children"
        if node.is_leaf:
            assert node.level == 0, "leaf at non-zero level"
            return node.n_entries
        total = 0
        for low, high, child_id in node.entries():
            child = self._read(child_id)
            assert child.level == node.level - 1, "child level mismatch"
            child_mbr = child.mbr()
            assert np.all(low <= child_mbr.low + 1e-9), "parent MBR too tight"
            assert np.all(child_mbr.high <= high + 1e-9), "parent MBR too tight"
            assert np.allclose(low, child_mbr.low) and np.allclose(
                high, child_mbr.high
            ), "parent MBR not tight"
            total += self._validate_node(child_id, is_root=False)
        return total


# ----------------------------------------------------------------------
# Split helpers
# ----------------------------------------------------------------------

def _distribution_stats(
    sorted_lows: np.ndarray, sorted_highs: np.ndarray, ks: np.ndarray
) -> "Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Margins, overlap volumes and total areas of every split distribution.

    ``ks`` are candidate sizes of the first group over entries already in
    sort order.  Prefix/suffix cumulative bounds make this O(n d).
    """
    fwd_low = np.minimum.accumulate(sorted_lows, axis=0)
    fwd_high = np.maximum.accumulate(sorted_highs, axis=0)
    bwd_low = np.minimum.accumulate(sorted_lows[::-1], axis=0)[::-1]
    bwd_high = np.maximum.accumulate(sorted_highs[::-1], axis=0)[::-1]

    g1_low = fwd_low[ks - 1]
    g1_high = fwd_high[ks - 1]
    g2_low = bwd_low[ks]
    g2_high = bwd_high[ks]

    g1_margin = np.sum(g1_high - g1_low, axis=1)
    g2_margin = np.sum(g2_high - g2_low, axis=1)
    ov_sides = np.minimum(g1_high, g2_high) - np.maximum(g1_low, g2_low)
    overlaps = np.prod(np.clip(ov_sides, 0.0, None), axis=1)
    areas = np.prod(g1_high - g1_low, axis=1) + np.prod(g2_high - g2_low, axis=1)
    return g1_margin, g2_margin, overlaps, areas


def _find_entry(
    node: Node,
    low: np.ndarray,
    high: np.ndarray,
    entry_id: int,
    missing_ok: bool = False,
) -> int:
    matches = np.flatnonzero(
        (node.ids == entry_id)
        & np.all(np.abs(node.lows - low) <= 1e-12, axis=1)
        & np.all(np.abs(node.highs - high) <= 1e-12, axis=1)
    )
    if matches.size == 0:
        if missing_ok:
            return -1
        raise KeyError(f"entry {entry_id} not present in node")
    return int(matches[0])
