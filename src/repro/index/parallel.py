"""Simulated parallel similarity search ([Ber+ 97]).

The paper positions itself against its authors' own earlier alternative:
"One way out of this dilemma is exploiting parallelism for an efficient
nearest neighbor search as we did in [Ber+ 97]" (Berchtold, Böhm,
Braunmüller, Keim & Kriegel, *Fast Parallel Similarity Search in
Multimedia Databases*, SIGMOD 1997).  That work declusters the data
pages over ``k`` disks so a NN query fetches many pages concurrently; the
cost metric becomes the number of *parallel I/O rounds* (the maximum
pages any one disk serves) instead of total pages.

This module reproduces the comparison baseline on our simulated storage:

* :func:`round_robin_declustering` and :func:`proximity_declustering` —
  assign leaf pages to disks (naive vs. the similarity-aware strategy of
  the SIGMOD paper: pages whose regions are close should land on
  *different* disks so a query's hot region is spread evenly);
* :func:`parallel_nearest` — an HS-style best-first NN search that
  fetches, per round, the best frontier page of *every* disk, reporting
  rounds, total pages and the speed-up over serial fetching.

The point of including it here: the NN-cell paper's claim is that
precomputation beats even parallel hardware at the *algorithmic* level —
one point query instead of many rounds of expanding search.  The bench
``bench_parallel_baseline.py`` puts the three side by side.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..geometry.distance import mindist_sq_arrays
from ..obs import metrics
from .rstar import RStarTree

__all__ = [
    "ParallelNNResult",
    "round_robin_declustering",
    "proximity_declustering",
    "parallel_nearest",
]


@dataclass
class ParallelNNResult:
    """Outcome of a declustered parallel NN search."""

    ids: "List[int]" = field(default_factory=list)
    distances: "List[float]" = field(default_factory=list)
    rounds: int = 0  # parallel I/O rounds (max fetches on one disk)
    pages: int = 0  # total pages fetched across all disks
    distance_computations: int = 0

    @property
    def nearest_id(self) -> int:
        if not self.ids:
            raise ValueError("query produced no result (empty index?)")
        return self.ids[0]

    @property
    def nearest_distance(self) -> float:
        if not self.distances:
            raise ValueError("query produced no result (empty index?)")
        return self.distances[0]

    def speedup_over_serial(self) -> float:
        """Ideal parallel speed-up: serial fetches / parallel rounds."""
        if self.rounds == 0:
            return 1.0
        return self.pages / self.rounds


def _leaf_pages(tree: RStarTree) -> "List[int]":
    return [
        page_id for page_id, node in tree.iter_nodes() if node.is_leaf
    ]


def round_robin_declustering(
    tree: RStarTree, n_disks: int
) -> "Dict[int, int]":
    """Assign leaf pages to disks in page-id order (the naive baseline)."""
    if n_disks < 1:
        raise ValueError("n_disks must be >= 1")
    return {
        page_id: i % n_disks
        for i, page_id in enumerate(sorted(_leaf_pages(tree)))
    }


def proximity_declustering(
    tree: RStarTree, n_disks: int
) -> "Dict[int, int]":
    """Similarity-aware declustering ([Ber+ 97] strategy, greedy form).

    Pages are processed in Z-order of their region centres; each page is
    placed on the disk least used among its ``n_disks - 1`` predecessors,
    so neighboring regions — the ones a NN query co-fetches — end up on
    different disks.
    """
    if n_disks < 1:
        raise ValueError("n_disks must be >= 1")
    pages = _leaf_pages(tree)
    if not pages:
        return {}
    centers = []
    for page_id in pages:
        node = tree._read(page_id)
        centers.append(node.mbr().center)
    order = np.argsort(_z_order_keys(np.stack(centers)))
    assignment: "Dict[int, int]" = {}
    recent: "List[int]" = []  # disks of the last n_disks - 1 pages
    for pos in order:
        page_id = pages[int(pos)]
        banned = set(recent[-(n_disks - 1):]) if n_disks > 1 else set()
        candidates = [d for d in range(n_disks) if d not in banned]
        if not candidates:
            candidates = list(range(n_disks))
        loads = {d: sum(1 for v in assignment.values() if v == d)
                 for d in candidates}
        disk = min(candidates, key=lambda d: loads[d])
        assignment[page_id] = disk
        recent.append(disk)
    return assignment


def _z_order_keys(centers: np.ndarray, bits: int = 10) -> np.ndarray:
    """Morton (Z-order) keys of points in the unit cube."""
    n, dim = centers.shape
    grid = np.clip((centers * (1 << bits)).astype(np.int64), 0,
                   (1 << bits) - 1)
    keys = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        for axis in range(dim):
            keys |= ((grid[:, axis] >> bit) & 1) << (bit * dim + axis)
    return keys


def parallel_nearest(
    tree: RStarTree,
    query: Sequence[float],
    assignment: "Dict[int, int]",
    n_disks: int,
) -> ParallelNNResult:
    """Best-first NN search fetching one page per disk per round.

    Directory pages are assumed cached (the [Ber+ 97] setting: the
    directory fits in memory; the disks serve data pages).  Each round
    pops, for every disk, its most promising frontier leaf (smallest
    MINDIST) — all fetched concurrently — and the search stops once the
    best unfetched frontier entry cannot beat the current best point.
    """
    if n_disks < 1:
        raise ValueError("n_disks must be >= 1")
    q = np.asarray(query, dtype=np.float64)
    result = ParallelNNResult()

    # Collect the leaf frontier from the (in-memory) directory.
    frontier: "List[tuple[float, int, int]]" = []  # (mindist, counter, page)
    counter = 0
    stack = [tree.root_id]
    root = tree._read(tree.root_id)
    if root.is_leaf:
        frontier.append((0.0, counter, tree.root_id))
    else:
        while stack:
            node = tree._read(stack.pop())
            if node.n_entries == 0:
                continue
            dists = mindist_sq_arrays(q, node.lows, node.highs)
            for i in range(node.n_entries):
                child_id = int(node.ids[i])
                if node.level == 1:  # children are leaves
                    counter += 1
                    frontier.append((float(dists[i]), counter, child_id))
                else:
                    stack.append(child_id)
    heapq.heapify(frontier)

    best_sq = np.inf
    best_id = -1
    while frontier and frontier[0][0] <= best_sq + 1e-12:
        # One round: the best frontier page of each disk, concurrently.
        fetched: "List[int]" = []
        skipped: "List[tuple[float, int, int]]" = []
        busy: "set[int]" = set()
        while frontier and len(busy) < n_disks:
            mindist, cnt, page_id = heapq.heappop(frontier)
            if mindist > best_sq + 1e-12:
                break
            disk = assignment.get(page_id, 0)
            if disk in busy:
                skipped.append((mindist, cnt, page_id))
                continue
            busy.add(disk)
            fetched.append(page_id)
        for item in skipped:
            heapq.heappush(frontier, item)
        if not fetched:
            break
        result.rounds += 1
        for page_id in fetched:
            node = tree._read(page_id)
            result.pages += 1
            if node.n_entries == 0:
                continue
            dist_sq = mindist_sq_arrays(q, node.lows, node.highs)
            result.distance_computations += node.n_entries
            idx = int(np.argmin(dist_sq))
            if dist_sq[idx] <= best_sq:
                best_sq = float(dist_sq[idx])
                best_id = int(node.ids[idx])

    if best_id >= 0:
        result.ids = [best_id]
        result.distances = [float(np.sqrt(best_sq))]
    metrics.inc("parallel.queries")
    metrics.inc("parallel.rounds", result.rounds)
    metrics.inc("parallel.pages", result.pages)
    return result
