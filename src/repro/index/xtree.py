"""X-tree (Berchtold, Keim & Kriegel, VLDB 1996).

The index structure the paper stores its NN-cell approximations in, and
one of the two NN-search baselines.  The X-tree extends the R*-tree with
two mechanisms aimed at high-dimensional data, both implemented here:

* **Overlap-minimal splits** — before accepting the topological (R*)
  split of a directory node, the X-tree checks its overlap.  If the split
  halves overlap more than ``max_overlap`` (the canonical 20 %), it looks
  for an *overlap-free* split instead: a dimension along which the child
  MBRs can be separated with zero overlap.  The original algorithm finds
  that dimension through the *split history*; we search all dimensions
  directly, which finds an overlap-free split whenever the split history
  would (and occasionally one the history misses) at O(d·n log n) cost
  per split — equivalent outcome, simpler bookkeeping.

* **Supernodes** — when no balanced split exists below the overlap bound,
  the node is not split at all: it grows into a supernode spanning
  multiple disk blocks.  Supernodes keep the directory overlap-free at
  the price of wider (multi-block) reads, which is exactly the CPU-time /
  page-access trade-off the paper measures in Figure 9.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..obs import metrics
from .node import Node
from .rstar import RStarTree

__all__ = ["XTree", "MAX_OVERLAP", "MIN_FANOUT_FRACTION"]

MAX_OVERLAP = 0.2  # the X-tree paper's MAX_OVERLAP threshold
MIN_FANOUT_FRACTION = 0.35  # minimum balance of an overlap-minimal split


class XTree(RStarTree):
    """X-tree: R*-tree with overlap-minimal directory splits and supernodes."""

    def __init__(self, *args, max_overlap: float = MAX_OVERLAP, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= max_overlap <= 1.0:
            raise ValueError("max_overlap must be within [0, 1]")
        self.max_overlap = max_overlap
        self.n_supernodes = 0

    # ------------------------------------------------------------------
    # Capacity accounting: a supernode spanning ``b`` blocks holds up to
    # ``b * max_entries`` entries.  Rewrites preserve the block count;
    # only :meth:`_grow_supernode` increases it, and a successful split
    # resets the halves to one block each (via ``_blocks_for``).
    # ------------------------------------------------------------------
    def _write_blocks(self, page_id: int) -> int:
        return self.pages.n_blocks_of(page_id)

    def _node_capacity(self, page_id: int, node: Node) -> int:
        base = self.leaf_max_entries if node.is_leaf else self.max_entries
        return self.pages.n_blocks_of(page_id) * base

    # ------------------------------------------------------------------
    # Split policy
    # ------------------------------------------------------------------
    def _split(self, path, reinserted_levels) -> None:
        node_id = path[-1]
        node = self._read(node_id)

        if node.is_leaf:
            # Leaves always split topologically (as in the X-tree paper;
            # data pages hold points, whose MBRs never overlap anyway).
            group1, group2 = RStarTree._split_node(self, node_id, node)
            self._install_split(path, node_id, group1, group2, reinserted_levels)
            return

        # 1. Topological split — accept if overlap is small.
        idx1, idx2 = self._rstar_split_indices(
            node.lows, node.highs, self._min_for(node)
        )
        group1, group2 = node.take(idx1), node.take(idx2)
        if _split_overlap_ratio(group1, group2) <= self.max_overlap:
            self._install_split(path, node_id, group1, group2, reinserted_levels)
            return

        # 2. Overlap-minimal split — zero-overlap separating dimension.
        minimal = self._overlap_minimal_split(node)
        if minimal is not None:
            group1, group2 = minimal
            self._install_split(path, node_id, group1, group2, reinserted_levels)
            return

        # 3. No good split exists: grow a supernode.
        self._grow_supernode(path, node_id, node)

    def _overlap_minimal_split(
        self, node: Node
    ) -> "Tuple[Node, Node] | None":
        """A balanced zero-overlap split of a directory node, or ``None``.

        For each dimension the children are ordered by their lower bound;
        a cut position is overlap-free when the maximum upper bound of the
        left group does not exceed the minimum lower bound of the right
        group.  Balanced means both sides hold at least
        ``MIN_FANOUT_FRACTION`` of the entries.  Among admissible cuts the
        most balanced one is chosen.
        """
        n = node.n_entries
        min_side = max(2, int(MIN_FANOUT_FRACTION * n))
        best_cut = -1
        best_error = n
        best_order: "np.ndarray | None" = None
        for axis in range(node.dim):
            order = np.argsort(node.lows[:, axis], kind="stable")
            sorted_lows = node.lows[order, axis]
            sorted_highs = node.highs[order, axis]
            left_max = np.maximum.accumulate(sorted_highs)
            # Cut after position k-1 (left group size k).
            for k in range(min_side, n - min_side + 1):
                if left_max[k - 1] <= sorted_lows[k] + 1e-12:
                    error = abs(2 * k - n)
                    if error < best_error:
                        best_error = error
                        best_cut = k
                        best_order = order
        if best_order is None:
            return None
        return node.take(best_order[:best_cut]), node.take(best_order[best_cut:])

    def _grow_supernode(self, path, node_id: int, node: Node) -> None:
        """Extend the node by one block instead of splitting it."""
        old_blocks = self.pages.n_blocks_of(node_id)
        if old_blocks == 1:
            self.n_supernodes += 1
            metrics.inc("xtree.supernodes")
        metrics.inc("xtree.supernode_blocks")
        self.pages.write(node_id, node, n_blocks=old_blocks + 1)
        # No structural change: ancestors keep their MBRs and entry counts,
        # so nothing else can overflow.

    # ------------------------------------------------------------------
    def supernode_stats(self) -> "dict[str, float]":
        """Diagnostics: how much of the directory became supernodes."""
        supernodes = 0
        super_blocks = 0
        directory_nodes = 0
        for page_id, node in self.iter_nodes():
            if node.is_leaf:
                continue
            directory_nodes += 1
            blocks = self.pages.n_blocks_of(page_id)
            if blocks > 1:
                supernodes += 1
                super_blocks += blocks
        return {
            "directory_nodes": directory_nodes,
            "supernodes": supernodes,
            "supernode_blocks": super_blocks,
        }


def _split_overlap_ratio(group1: Node, group2: Node) -> float:
    """Overlap of the two split halves, normalised by their union volume.

    Degenerate (zero-volume) unions — possible with point data projected
    onto fewer distinct coordinates — are treated as overlap-free.
    """
    mbr1 = group1.mbr()
    mbr2 = group2.mbr()
    ov = mbr1.overlap_volume(mbr2)
    union = mbr1.volume() + mbr2.volume() - ov
    if union <= 0.0:
        return 0.0
    return ov / union
