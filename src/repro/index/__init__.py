"""Index substrate: R*-tree, X-tree, NN search algorithms, bulk loading."""

from .bulk import DEFAULT_FILL, bulk_load
from .guttman import GuttmanRTree
from .hilbert import hilbert_bulk_load, hilbert_indices
from .linear_scan import LinearScan
from .nnsearch import NNResult, hs_k_nearest, hs_nearest, rkv_nearest
from .node import Node, entry_bytes
from .parallel import (
    ParallelNNResult,
    parallel_nearest,
    proximity_declustering,
    round_robin_declustering,
)
from .rstar import REINSERT_FRACTION, RStarTree
from .xtree import MAX_OVERLAP, MIN_FANOUT_FRACTION, XTree

__all__ = [
    "DEFAULT_FILL",
    "GuttmanRTree",
    "LinearScan",
    "MAX_OVERLAP",
    "MIN_FANOUT_FRACTION",
    "NNResult",
    "Node",
    "ParallelNNResult",
    "REINSERT_FRACTION",
    "RStarTree",
    "XTree",
    "bulk_load",
    "entry_bytes",
    "hilbert_bulk_load",
    "hilbert_indices",
    "hs_k_nearest",
    "hs_nearest",
    "parallel_nearest",
    "proximity_declustering",
    "rkv_nearest",
    "round_robin_declustering",
]
