"""Classic Guttman R-tree (SIGMOD 1984) — the historical baseline.

The paper's baselines are the R*-tree and the X-tree; both descend from
Guttman's original R-tree, implemented here with the canonical
**quadratic split** (PickSeeds / PickNext) and pure area-driven
ChooseLeaf, and *without* forced reinsertion.  Including it lets the
benchmark suite show the full lineage: Guttman -> R* (better splits,
reinsertion) -> X-tree (overlap-free directory) -> solution-space
indexing, each step improving high-dimensional NN behaviour.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from .node import Node
from .rstar import RStarTree

__all__ = ["GuttmanRTree"]


class GuttmanRTree(RStarTree):
    """R-tree with Guttman's quadratic split and area-only descent.

    Reuses the page layout, query operators and deletion machinery of the
    R*-tree implementation; only the insertion heuristics differ.
    """

    def _choose_subtree(
        self, node: Node, low: np.ndarray, high: np.ndarray
    ) -> int:
        """Guttman ChooseLeaf: least area enlargement, ties by area."""
        lows, highs = node.lows, node.highs
        enl_lows = np.minimum(lows, low)
        enl_highs = np.maximum(highs, high)
        areas = np.prod(highs - lows, axis=1)
        enlargement = np.prod(enl_highs - enl_lows, axis=1) - areas
        order = np.lexsort((areas, enlargement))
        return int(order[0])

    def _handle_overflow(
        self, path: List[int], reinserted_levels: Set[int]
    ) -> None:
        """No forced reinsert: overflow always splits (Guttman 1984)."""
        depth = len(path) - 1
        while depth >= 0:
            node_id = path[depth]
            node = self._read(node_id)
            if node.n_entries <= self._node_capacity(node_id, node):
                depth -= 1
                continue
            self._split(path[: depth + 1], reinserted_levels)
            return

    def _split_node(self, node_id: int, node: Node) -> "Tuple[Node, Node]":
        idx1, idx2 = _quadratic_split_indices(
            node.lows, node.highs, self._min_for(node)
        )
        return node.take(idx1), node.take(idx2)


def _quadratic_split_indices(
    lows: np.ndarray, highs: np.ndarray, min_entries: int
) -> "Tuple[np.ndarray, np.ndarray]":
    """Guttman's quadratic split.

    *PickSeeds*: the pair of entries whose combined rectangle wastes the
    most area seeds the two groups.  *PickNext*: repeatedly assign the
    entry with the largest preference (area-enlargement difference)
    between the groups, with the usual forced assignment once a group
    must absorb every remaining entry to reach the minimum fill.
    """
    n = lows.shape[0]
    m = min(min_entries, n // 2)
    m = max(1, m)

    areas = np.prod(highs - lows, axis=1)
    # PickSeeds: maximise dead area of the pair's bounding rectangle.
    worst_waste = -np.inf
    seed1 = 0
    seed2 = 1
    for i in range(n - 1):
        pair_lows = np.minimum(lows[i + 1:], lows[i])
        pair_highs = np.maximum(highs[i + 1:], highs[i])
        waste = (
            np.prod(pair_highs - pair_lows, axis=1)
            - areas[i + 1:]
            - areas[i]
        )
        j = int(np.argmax(waste))
        if waste[j] > worst_waste:
            worst_waste = float(waste[j])
            seed1, seed2 = i, i + 1 + j

    group1 = [seed1]
    group2 = [seed2]
    g1_low, g1_high = lows[seed1].copy(), highs[seed1].copy()
    g2_low, g2_high = lows[seed2].copy(), highs[seed2].copy()
    remaining = [i for i in range(n) if i not in (seed1, seed2)]

    while remaining:
        # Forced assignment when one group must take everything left.
        if len(group1) + len(remaining) <= m:
            group1.extend(remaining)
            break
        if len(group2) + len(remaining) <= m:
            group2.extend(remaining)
            break
        rem = np.asarray(remaining)
        enl1 = (
            np.prod(
                np.maximum(highs[rem], g1_high)
                - np.minimum(lows[rem], g1_low),
                axis=1,
            )
            - float(np.prod(g1_high - g1_low))
        )
        enl2 = (
            np.prod(
                np.maximum(highs[rem], g2_high)
                - np.minimum(lows[rem], g2_low),
                axis=1,
            )
            - float(np.prod(g2_high - g2_low))
        )
        pick = int(np.argmax(np.abs(enl1 - enl2)))
        entry = remaining.pop(pick)
        # Tie-breaks: smaller enlargement, then smaller area, then size.
        if enl1[pick] < enl2[pick] or (
            enl1[pick] == enl2[pick] and len(group1) <= len(group2)
        ):
            group1.append(entry)
            np.minimum(g1_low, lows[entry], out=g1_low)
            np.maximum(g1_high, highs[entry], out=g1_high)
        else:
            group2.append(entry)
            np.minimum(g2_low, lows[entry], out=g2_low)
            np.maximum(g2_high, highs[entry], out=g2_high)

    return np.asarray(group1), np.asarray(group2)
