"""In-process concurrent query service with micro-batching.

The paper's argument makes NN search a natural serving workload: once
the solution space is precomputed, a query is a cheap point query — and
:func:`repro.engine.batch.query_batch` already amortises one tree walk
across a whole workload.  What is missing between "many concurrent
callers" and that batched primitive is an *operational* layer, and that
is this module:

* **Micro-batching** — a single flush loop drains the submission queue,
  coalescing up to ``max_batch_size`` requests or waiting at most
  ``max_wait_ms`` for the batch to fill (whichever first), and answers
  the whole batch through one ``query_batch`` walk.
* **Admission control** — the queue is bounded; a submission that finds
  it full is either rejected with
  :class:`~repro.serve.errors.ServiceOverloaded` or blocks until space
  frees up (``ServeConfig.admission``), so a load spike degrades into
  explicit backpressure instead of unbounded memory growth.
* **Deadlines** — each request may carry a timeout; requests whose
  deadline passes while they are still queued are cancelled (their work
  is never performed) and both sides observe a typed
  :class:`~repro.serve.errors.DeadlineExceeded`.
* **Graceful degradation** — a failure inside the batched walk (an LP
  backend error, a tolerance corner) falls back to answering each
  request with the serial ``index.nearest``; a request that fails even
  serially is answered by an exact linear scan.  Engine exceptions never
  propagate to a caller — the ladder is
  ``batch -> serial -> linear scan``, and every rung is counted.

Every decision is measured: ``serve.*`` counters/histograms in
:mod:`repro.obs.metrics` and one ``serve.flush`` span per flush (the
nested ``query.batch`` span comes from the engine).  The full metric
taxonomy is documented in ``docs/observability.md``; operational
guidance lives in ``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..index.linear_scan import LinearScan
from ..obs import events, metrics, tracectx, tracestore, tracing
from ..obs.metrics import labeled
from ..obs.tracing import Span, span
from .config import ServeConfig
from .errors import DeadlineExceeded, ServiceClosed, ServiceOverloaded

__all__ = ["PendingResult", "QueryResult", "QueryService"]

# Dimensional fallback counters: one base name, the rung as a label.
# Precomputed once so the hot path pays no label escaping.
_FALLBACK_BATCH = labeled("serve.fallback", stage="batch")
_FALLBACK_SERIAL = labeled("serve.fallback", stage="serial")
_FALLBACK_SCAN = labeled("serve.fallback", stage="scan")


@dataclass(frozen=True)
class QueryResult:
    """One answered nearest-neighbor request.

    ``source`` records which rung of the fallback ladder produced the
    answer: ``"batch"`` (the normal micro-batched walk), ``"serial"``
    (per-query fallback after a batch failure) or ``"scan"`` (linear
    scan, the ladder's last rung).  All three sources return the same
    exact nearest neighbor — the ladder trades throughput, never
    correctness.
    """

    point_id: int
    distance: float
    source: str = "batch"
    #: Submission-to-completion latency, milliseconds.
    latency_ms: float = 0.0
    #: Request-scoped trace id, minted at admission
    #: (:mod:`repro.obs.tracectx`); resolvable against the trace store
    #: (``repro trace show``, ``GET /trace/<id>``) while tracing is on.
    trace_id: str = ""
    #: Sharded serving under ``allow_partial`` only: the answer was
    #: computed without every shard and may be farther than the true
    #: nearest.  Degradation is always explicit — ``failed_shards``
    #: names the missing shards and ``shards_answered`` counts the
    #: survivors (``None`` when the index is not sharded or the scatter
    #: was complete).  See ``docs/resilience.md``.
    degraded: bool = False
    failed_shards: "tuple" = ()
    shards_answered: "Optional[int]" = None


# Request lifecycle: transitions happen under the service lock only.
_PENDING = 0  # queued, not yet picked up by the flush loop
_INFLIGHT = 1  # part of a batch being computed
_DONE = 2  # result delivered
_FAILED = 3  # typed error delivered (deadline, shutdown)


class _Request:
    """Internal per-submission record shared by caller and flush loop."""

    __slots__ = (
        "point", "deadline", "enqueued_at", "enqueued_pc", "event",
        "result", "error", "state", "trace_id",
    )

    def __init__(self, point: np.ndarray, deadline: "float | None"):
        self.point = point
        self.deadline = deadline
        self.enqueued_at = time.monotonic()
        # perf_counter twin of enqueued_at: span timestamps use the
        # perf_counter clock, so the queue-wait span must too.
        self.enqueued_pc = time.perf_counter()
        self.event = threading.Event()
        self.result: "Optional[QueryResult]" = None
        self.error: "Optional[Exception]" = None
        self.state = _PENDING
        # Admission mints the identity: reuse the caller's bound trace
        # id if one exists (CLI workflows bind one around a whole run),
        # else mint fresh.  Minting is unconditional — an id costs one
        # locked RNG read, and every response/error must carry one even
        # with tracing off.
        self.trace_id = tracectx.current_trace_id() or tracectx.new_trace_id()


class PendingResult:
    """Caller-side handle of one submitted query (a narrow future).

    Returned by :meth:`QueryService.submit_async`; :meth:`result` blocks
    until the flush loop answers, the request's deadline passes, or an
    explicit ``timeout_ms`` runs out — whichever comes first.
    """

    __slots__ = ("_service", "_request")

    def __init__(self, service: "QueryService", request: _Request):
        self._service = service
        self._request = request

    def done(self) -> bool:
        """Whether a result or error is already available."""
        return self._request.event.is_set()

    def result(self, timeout_ms: "float | None" = None) -> QueryResult:
        """The answer, or a typed :class:`ServeError` subclass raised.

        ``timeout_ms`` bounds only this wait; the request's own deadline
        (if any) still applies and the earlier of the two wins.  A wait
        that times out *cancels* the request: a late answer from the
        flush loop is discarded, so one submission never yields two
        outcomes.
        """
        req = self._request
        budget = _remaining(req.deadline)
        if timeout_ms is not None:
            wait = timeout_ms / 1000.0
            budget = wait if budget is None else min(budget, wait)
        if not req.event.wait(budget):
            self._service._expire(req)
        if req.error is not None:
            raise req.error
        assert req.result is not None
        return req.result


def _remaining(deadline: "float | None") -> "float | None":
    """Seconds until ``deadline`` (monotonic), floored at zero."""
    if deadline is None:
        return None
    return max(0.0, deadline - time.monotonic())


def _failure(error: Exception, request: _Request) -> Exception:
    """Stamp ``request``'s trace id onto a typed serve error."""
    error.trace_id = request.trace_id
    return error


def _request_trace(
    request: _Request,
    pickup_pc: float,
    flush_end_pc: float,
    flush_tid: "Optional[str]",
    source: str = "",
    error: str = "",
    degraded: bool = False,
    failed_shards: "Sequence[int]" = (),
) -> "tracestore.StoredTrace":
    """Assemble one request's trace from the flush loop's time marks.

    The root ``serve.request`` span covers enqueue -> now; its children
    are the three contiguous segments the request actually spent time in
    (queue wait, the shared flush compute, delivery), so critical-path
    coverage is ~1.0 by construction.  The compute segment records the
    flush trace id — the per-stage breakdown (tree walk, candidate scan,
    LP, fallback) lives in the flush's own span tree and is joined at
    analysis time (:func:`repro.obs.tracestore.critical_path`).
    """
    done_pc = time.perf_counter()
    attrs: "Dict[str, object]" = {"trace_id": request.trace_id}
    if source:
        attrs["source"] = source
    if error:
        attrs["error"] = error
    if degraded:
        attrs["degraded"] = True
        attrs["failed_shards"] = [int(s) for s in failed_shards]
    links = [flush_tid] if flush_tid else []
    if links:
        attrs["links"] = links
    root = Span("serve.request", attrs)
    root.start = request.enqueued_pc
    root.end = done_pc
    queue_wait = Span("serve.queue_wait")
    queue_wait.start = request.enqueued_pc
    queue_wait.end = pickup_pc
    root.children.append(queue_wait)
    if not error:
        compute = Span(
            "serve.compute", {"flush": flush_tid} if flush_tid else None
        )
        compute.start = pickup_pc
        compute.end = flush_end_pc
        deliver = Span("serve.deliver")
        deliver.start = flush_end_pc
        deliver.end = done_pc
        root.children.append(compute)
        root.children.append(deliver)
    return tracestore.StoredTrace(
        trace_id=request.trace_id,
        root=root,
        kind="request",
        ts=time.time(),
        duration_ms=1e3 * root.duration_seconds,
        error=bool(error),
        fallback=source in ("serial", "scan"),
        degraded=bool(degraded),
        links=links,
    )


class QueryService:
    """Concurrent nearest-neighbor serving on top of one built index.

    Threads submit single queries; a dedicated flush loop coalesces them
    into :meth:`NNCellIndex.query_batch` calls.  Usable as a context
    manager::

        with QueryService(index, ServeConfig(max_batch_size=64)) as svc:
            result = svc.submit([0.5, 0.5, 0.5])

    The service assumes the index is not mutated while serving (run
    dynamic updates through a swap of service instances).  ``close()``
    drains the queue — every accepted request is answered — and a
    submission after close raises :class:`ServiceClosed`.
    """

    def __init__(
        self,
        index,
        config: "ServeConfig | None" = None,
        batch_fn: "Callable | None" = None,
    ):
        """``batch_fn`` overrides the batched query primitive (testing /
        failure injection); it must match ``index.query_batch``'s
        signature and contract."""
        self.index = index
        self.config = config or ServeConfig()
        self._batch_fn = batch_fn or index.query_batch
        self._cond = threading.Condition()
        self._queue: "deque[_Request]" = deque()
        self._closed = False
        self._degraded = False
        self._scan: "Optional[LinearScan]" = None
        self._scan_ids: "Optional[np.ndarray]" = None
        self._stats: "Dict[str, float]" = {
            "submitted": 0,
            "completed": 0,
            "rejected": 0,
            "deadline_missed": 0,
            "flushes": 0,
            "batched_requests": 0,
            "pages": 0,
            "fallback_batch": 0,
            "fallback_serial": 0,
            "fallback_scan": 0,
            "degraded_answers": 0,
        }
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-flush", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------
    def submit(
        self,
        point: Sequence[float],
        timeout_ms: "float | None" = None,
    ) -> QueryResult:
        """Answer one query, blocking until the result is available.

        Raises :class:`ServiceOverloaded`, :class:`DeadlineExceeded` or
        :class:`ServiceClosed`; engine failures are absorbed by the
        fallback ladder and still produce a :class:`QueryResult`.
        """
        return self.submit_async(point, timeout_ms=timeout_ms).result()

    def submit_async(
        self,
        point: Sequence[float],
        timeout_ms: "float | None" = None,
    ) -> PendingResult:
        """Enqueue one query; returns a :class:`PendingResult` handle.

        Admission control runs here: with a full queue, policy
        ``"reject"`` raises :class:`ServiceOverloaded` immediately and
        ``"block"`` waits for space (bounded by the request deadline).
        """
        q = np.asarray(point, dtype=np.float64)
        if q.shape != (self.index.dim,):
            raise ValueError(f"query must be a {self.index.dim}-vector")
        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        elif timeout_ms <= 0:
            raise ValueError("timeout_ms must be > 0 or None")
        deadline = (
            None if timeout_ms is None
            else time.monotonic() + timeout_ms / 1000.0
        )
        request = _Request(q, deadline)
        depth_cap = self.config.max_queue_depth
        with self._cond:
            if self._closed:
                raise _failure(ServiceClosed("service is closed"), request)
            if depth_cap is not None and len(self._queue) >= depth_cap:
                if self.config.admission == "reject":
                    self._stats["rejected"] += 1
                    metrics.inc("serve.rejected")
                    raise _failure(
                        ServiceOverloaded(
                            f"queue depth {depth_cap} exceeded"
                        ),
                        request,
                    )
                while (
                    not self._closed
                    and len(self._queue) >= depth_cap
                ):
                    if not self._cond.wait(_remaining(deadline)):
                        self._stats["deadline_missed"] += 1
                        metrics.inc("serve.deadline_missed")
                        raise _failure(
                            DeadlineExceeded(
                                "deadline passed while blocked on admission"
                            ),
                            request,
                        )
                if self._closed:
                    raise _failure(
                        ServiceClosed("service is closed"), request
                    )
            request.enqueued_at = time.monotonic()
            request.enqueued_pc = time.perf_counter()
            self._queue.append(request)
            self._stats["submitted"] += 1
            depth = len(self._queue)
            self._cond.notify_all()
        metrics.inc("serve.submitted")
        metrics.set_gauge("serve.queue.depth", depth)
        return PendingResult(self, request)

    def _expire(self, request: _Request) -> None:
        """Caller-side cancellation: the wait for ``request`` timed out."""
        with self._cond:
            if request.event.is_set():
                return  # answer raced in while we were acquiring the lock
            request.state = _FAILED
            request.error = _failure(
                DeadlineExceeded("result not produced within the deadline"),
                request,
            )
            self._stats["deadline_missed"] += 1
            request.event.set()
        metrics.inc("serve.deadline_missed")
        # An error trace is always worth keeping; cancellation happens on
        # the caller's thread, so store it here — the flush loop will
        # skip the cancelled request entirely.
        if tracing.enabled():
            store = tracestore.get_store()
            if store is not None:
                now_pc = time.perf_counter()
                store.add_trace(
                    _request_trace(
                        request, now_pc, now_pc, None,
                        error="deadline_exceeded",
                    )
                )

    # ------------------------------------------------------------------
    # Flush loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._process(batch)

    def _next_batch(self) -> "Optional[list]":
        """Block until a batch is due, pop it; ``None`` = shut down.

        The micro-batching policy: the flush fires when the queue holds
        ``max_batch_size`` requests or the oldest one has waited
        ``max_wait_ms``, whichever happens first.  During shutdown the
        wait is skipped so the queue drains immediately.
        """
        cfg = self.config
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            if cfg.max_wait_ms > 0 and not self._degraded:
                flush_at = self._queue[0].enqueued_at + cfg.max_wait_ms / 1e3
                while (
                    not self._closed
                    and not self._degraded
                    and len(self._queue) < cfg.max_batch_size
                ):
                    remaining = flush_at - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            take = min(len(self._queue), cfg.max_batch_size)
            batch = [self._queue.popleft() for __ in range(take)]
            depth = len(self._queue)
            self._cond.notify_all()  # admission waiters: space freed
        metrics.set_gauge("serve.queue.depth", depth)
        return batch

    def _process(self, batch: "list[_Request]") -> None:
        """Answer one popped batch through the fallback ladder."""
        now = time.monotonic()
        # Trace capture is on when spans are recorded *and* a store is
        # installed to keep them; identity (trace ids) flows regardless.
        store = tracestore.get_store() if tracing.enabled() else None
        live: "list[_Request]" = []
        expired_requests: "list[_Request]" = []
        expired = 0
        with self._cond:
            for request in batch:
                if request.state != _PENDING:
                    continue  # caller already timed out and cancelled
                if request.deadline is not None and now > request.deadline:
                    request.state = _FAILED
                    request.error = _failure(
                        DeadlineExceeded(
                            "deadline passed while queued; work cancelled"
                        ),
                        request,
                    )
                    self._stats["deadline_missed"] += 1
                    expired += 1
                    request.event.set()
                    expired_requests.append(request)
                    continue
                request.state = _INFLIGHT
                live.append(request)
        if expired:
            metrics.inc("serve.deadline_missed", expired)
            if store is not None:
                pickup_pc = time.perf_counter()
                for request in expired_requests:
                    store.add_trace(
                        _request_trace(
                            request, pickup_pc, pickup_pc, None,
                            error="deadline_exceeded",
                        )
                    )
        if not live:
            return
        metrics.inc("serve.flush.count")
        metrics.observe("serve.batch.size", len(live))
        # The flush gets its own trace identity; the flush span links to
        # every member request and each request trace links back (the
        # bidirectional causality ISSUE 6 asks for).  As a root span in
        # this thread it flows into the store via the tracer sink.
        flush_tid = tracectx.new_trace_id() if store is not None else None
        pickup_pc = time.perf_counter()
        with tracectx.bind(flush_tid):
            with span("serve.flush", n_requests=len(live)) as flush:
                if flush_tid is not None:
                    flush.set(
                        "links", [request.trace_id for request in live]
                    )
                results, pages = self._answer(live)
                flush.set("pages", pages)
                flush.set("sources", sorted({r.source for r in results}))
        flush_end_pc = time.perf_counter()
        done = time.monotonic()
        delivered = 0
        degraded_delivered = 0
        with self._cond:
            self._stats["flushes"] += 1
            self._stats["batched_requests"] += len(live)
            self._stats["pages"] += pages
            for request, result in zip(live, results):
                if request.state != _INFLIGHT:
                    continue  # cancelled mid-flight; drop the late answer
                request.state = _DONE
                request.result = QueryResult(
                    result.point_id,
                    result.distance,
                    result.source,
                    latency_ms=1e3 * (done - request.enqueued_at),
                    trace_id=request.trace_id,
                    degraded=result.degraded,
                    failed_shards=result.failed_shards,
                    shards_answered=result.shards_answered,
                )
                self._stats["completed"] += 1
                delivered += 1
                if result.degraded:
                    self._stats["degraded_answers"] += 1
                    degraded_delivered += 1
                request.event.set()
        if delivered:
            metrics.inc("serve.completed", delivered)
        if degraded_delivered:
            metrics.inc("serve.degraded_answers", degraded_delivered)
        for request in live:
            if request.result is None:
                continue
            if store is not None:
                # Store the trace *before* the exemplar-tagged latency
                # observation, so a scraped exemplar always resolves.
                store.add_trace(
                    _request_trace(
                        request, pickup_pc, flush_end_pc, flush_tid,
                        source=request.result.source,
                        degraded=request.result.degraded,
                        failed_shards=request.result.failed_shards,
                    )
                )
            metrics.observe(
                "serve.latency_ms",
                request.result.latency_ms,
                trace_id=request.trace_id if store is not None else None,
            )
        if events.enabled():
            sources = sorted({r.source for r in results})
            fields = dict(
                outcome="ok" if sources == ["batch"] else "degraded",
                n_requests=len(live),
                delivered=delivered,
                expired=expired,
                pages=pages,
                sources=sources,
                duration_ms=1e3 * (done - now),
            )
            if degraded_delivered:
                fields["degraded_answers"] = degraded_delivered
            if flush_tid is not None:
                fields["trace_id"] = flush_tid
            events.emit("flush", **fields)

    # ------------------------------------------------------------------
    # Fallback ladder
    # ------------------------------------------------------------------
    def _answer(
        self, live: "list[_Request]"
    ) -> "tuple[list[QueryResult], int]":
        """Results for ``live``, surviving any engine failure.

        Rung 1: one batched walk.  Rung 2 (batch raised): per-request
        serial ``nearest``.  Rung 3 (serial raised too): exact linear
        scan over the active points.  Returns ``(results, pages)``.
        """
        points = np.stack([request.point for request in live])
        try:
            ids, dists, info = self._batch_fn(points)
            return (
                [
                    QueryResult(
                        int(i),
                        float(d),
                        "batch",
                        degraded=getattr(info, "degraded", False),
                        failed_shards=tuple(
                            getattr(info, "failed_shards", ())
                        ),
                        shards_answered=getattr(
                            info, "shards_answered", None
                        ),
                    )
                    for i, d in zip(ids, dists)
                ],
                int(info.pages),
            )
        except Exception:
            with self._cond:
                self._stats["fallback_batch"] += 1
            metrics.inc(_FALLBACK_BATCH)
        results = []
        pages = 0
        for request in live:
            try:
                point_id, distance, info = self.index.nearest(request.point)
                results.append(
                    QueryResult(
                        int(point_id),
                        float(distance),
                        "serial",
                        degraded=getattr(info, "degraded", False),
                        failed_shards=tuple(
                            getattr(info, "failed_shards", ())
                        ),
                        shards_answered=getattr(
                            info, "shards_answered", None
                        ),
                    )
                )
                pages += int(info.pages)
                with self._cond:
                    self._stats["fallback_serial"] += 1
                metrics.inc(_FALLBACK_SERIAL)
            except Exception:
                point_id, distance, scanned = self._scan_nearest(request.point)
                results.append(QueryResult(point_id, distance, "scan"))
                pages += scanned
                with self._cond:
                    self._stats["fallback_scan"] += 1
                metrics.inc(_FALLBACK_SCAN)
        return results, pages

    def _scan_nearest(self, q: np.ndarray) -> "tuple[int, float, int]":
        """Last rung: exact nearest by linear scan; ``(id, dist, pages)``.

        The scan is built lazily over the index's active points and maps
        its row ids back to index point ids.
        """
        if self._scan is None:
            active = self.index.active_ids
            self._scan = LinearScan(self.index.points[active])
            self._scan_ids = active
        result = self._scan.nearest(q)
        return (
            int(self._scan_ids[result.nearest_id]),
            float(result.nearest_distance),
            int(result.pages),
        )

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the service.  Idempotent.

        ``drain=True`` (default) answers every already-accepted request
        before the flush loop exits; ``drain=False`` fails pending
        requests with :class:`ServiceClosed` immediately.
        """
        with self._cond:
            if not self._closed:
                self._closed = True
                if not drain:
                    while self._queue:
                        request = self._queue.popleft()
                        request.state = _FAILED
                        request.error = _failure(
                            ServiceClosed(
                                "service closed before the request was served"
                            ),
                            request,
                        )
                        request.event.set()
                self._cond.notify_all()
        self._thread.join()

    @property
    def closed(self) -> bool:
        return self._closed

    def set_degraded(self, degraded: bool) -> None:
        """Latency-shedding hook for the SLO watchdog.

        While degraded, :meth:`_next_batch` skips the ``max_wait_ms``
        batching delay and flushes whatever is queued immediately —
        trading batching efficiency for lower queue-wait latency while
        an objective is burning its budget.  Idempotent and safe from
        any thread.
        """
        with self._cond:
            if self._degraded == bool(degraded):
                return
            self._degraded = bool(degraded)
            self._cond.notify_all()
        metrics.set_gauge("serve.degraded", 1.0 if degraded else 0.0)

    @property
    def degraded(self) -> bool:
        return self._degraded

    def queue_depth(self) -> int:
        """Current number of pending (not yet flushed) requests."""
        with self._cond:
            return len(self._queue)

    def stats(self) -> "Dict[str, float]":
        """Cumulative serving counters (kept even with metrics disabled).

        Includes the derived ``mean_batch_size`` — the quantity the
        acceptance harness checks — alongside the raw counts.
        """
        with self._cond:
            out = dict(self._stats)
        flushes = max(1.0, out["flushes"])
        out["mean_batch_size"] = out["batched_requests"] / flushes
        return out

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
