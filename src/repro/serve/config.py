"""Configuration of the concurrent query service.

The three knobs mirror the three subsystems of ``QueryService`` (see
``docs/serving.md`` for the operational guidance):

* **Micro-batching** — ``max_batch_size`` / ``max_wait_ms`` bound how
  many queries one flush coalesces and how long the first request in a
  batch may wait for company.  A flush fires on whichever bound is hit
  first, so an idle service adds at most ``max_wait_ms`` of latency and
  a busy one flushes full batches back to back.
* **Admission control** — ``max_queue_depth`` bounds the pending queue;
  ``admission`` picks what happens to a submission that finds it full:
  ``"reject"`` raises :class:`~repro.serve.errors.ServiceOverloaded`
  immediately (shed load, keep latency), ``"block"`` makes the caller
  wait for space (keep work, transfer the queueing upstream).
* **Deadlines** — ``default_timeout_ms`` applies to submissions that do
  not carry their own timeout; expired requests are cancelled rather
  than computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ServeConfig", "TelemetryConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning parameters of a :class:`~repro.serve.service.QueryService`."""

    #: Most queries one flush may coalesce into a single batched walk.
    max_batch_size: int = 32
    #: How long (milliseconds) the oldest queued request may wait for the
    #: batch to fill before the flush fires anyway.  ``0`` flushes
    #: opportunistically: whatever accumulated while the previous batch
    #: was being computed goes out immediately.
    max_wait_ms: float = 2.0
    #: Pending-queue bound for admission control; ``None`` = unbounded
    #: (no backpressure — only sensible for trusted in-process callers).
    max_queue_depth: "int | None" = 1024
    #: ``"reject"`` -> raise ``ServiceOverloaded`` when the queue is
    #: full; ``"block"`` -> make the submitter wait for space.
    admission: str = "reject"
    #: Deadline (milliseconds from submission) applied to requests that
    #: do not pass their own ``timeout_ms``; ``None`` = no deadline.
    default_timeout_ms: "float | None" = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 or None")
        if self.admission not in ("reject", "block"):
            raise ValueError("admission must be 'reject' or 'block'")
        if self.default_timeout_ms is not None and self.default_timeout_ms <= 0:
            raise ValueError("default_timeout_ms must be > 0 or None")


@dataclass(frozen=True)
class TelemetryConfig:
    """What live telemetry a serving process turns on.

    Everything defaults to *off* — the disabled fast path stays one
    boolean check per event site.  Activated by
    :class:`~repro.serve.telemetry.TelemetrySession`, which owns the
    setup/teardown; the CLI maps ``serve --metrics-port /
    --stats-interval / --events`` onto these fields (``stats --watch``
    uses the same machinery without a service).
    """

    #: Bind a Prometheus scrape endpoint on this port (``0`` = ephemeral,
    #: read the bound port back from the session); ``None`` = no endpoint.
    metrics_port: "Optional[int]" = None
    #: Interface the scrape endpoint binds; loopback unless fronted by a
    #: real proxy.
    metrics_host: str = "127.0.0.1"
    #: Print a windowed dashboard line to stderr every N seconds
    #: (``serve --stats-interval``); ``0`` = never.
    stats_interval_s: float = 0.0
    #: Append one JSONL record per sampled lifecycle event to this path;
    #: ``None`` leaves the event log off.
    events_path: "Optional[str]" = None
    #: Event sampling rate in [0, 1] (1 = every lifecycle).
    events_sample: float = 1.0
    #: Turn on span recording into a tail-sampled
    #: :class:`~repro.obs.tracestore.TraceStore` (request traces,
    #: exemplar links, ``/trace/<id>``, ``repro trace``).
    tracing: bool = False
    #: Slowest-trace retention bound of the store (see
    #: :data:`repro.obs.tracestore.DEFAULT_CAPACITY`).
    trace_capacity: int = 256
    #: Run the SLO burn-rate watchdog (``serve.slo.*`` gauges, alert
    #: state on /telemetry, 503 /healthz while paging).
    slo: bool = False
    #: Watchdog evaluation cadence, seconds.
    slo_interval_s: float = 1.0
    #: Let a paging watchdog flip the service's degradation ladder
    #: (``QueryService.set_degraded``): shed the batching delay while an
    #: objective burns its budget.
    slo_degrade: bool = False
    #: Run the workload-analytics access recorder (cell/page heatmaps,
    #: per-shard load shares, ``GET /analytics``, ``repro analyze``).
    analytics: bool = False
    #: Capture served queries and their answers to this workload log
    #: (JSONL; replayable with ``repro replay``); ``None`` = no capture.
    capture_path: "Optional[str]" = None
    #: Workload capture sampling rate in (0, 1] (1 = every query).
    capture_sample: float = 1.0

    def __post_init__(self):
        if self.metrics_port is not None and not (
            0 <= self.metrics_port <= 65535
        ):
            raise ValueError("metrics_port must be in [0, 65535] or None")
        if self.stats_interval_s < 0.0:
            raise ValueError("stats_interval_s must be >= 0")
        if not 0.0 <= self.events_sample <= 1.0:
            raise ValueError("events_sample must be in [0, 1]")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.slo_interval_s <= 0.0:
            raise ValueError("slo_interval_s must be > 0")
        if not 0.0 < self.capture_sample <= 1.0:
            raise ValueError("capture_sample must be in (0, 1]")

    @property
    def active(self) -> bool:
        """Whether any telemetry surface is requested at all."""
        return (
            self.metrics_port is not None
            or self.stats_interval_s > 0.0
            or self.events_path is not None
            or self.tracing
            or self.slo
            or self.analytics
            or self.capture_path is not None
        )
