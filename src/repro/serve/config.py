"""Configuration of the concurrent query service.

The three knobs mirror the three subsystems of ``QueryService`` (see
``docs/serving.md`` for the operational guidance):

* **Micro-batching** — ``max_batch_size`` / ``max_wait_ms`` bound how
  many queries one flush coalesces and how long the first request in a
  batch may wait for company.  A flush fires on whichever bound is hit
  first, so an idle service adds at most ``max_wait_ms`` of latency and
  a busy one flushes full batches back to back.
* **Admission control** — ``max_queue_depth`` bounds the pending queue;
  ``admission`` picks what happens to a submission that finds it full:
  ``"reject"`` raises :class:`~repro.serve.errors.ServiceOverloaded`
  immediately (shed load, keep latency), ``"block"`` makes the caller
  wait for space (keep work, transfer the queueing upstream).
* **Deadlines** — ``default_timeout_ms`` applies to submissions that do
  not carry their own timeout; expired requests are cancelled rather
  than computed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning parameters of a :class:`~repro.serve.service.QueryService`."""

    #: Most queries one flush may coalesce into a single batched walk.
    max_batch_size: int = 32
    #: How long (milliseconds) the oldest queued request may wait for the
    #: batch to fill before the flush fires anyway.  ``0`` flushes
    #: opportunistically: whatever accumulated while the previous batch
    #: was being computed goes out immediately.
    max_wait_ms: float = 2.0
    #: Pending-queue bound for admission control; ``None`` = unbounded
    #: (no backpressure — only sensible for trusted in-process callers).
    max_queue_depth: "int | None" = 1024
    #: ``"reject"`` -> raise ``ServiceOverloaded`` when the queue is
    #: full; ``"block"`` -> make the submitter wait for space.
    admission: str = "reject"
    #: Deadline (milliseconds from submission) applied to requests that
    #: do not pass their own ``timeout_ms``; ``None`` = no deadline.
    default_timeout_ms: "float | None" = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 or None")
        if self.admission not in ("reject", "block"):
            raise ValueError("admission must be 'reject' or 'block'")
        if self.default_timeout_ms is not None and self.default_timeout_ms <= 0:
            raise ValueError("default_timeout_ms must be > 0 or None")
