"""Concurrent serving layer: micro-batched queries over a built index.

``QueryService`` turns concurrent single-query submissions into
:meth:`NNCellIndex.query_batch` calls (flush on ``max_batch_size`` or
``max_wait_ms``), bounds its queue with an admission controller, honours
per-request deadlines, and degrades gracefully through a
batch -> serial -> linear-scan fallback ladder.  See ``docs/serving.md``.
"""

from .config import ServeConfig, TelemetryConfig
from .errors import (
    DeadlineExceeded,
    ServeError,
    ServiceClosed,
    ServiceOverloaded,
)
from .service import PendingResult, QueryResult, QueryService
from .telemetry import TelemetrySession

__all__ = [
    "DeadlineExceeded",
    "PendingResult",
    "QueryResult",
    "QueryService",
    "ServeConfig",
    "ServeError",
    "ServiceClosed",
    "ServiceOverloaded",
    "TelemetryConfig",
    "TelemetrySession",
]
