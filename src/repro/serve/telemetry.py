"""Lifecycle of a serving process's live telemetry.

:class:`TelemetrySession` is the one place that knows how the pieces of
``repro.obs`` compose into an *operational* surface: it enables the
metrics registry, installs a :class:`~repro.obs.timeseries.TimeSeries`
sink behind it, optionally turns on the structured event log with a
JSONL sink, optionally installs a tail-sampled
:class:`~repro.obs.tracestore.TraceStore` and records spans into it,
optionally runs the :class:`~repro.obs.slo.SLOWatchdog`, optionally
binds the Prometheus scrape endpoint, and can run a periodic stderr
dashboard printer — then tears all of it down in reverse order.  The
CLI's ``serve --metrics-port / --stats-interval / --events / --tracing
/ --slo`` flags, ``repro trace`` and ``stats --watch`` all go through
here, so the surfaces can never drift apart.

Usage::

    with TelemetrySession(TelemetryConfig(metrics_port=0)) as session:
        ...  # serve traffic; scrape http://127.0.0.1:<session.port>/metrics
"""

from __future__ import annotations

import sys
import threading
from typing import IO, Optional

from ..obs import (
    analytics as analytics_mod,
    events,
    metrics,
    slo as slo_mod,
    tracestore,
    tracing,
    workload as workload_mod,
)
from ..obs.promexport import MetricsServer, validate_metric_name
from ..obs.timeseries import TimeSeries, dashboard_line
from .config import TelemetryConfig

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Owns the setup and teardown of one process's live telemetry.

    The session always enables metrics, installs a fresh
    :class:`TimeSeries` (the windowed dashboards need both) and installs
    the exposition-grammar name validator on the registry, so a metric
    name that could not be scraped fails at its call site; the scrape
    endpoint, event log, trace store, SLO watchdog and stats printer are
    opt-in via the :class:`~repro.serve.config.TelemetryConfig` fields.
    Idempotent :meth:`close`; usable as a context manager.
    """

    def __init__(
        self,
        config: "TelemetryConfig | None" = None,
        stream: "Optional[IO[str]]" = None,
    ):
        """``stream`` receives the dashboard lines (default: stderr)."""
        self.config = config or TelemetryConfig()
        self._stream = stream if stream is not None else sys.stderr
        self._was_enabled = metrics.enabled()
        self.timeseries = TimeSeries()
        self.server: "Optional[MetricsServer]" = None
        self.event_log: "Optional[events.EventLog]" = None
        self.tracestore: "Optional[tracestore.TraceStore]" = None
        self.watchdog: "Optional[slo_mod.SLOWatchdog]" = None
        self.analytics: "Optional[analytics_mod.AccessRecorder]" = None
        self.workload: "Optional[workload_mod.WorkloadRecorder]" = None
        self._degrade_target = None
        self._prev_tracer = None
        self._stop = threading.Event()
        self._printer: "Optional[threading.Thread]" = None
        self._closed = False

        registry = metrics.enable()
        registry.set_name_validator(validate_metric_name)
        metrics.install_timeseries(self.timeseries)
        if self.config.events_path is not None:
            self.event_log = events.enable(
                sink=self.config.events_path,
                sample=self.config.events_sample,
            )
        if self.config.tracing:
            self.tracestore = tracestore.TraceStore(
                capacity=self.config.trace_capacity
            )
            tracestore.install(self.tracestore)
            self._prev_tracer = tracing.get_tracer()
            tracing.enable(self.tracestore)
        if self.config.slo:
            self.watchdog = slo_mod.SLOWatchdog(
                self.timeseries, on_change=self._on_slo_change
            )
            self.watchdog.start(self.config.slo_interval_s)
        if self.config.analytics:
            self.analytics = analytics_mod.install()
        if self.config.capture_path is not None:
            self.workload = workload_mod.install(
                sink=self.config.capture_path,
                sample=self.config.capture_sample,
            )
        if self.config.metrics_port is not None:
            self.server = MetricsServer(
                host=self.config.metrics_host,
                port=self.config.metrics_port,
                timeseries=self.timeseries,
                tracestore=self.tracestore,
                watchdog=self.watchdog,
                analytics=self.analytics,
            ).start()
        if self.config.stats_interval_s > 0.0:
            self._printer = threading.Thread(
                target=self._print_loop,
                name="repro-telemetry-stats",
                daemon=True,
            )
            self._printer.start()

    @property
    def port(self) -> "Optional[int]":
        """The scrape endpoint's bound port (``None`` without one)."""
        return self.server.port if self.server is not None else None

    def set_degrade_target(self, service) -> None:
        """Let the SLO watchdog nudge ``service``'s degradation ladder.

        ``service`` must expose ``set_degraded(bool)``
        (:class:`~repro.serve.service.QueryService` does).  Only takes
        effect when the config enables both ``slo`` and ``slo_degrade``.
        """
        self._degrade_target = service

    def _on_slo_change(self, paging: bool) -> None:
        target = self._degrade_target
        if self.config.slo_degrade and target is not None:
            target.set_degraded(paging)

    def dashboard_line(self, seconds: int = 10) -> str:
        """The current windowed dashboard line (see ``timeseries``)."""
        return dashboard_line(self.timeseries, seconds)

    def _print_loop(self) -> None:
        interval = self.config.stats_interval_s
        while not self._stop.wait(interval):
            try:
                print(self.dashboard_line(), file=self._stream, flush=True)
            except ValueError:  # stream closed mid-shutdown
                return

    def close(self) -> None:
        """Tear down in reverse order of setup.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._printer is not None:
            self._printer.join()
        if self.server is not None:
            self.server.close()
        if self.watchdog is not None:
            self.watchdog.stop()
            if self._degrade_target is not None and self.config.slo_degrade:
                self._degrade_target.set_degraded(False)
        if self.workload is not None:
            workload_mod.uninstall()
            self.workload.close()
        if self.analytics is not None:
            analytics_mod.uninstall()
        if self.config.tracing:
            tracing.disable()
            tracing.set_tracer(self._prev_tracer)
            tracestore.uninstall()
        if self.event_log is not None:
            events.disable()
            self.event_log.close()
        metrics.uninstall_timeseries()
        metrics.get_registry().set_name_validator(None)
        if not self._was_enabled:
            metrics.disable()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
