"""Typed failures of the serving layer.

Every way a request can fail to produce a nearest neighbor has its own
exception class, so callers (and the JSONL protocol in the CLI) can map
failures to well-formed responses instead of pattern-matching message
strings.  Note what is *not* here: LP or tolerance errors raised by the
query engine never reach a caller — the service's fallback ladder
(batched -> per-query serial -> linear scan, see ``docs/serving.md``)
absorbs them and still answers the query.
"""

from __future__ import annotations

__all__ = [
    "DeadlineExceeded",
    "ServeError",
    "ServiceClosed",
    "ServiceOverloaded",
]


class ServeError(Exception):
    """Base class of every serving-layer failure."""

    #: Stable machine-readable identifier used in protocol responses.
    code = "serve_error"

    #: Trace id of the failed request (set by the service at raise
    #: time), echoed in JSONL error responses so a client can look the
    #: failure up in the trace store / event log.  Empty when the
    #: failure happened before an identity existed.
    trace_id: str = ""


class ServiceOverloaded(ServeError):
    """The admission controller rejected the request: queue full.

    Raised at submission time when the pending queue already holds
    ``max_queue_depth`` requests and the service runs the ``"reject"``
    admission policy.  The request was *not* enqueued; retrying after
    backing off is safe.
    """

    code = "overloaded"


class DeadlineExceeded(ServeError):
    """The request's deadline passed before an answer was produced.

    Raised either by the flush loop (the request expired while still
    queued — its work is cancelled, not performed) or by the waiting
    caller (the batch it joined did not complete in time).
    """

    code = "deadline_exceeded"


class ServiceClosed(ServeError):
    """The service is shut down and no longer accepts submissions."""

    code = "closed"
