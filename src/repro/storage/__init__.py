"""Storage substrate: paged storage with page-access accounting."""

from .cache import LRUCache
from .page import DEFAULT_PAGE_SIZE, AccessStats, PageManager

__all__ = ["AccessStats", "DEFAULT_PAGE_SIZE", "LRUCache", "PageManager"]
