"""Paged storage simulation.

The paper's evaluation is driven by *page accesses*: every index node lives
on a disk block (4 KBytes in the paper's experiments) and the reported
curves compare the number of blocks read plus CPU time.  This module
simulates that storage layer:

* :class:`PageManager` hands out fixed-size pages, tracks logical reads and
  writes, and routes reads through an optional LRU buffer
  (:mod:`repro.storage.cache`) so cache hits can be separated from physical
  accesses — the paper grants each index "the same amount of cache";
* :class:`AccessStats` is the counter bundle the evaluation harness
  snapshots around each query.

Pages store opaque Python payloads; *capacity* questions (how many entries
fit in a node) are answered by :meth:`PageManager.entries_per_page` from
the byte sizes of an entry, matching how block-based trees size their
fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..obs import analytics, metrics
from .cache import LRUCache

__all__ = ["AccessStats", "PageManager", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 4096  # bytes; the paper uses 4 KByte blocks


@dataclass
class AccessStats:
    """Counters of logical and physical page traffic."""

    logical_reads: int = 0
    physical_reads: int = 0
    logical_writes: int = 0
    physical_writes: int = 0

    def snapshot(self) -> "AccessStats":
        """Copy of the current counter values."""
        return AccessStats(
            self.logical_reads,
            self.physical_reads,
            self.logical_writes,
            self.physical_writes,
        )

    def delta_since(self, earlier: "AccessStats") -> "AccessStats":
        """Counter increments since an earlier snapshot."""
        return AccessStats(
            self.logical_reads - earlier.logical_reads,
            self.physical_reads - earlier.physical_reads,
            self.logical_writes - earlier.logical_writes,
            self.physical_writes - earlier.physical_writes,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.logical_reads = 0
        self.physical_reads = 0
        self.logical_writes = 0
        self.physical_writes = 0


@dataclass
class _Page:
    page_id: int
    payload: Any = None
    n_blocks: int = 1  # X-tree supernodes span several blocks


class PageManager:
    """Fixed-page-size storage with access accounting and an LRU buffer.

    ``cache_pages`` is the buffer-pool capacity in pages; zero disables
    caching so every logical read is also a physical read.
    """

    #: Transient-read retry budget: a chaos-injected
    #: :class:`~repro.chaos.faults.FlakyPageRead` is re-attempted this
    #: many times before propagating to the caller (and, in a sharded
    #: deployment, failing that probe attempt).
    FLAKY_READ_RETRIES = 3

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = 0,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if cache_pages < 0:
            raise ValueError("cache_pages must be >= 0")
        self.page_size = page_size
        self.stats = AccessStats()
        self._pages: Dict[int, _Page] = {}
        self._next_id = 0
        self._cache: Optional[LRUCache] = (
            LRUCache(cache_pages) if cache_pages else None
        )
        self._chaos = None  # fault-injection hook (repro.chaos)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def entries_per_page(self, entry_bytes: int, header_bytes: int = 32) -> int:
        """How many fixed-size entries fit in one page (at least 2, so tree
        nodes always admit a legal split)."""
        if entry_bytes <= 0:
            raise ValueError("entry_bytes must be positive")
        usable = self.page_size - header_bytes
        return max(2, usable // entry_bytes)

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def allocate(self, payload: Any = None, n_blocks: int = 1) -> int:
        """Create a page (``n_blocks`` > 1 models a supernode) and return
        its id.  Allocation counts as a write of ``n_blocks`` blocks."""
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = _Page(page_id, payload, n_blocks)
        self._count_write(n_blocks)
        self._cache_put(page_id, n_blocks)
        return page_id

    def set_chaos(self, injector) -> None:
        """Install (or, with ``None``, remove) a read-fault injector.

        ``injector`` duck-types :class:`repro.chaos.ChaosInjector`: its
        ``page_read(page_id)`` runs per read attempt and may raise
        :class:`~repro.chaos.faults.FlakyPageRead`.  Reads retry up to
        :attr:`FLAKY_READ_RETRIES` times (counting
        ``storage.flaky_reads``) before the fault propagates.  A single
        ``is None`` check when disabled — clean reads pay nothing.
        """
        self._chaos = injector

    def _chaos_read(self, page_id: int) -> None:
        from ..chaos.faults import FlakyPageRead  # stdlib-only module

        last: "Optional[BaseException]" = None
        for __ in range(self.FLAKY_READ_RETRIES + 1):
            try:
                self._chaos.page_read(page_id)
                return
            except FlakyPageRead as err:
                metrics.inc("storage.flaky_reads")
                last = err
        raise last

    def read(self, page_id: int) -> Any:
        """Fetch a page payload, counting the access."""
        page = self._pages.get(page_id)
        if page is None:
            raise KeyError(f"page {page_id} does not exist")
        if self._chaos is not None:
            self._chaos_read(page_id)
        self.stats.logical_reads += page.n_blocks
        metrics.inc("storage.logical_reads", page.n_blocks)
        if self._cache is None:
            self.stats.physical_reads += page.n_blocks
            metrics.inc("storage.physical_reads", page.n_blocks)
            analytics.record_page(page_id, page.n_blocks)
        elif not self._cache.touch(page_id):
            self.stats.physical_reads += page.n_blocks
            metrics.inc("storage.physical_reads", page.n_blocks)
            self._cache_put(page_id, page.n_blocks)
            analytics.record_page(page_id, page.n_blocks, hit=False)
        else:
            analytics.record_page(page_id, page.n_blocks, hit=True)
        return page.payload

    def write(self, page_id: int, payload: Any, n_blocks: "int | None" = None) -> None:
        """Overwrite a page payload, counting the access.  Passing
        ``n_blocks`` resizes the page (supernode growth/shrink)."""
        page = self._pages.get(page_id)
        if page is None:
            raise KeyError(f"page {page_id} does not exist")
        if n_blocks is not None:
            if n_blocks < 1:
                raise ValueError("n_blocks must be >= 1")
            page.n_blocks = n_blocks
        page.payload = payload
        self._count_write(page.n_blocks)
        self._cache_put(page_id, page.n_blocks)

    def _cache_put(self, page_id: int, n_blocks: int) -> None:
        """Admit a page to the buffer pool, bypassing oversized ones.

        A supernode wider than the whole pool can never be held within
        capacity (``LRUCache.put`` refuses it with a
        :class:`~repro.storage.cache.CacheCapacityError`); it reads
        uncached instead.  Any stale cached entry under the same id is
        dropped so a page *resized* past capacity cannot linger with its
        old block count.
        """
        if self._cache is None:
            return
        if n_blocks > self._cache.capacity_blocks:
            self._cache.evict(page_id)
            return
        self._cache.put(page_id, True, n_blocks)

    def free(self, page_id: int) -> None:
        """Release a page (and its buffer-pool slot)."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} does not exist")
        del self._pages[page_id]
        if self._cache is not None:
            self._cache.evict(page_id)

    def n_blocks_of(self, page_id: int) -> int:
        """Disk blocks occupied by ``page_id``."""
        return self._pages[page_id].n_blocks

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def total_blocks(self) -> int:
        """Total blocks allocated — the on-disk footprint of the index."""
        return sum(p.n_blocks for p in self._pages.values())

    def reset_stats(self) -> None:
        """Zero the access counters."""
        self.stats.reset()

    def drop_cache(self) -> None:
        """Empty the buffer pool (cold-start measurements)."""
        if self._cache is not None:
            self._cache.clear()

    def _count_write(self, n_blocks: int) -> None:
        self.stats.logical_writes += n_blocks
        self.stats.physical_writes += n_blocks
        metrics.inc("storage.writes", n_blocks)
