"""LRU buffer pool used by the paged storage manager.

Capacity is counted in *blocks*, not entries, so an X-tree supernode that
spans several disk blocks occupies a proportional share of the buffer —
keeping the paper's "all index structures were allowed to use the same
amount of cache" comparison honest.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..obs import metrics

__all__ = ["CacheCapacityError", "LRUCache"]


class CacheCapacityError(ValueError):
    """An entry larger than the whole buffer pool was offered to it.

    Admitting such an entry used to silently blow the pool past its
    capacity (``used_blocks > capacity_blocks`` with nothing left to
    evict), quietly breaking the "same amount of cache" accounting the
    benchmarks rely on.  Callers that can meet an oversized page — the
    :class:`~repro.storage.page.PageManager` with an X-tree supernode
    wider than the configured pool — must bypass the cache instead
    (uncached reads stay correct, just uncounted as hits).
    """


class LRUCache:
    """A block-weighted LRU map from page id to payload presence."""

    def __init__(self, capacity_blocks: int):
        if capacity_blocks <= 0:
            raise ValueError("capacity_blocks must be positive")
        self.capacity_blocks = capacity_blocks
        self._entries: "OrderedDict[int, tuple[Any, int]]" = OrderedDict()
        self._used_blocks = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    def touch(self, key: int) -> bool:
        """Mark ``key`` as most recently used; True on a hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            metrics.inc("storage.cache.hits")
            return True
        self.misses += 1
        metrics.inc("storage.cache.misses")
        return False

    def put(self, key: int, value: Any, n_blocks: int = 1) -> None:
        """Insert or refresh an entry, evicting LRU victims as needed.

        Raises :class:`CacheCapacityError` when ``n_blocks`` exceeds the
        whole pool — the entry could never be held within capacity, and
        silently admitting it would leave ``used_blocks`` permanently
        above ``capacity_blocks``.  Callers bypass the cache for such
        entries (see ``PageManager._cache_put``).
        """
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if n_blocks > self.capacity_blocks:
            raise CacheCapacityError(
                f"entry of {n_blocks} blocks cannot fit a pool of"
                f" {self.capacity_blocks} blocks"
            )
        if key in self._entries:
            __, old_blocks = self._entries.pop(key)
            self._used_blocks -= old_blocks
        self._entries[key] = (value, n_blocks)
        self._used_blocks += n_blocks
        while self._used_blocks > self.capacity_blocks and len(self._entries) > 1:
            self._evict_lru(protect=key)

    def evict(self, key: int) -> None:
        """Remove ``key`` if present (idempotent)."""
        if key in self._entries:
            __, n_blocks = self._entries.pop(key)
            self._used_blocks -= n_blocks

    def clear(self) -> None:
        """Empty the pool."""
        self._entries.clear()
        self._used_blocks = 0

    def _evict_lru(self, protect: int) -> None:
        for victim in self._entries:
            if victim != protect:
                __, n_blocks = self._entries.pop(victim)
                self._used_blocks -= n_blocks
                return
