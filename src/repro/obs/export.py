"""Exporters: metrics and traces to JSON / CSV / result tables.

Output formats line up with what the repository already produces:

* **CSV** uses the same header-plus-comma-rows shape as
  :meth:`repro.eval.reporting.ResultTable.to_csv`, so metric dumps sit
  next to the figure tables under ``benchmarks/results/``;
* **profile JSON** is one self-describing document
  ``{"meta": ..., "metrics": ..., "trace": ...}`` written by the CLI's
  ``--profile`` flag and by ``benchmarks/profile_baseline.py``;
  :func:`load_profile` reads it back for round-trip tests and
  longitudinal comparisons between PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from .metrics import MetricsRegistry
from .tracing import Span, Tracer

if TYPE_CHECKING:  # runtime import is lazy: repro.obs stays dependency-free
    from ..eval.reporting import ResultTable

__all__ = [
    "metrics_to_dict",
    "metrics_to_csv",
    "metrics_table",
    "stats_table",
    "span_to_dict",
    "trace_to_list",
    "write_profile",
    "load_profile",
    "ProfileError",
    "ProfileDecodeError",
    "ProfileVersionError",
    "ProfileSchemaError",
]

PROFILE_FORMAT_VERSION = 1


class ProfileError(ValueError):
    """A profile document could not be loaded.

    Base class for every :func:`load_profile` failure, so callers can
    catch one type; subclasses say *why* (not JSON at all, wrong format
    version, missing required keys).  Subclasses ``ValueError`` so
    pre-existing ``except ValueError`` call sites keep working.
    """


class ProfileDecodeError(ProfileError):
    """The file is not valid JSON (or not a JSON object)."""


class ProfileVersionError(ProfileError):
    """The document's ``format_version`` is not one this code reads."""


class ProfileSchemaError(ProfileError):
    """The document is missing a required top-level key."""


# ======================================================================
# Metrics
# ======================================================================

def metrics_to_dict(registry: MetricsRegistry) -> "Dict[str, Any]":
    """Structured view: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
    return registry.as_dict()


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Flat ``metric,kind,value`` CSV of every metric.

    Histograms are flattened to one row per aggregate
    (``hist.count``, ``hist.mean``, ...), keeping the file a plain
    two-dimensional table like the figure CSVs.
    """
    data = metrics_to_dict(registry)
    lines = ["metric,kind,value"]
    for name, value in data["counters"].items():
        lines.append(f"{name},counter,{value:g}")
    for name, value in data["gauges"].items():
        lines.append(f"{name},gauge,{value:g}")
    for name, summary in data["histograms"].items():
        for stat, value in summary.items():
            lines.append(f"{name}.{stat},histogram,{value:g}")
    return "\n".join(lines)


def metrics_table(
    registry: MetricsRegistry, title: str = "Metrics"
) -> "ResultTable":
    """The registry as a printable :class:`ResultTable`."""
    from ..eval.reporting import ResultTable

    table = ResultTable(title, ["metric", "kind", "value"])
    data = metrics_to_dict(registry)
    for name, value in data["counters"].items():
        table.add_row(metric=name, kind="counter", value=value)
    for name, value in data["gauges"].items():
        table.add_row(metric=name, kind="gauge", value=value)
    for name, summary in data["histograms"].items():
        for stat, value in summary.items():
            table.add_row(
                metric=f"{name}.{stat}", kind="histogram", value=value
            )
    return table


def stats_table(
    stats: "Mapping[str, float]", title: str = "Index statistics"
) -> "ResultTable":
    """A plain name/value mapping as a printable :class:`ResultTable`.

    Shared by every CLI path that reports index statistics, so ``build``,
    ``info`` and ``stats`` render identically.
    """
    from ..eval.reporting import ResultTable

    table = ResultTable(title, ["statistic", "value"])
    for name in sorted(stats):
        table.add_row(statistic=name, value=stats[name])
    return table


# ======================================================================
# Traces
# ======================================================================

def span_to_dict(span: Span) -> "Dict[str, Any]":
    """One span tree as nested plain dicts (JSON-ready)."""
    return {
        "name": span.name,
        "duration_seconds": span.duration_seconds,
        "attributes": dict(span.attributes),
        "children": [span_to_dict(child) for child in span.children],
    }


def trace_to_list(tracer: "Optional[Tracer]") -> "List[Dict[str, Any]]":
    """Every collected root span of ``tracer`` as nested dicts."""
    if tracer is None:
        return []
    return [span_to_dict(root) for root in tracer.spans]


# ======================================================================
# Profiles
# ======================================================================

def write_profile(
    path: "str | Path",
    registry: "Optional[MetricsRegistry]" = None,
    tracer: "Optional[Tracer]" = None,
    meta: "Optional[Mapping[str, Any]]" = None,
) -> "Dict[str, Any]":
    """Write a run profile (metrics + trace + metadata) as JSON.

    Returns the document that was written.
    """
    document: "Dict[str, Any]" = {
        "format_version": PROFILE_FORMAT_VERSION,
        "meta": dict(meta or {}),
        "metrics": (
            metrics_to_dict(registry)
            if registry is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        ),
        "trace": trace_to_list(tracer),
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_profile(path: "str | Path") -> "Dict[str, Any]":
    """Read a profile document written by :func:`write_profile`.

    Raises a typed :class:`ProfileError` subclass — never a bare
    ``KeyError`` or ``json.JSONDecodeError`` — so callers comparing
    profiles across runs can distinguish "corrupt file", "produced by an
    incompatible version" and "not a profile at all".
    """
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ProfileDecodeError(
            f"{path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ProfileDecodeError(
            f"{path} is not a JSON object "
            f"(got {type(document).__name__})"
        )
    version = document.get("format_version")
    if version != PROFILE_FORMAT_VERSION:
        raise ProfileVersionError(
            f"{path} has format_version {version!r}; "
            f"this build reads version {PROFILE_FORMAT_VERSION}"
        )
    missing = [key for key in ("metrics", "trace") if key not in document]
    if missing:
        raise ProfileSchemaError(
            f"{path} is not a repro profile document: "
            f"missing key(s) {', '.join(missing)}"
        )
    return document
