"""Workload capture: a versioned log of sampled queries and outcomes.

A captured workload is the input half of an A/B experiment: re-run the
*same* query stream against a different index, shard count, partitioner
or cache size and diff the answers and page costs
(:mod:`repro.eval.replay` does the re-running).  The capture format is
deliberately tiny and versioned:

* **JSONL** — a header line ``{"format": "repro.workload",
  "version": 1, "dim": D}`` followed by one record per sampled query:
  ``{"q": [...], "id": ..., "d": ..., "pages": ..., "source": ...}``
  (plus ``trace_id`` when one is bound).  Append-friendly: the live
  ``serve --capture PATH`` sink;
* **NPZ** — the same content column-wise (``queries``, ``ids``,
  ``distances``, ``pages``) for bulk handling, written by
  :func:`save_workload_npz`.

:func:`load_workload` reads either by extension.  Like the event log,
the recorder samples with a seeded RNG (reproducible), serialises under
one lock, and stays off the hot path entirely until installed —
:func:`record_query` costs one ``is None`` check while no recorder is
installed.  Queries executed inside a shard probe scope
(:func:`repro.obs.analytics.shard_scope`) are skipped: the outer
sharded query is the workload, not the N inner per-shard fan-out calls.
"""

from __future__ import annotations

import json
import random
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from . import tracectx
from .analytics import current_shard

__all__ = [
    "WORKLOAD_FORMAT",
    "WORKLOAD_VERSION",
    "CapturedQuery",
    "Workload",
    "WorkloadFormatError",
    "WorkloadRecorder",
    "capturing",
    "get_recorder",
    "install",
    "load_workload",
    "record_query",
    "save_workload_npz",
    "uninstall",
]

WORKLOAD_FORMAT = "repro.workload"
WORKLOAD_VERSION = 1

#: In-memory retention bound for a live recorder.
DEFAULT_CAPACITY = 100_000


class WorkloadFormatError(ValueError):
    """A workload file that cannot be read (wrong format or version)."""


class CapturedQuery:
    """One sampled query and the answer the capturing index gave."""

    __slots__ = ("query", "point_id", "distance", "pages", "source",
                 "trace_id")

    def __init__(
        self,
        query: "np.ndarray",
        point_id: int,
        distance: float,
        pages: int = 0,
        source: str = "",
        trace_id: "Optional[str]" = None,
    ):
        self.query = np.asarray(query, dtype=np.float64)
        self.point_id = int(point_id)
        self.distance = float(distance)
        self.pages = int(pages)
        self.source = source
        self.trace_id = trace_id

    def as_record(self) -> "Dict[str, Any]":
        record: "Dict[str, Any]" = {
            "q": self.query.tolist(),
            "id": self.point_id,
            "d": self.distance,
            "pages": self.pages,
        }
        if self.source:
            record["source"] = self.source
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        return record


class Workload:
    """A loaded capture: query matrix plus per-query outcomes."""

    def __init__(
        self,
        queries: "np.ndarray",
        point_ids: "np.ndarray",
        distances: "np.ndarray",
        pages: "Optional[np.ndarray]" = None,
        version: int = WORKLOAD_VERSION,
    ):
        self.queries = np.atleast_2d(
            np.asarray(queries, dtype=np.float64)
        )
        self.point_ids = np.asarray(point_ids, dtype=np.int64)
        self.distances = np.asarray(distances, dtype=np.float64)
        n = self.queries.shape[0]
        if self.point_ids.shape[0] != n or self.distances.shape[0] != n:
            raise WorkloadFormatError(
                "queries, ids and distances disagree on length"
            )
        self.pages = (
            np.asarray(pages, dtype=np.int64)
            if pages is not None
            else np.zeros(n, dtype=np.int64)
        )
        self.version = int(version)

    @property
    def dim(self) -> int:
        return int(self.queries.shape[1]) if self.queries.size else 0

    def __len__(self) -> int:
        return int(self.queries.shape[0])

    def __iter__(self) -> "Iterator[CapturedQuery]":
        for i in range(len(self)):
            yield CapturedQuery(
                self.queries[i],
                int(self.point_ids[i]),
                float(self.distances[i]),
                int(self.pages[i]),
            )


class WorkloadRecorder:
    """Append sampled queries + outcomes to a ring and optional JSONL
    sink.

    ``sink`` may be a path (owned: opened for append, header written if
    the file is empty, closed by :meth:`close`) or a file-like object
    (borrowed).  ``sample=0.1`` keeps ~10% of queries, decided by a
    seeded RNG so a capture is reproducible for a given traffic order.
    """

    def __init__(
        self,
        dim: "Optional[int]" = None,
        capacity: int = DEFAULT_CAPACITY,
        sample: float = 1.0,
        sink: "Any | None" = None,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be in (0, 1]")
        self.dim = dim
        self.capacity = int(capacity)
        self.sample = float(sample)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._records: "List[CapturedQuery]" = []
        self.seen = 0
        self.recorded = 0
        self.dropped = 0
        self._own_sink = isinstance(sink, (str, Path))
        self._sink = (
            open(sink, "a", encoding="utf-8") if self._own_sink else sink
        )
        self._header_written = False
        if self._own_sink and self._sink.tell() > 0:
            self._header_written = True  # appending to an existing log

    def _write_header(self, dim: int) -> None:
        header = {
            "format": WORKLOAD_FORMAT,
            "version": WORKLOAD_VERSION,
            "dim": int(dim),
        }
        self._sink.write(json.dumps(header, sort_keys=True) + "\n")
        self._header_written = True

    def record(
        self,
        query: "np.ndarray",
        point_id: int,
        distance: float,
        pages: int = 0,
        source: str = "",
    ) -> bool:
        """Capture one answered query; returns whether it survived
        sampling.  The first sinked record writes the version header."""
        with self._lock:
            self.seen += 1
            if self.sample < 1.0 and self._rng.random() >= self.sample:
                return False
            captured = CapturedQuery(
                query,
                point_id,
                distance,
                pages,
                source,
                tracectx.current_trace_id(),
            )
            if self.dim is None:
                self.dim = int(captured.query.shape[-1])
            if len(self._records) >= self.capacity:
                self._records.pop(0)
                self.dropped += 1
            self._records.append(captured)
            self.recorded += 1
            if self._sink is not None:
                if not self._header_written:
                    self._write_header(self.dim)
                self._sink.write(
                    json.dumps(captured.as_record(), sort_keys=True) + "\n"
                )
                self._sink.flush()
        return True

    def workload(self) -> Workload:
        """The retained capture as a :class:`Workload` (copy)."""
        with self._lock:
            records = list(self._records)
        if not records:
            dim = self.dim or 0
            return Workload(
                np.empty((0, dim)), np.empty(0, np.int64), np.empty(0)
            )
        return Workload(
            np.stack([r.query for r in records]),
            np.array([r.point_id for r in records], dtype=np.int64),
            np.array([r.distance for r in records]),
            np.array([r.pages for r in records], dtype=np.int64),
        )

    def close(self) -> None:
        """Close an owned (path-opened) sink; borrowed sinks are kept."""
        with self._lock:
            if self._own_sink and self._sink is not None:
                self._sink.close()
            self._sink = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------

def save_workload_npz(workload: Workload, path: "str | Path") -> Path:
    """Write a workload column-wise to ``path`` (``.npz``)."""
    path = Path(path)
    np.savez_compressed(
        path,
        format=np.array(WORKLOAD_FORMAT),
        version=np.array(WORKLOAD_VERSION, dtype=np.int64),
        queries=workload.queries,
        ids=workload.point_ids,
        distances=workload.distances,
        pages=workload.pages,
    )
    return path


def _load_jsonl(path: Path) -> Workload:
    queries: "List[List[float]]" = []
    ids: "List[int]" = []
    distances: "List[float]" = []
    pages: "List[int]" = []
    header: "Optional[Dict[str, Any]]" = None
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise WorkloadFormatError(
                    f"{path}:{lineno}: not JSON: {err}"
                ) from err
            if header is None:
                if record.get("format") != WORKLOAD_FORMAT:
                    raise WorkloadFormatError(
                        f"{path}: missing workload header (format"
                        f" {record.get('format')!r})"
                    )
                if record.get("version") != WORKLOAD_VERSION:
                    raise WorkloadFormatError(
                        f"{path}: unsupported workload version"
                        f" {record.get('version')!r}"
                    )
                header = record
                continue
            try:
                queries.append([float(x) for x in record["q"]])
                ids.append(int(record["id"]))
                distances.append(float(record["d"]))
                pages.append(int(record.get("pages", 0)))
            except (KeyError, TypeError, ValueError) as err:
                raise WorkloadFormatError(
                    f"{path}:{lineno}: malformed record: {err}"
                ) from err
    if header is None:
        raise WorkloadFormatError(f"{path}: empty workload file")
    dim = int(header.get("dim", 0))
    if not queries:
        return Workload(
            np.empty((0, dim)), np.empty(0, np.int64), np.empty(0)
        )
    return Workload(
        np.asarray(queries),
        np.asarray(ids, dtype=np.int64),
        np.asarray(distances),
        np.asarray(pages, dtype=np.int64),
    )


def _load_npz(path: Path) -> Workload:
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data or str(data["format"]) != WORKLOAD_FORMAT:
            raise WorkloadFormatError(
                f"{path}: not a workload archive"
            )
        version = int(data["version"])
        if version != WORKLOAD_VERSION:
            raise WorkloadFormatError(
                f"{path}: unsupported workload version {version}"
            )
        return Workload(
            data["queries"],
            data["ids"],
            data["distances"],
            data["pages"],
            version=version,
        )


def load_workload(path: "str | Path") -> Workload:
    """Read a captured workload — ``.npz`` archives by signature,
    anything else as JSONL.  Raises :class:`WorkloadFormatError`."""
    path = Path(path)
    if not path.exists():
        raise WorkloadFormatError(f"{path}: no such workload file")
    if path.suffix == ".npz":
        return _load_npz(path)
    return _load_jsonl(path)


# ======================================================================
# Module-level fast path (mirrors repro.obs.events)
# ======================================================================

_recorder: "Optional[WorkloadRecorder]" = None


def install(
    recorder: "Optional[WorkloadRecorder]" = None, **kwargs: Any
) -> WorkloadRecorder:
    """Install (and return) the process-wide workload recorder."""
    global _recorder
    if recorder is not None and kwargs:
        raise ValueError(
            "pass a WorkloadRecorder or constructor kwargs, not both"
        )
    _recorder = (
        recorder if recorder is not None else WorkloadRecorder(**kwargs)
    )
    return _recorder


def uninstall() -> None:
    """Remove the workload recorder (the caller closes it)."""
    global _recorder
    _recorder = None


def get_recorder() -> "Optional[WorkloadRecorder]":
    """The installed recorder, or ``None``."""
    return _recorder


def record_query(
    query: "np.ndarray",
    point_id: int,
    distance: float,
    pages: int = 0,
    source: str = "",
) -> None:
    """Hot-path capture hook; one ``is None`` check when off.

    Skips queries executing inside a shard probe scope — the sharded
    index records the outer query once, not its N fan-out probes.
    """
    recorder = _recorder
    if recorder is None:
        return
    if current_shard() is not None:
        return
    recorder.record(query, point_id, distance, pages, source)


def record_batch(
    queries: "np.ndarray",
    point_ids: "np.ndarray",
    distances: "np.ndarray",
    pages: int = 0,
) -> None:
    """Hot-path capture hook for one answered batch (no-op when off).

    The batch's shared page cost is amortised evenly across its queries
    (the same accounting the batched engine itself reports).
    """
    recorder = _recorder
    if recorder is None:
        return
    if current_shard() is not None:
        return
    n = int(queries.shape[0])
    if n == 0:
        return
    per_query = int(pages) // n
    for i in range(n):
        recorder.record(
            queries[i],
            int(point_ids[i]),
            float(distances[i]),
            per_query,
            source="batch",
        )


@contextmanager
def capturing(**kwargs: Any) -> "Iterator[WorkloadRecorder]":
    """Capture queries for a ``with`` block onto a fresh recorder."""
    global _recorder
    previous = _recorder
    fresh = WorkloadRecorder(**kwargs)
    _recorder = fresh
    try:
        yield fresh
    finally:
        _recorder = previous
        fresh.close()
