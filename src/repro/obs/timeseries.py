"""Windowed live telemetry: per-second buckets over selected metrics.

The cumulative registry (:mod:`repro.obs.metrics`) answers "how much
work has this process done"; an *operator* asks a different question —
what is the p99 latency, queue depth and fallback rate **right now**.
This module answers it with a lock-protected ring of per-second buckets:
every tracked event lands in the bucket of its wall-clock second, and a
*window* aggregates the last N seconds into rates and percentiles.

Design constraints, matching the rest of ``repro.obs``:

1. **Bounded memory.**  The ring holds ``horizon_seconds`` buckets
   (default 120) and reuses slots modulo the horizon, so a month-long
   serve process stores exactly as much as a two-minute one.  Per-bucket
   histogram samples are reservoir-capped (seeded RNG, deterministic).
2. **Cheap and optional.**  Nothing records here unless a
   :class:`TimeSeries` is *installed* on the metrics module
   (:func:`repro.obs.metrics.install_timeseries`); the disabled metrics
   fast path is untouched, and the enabled path adds one ``None`` check.
3. **Selective.**  Only names matching the configured prefixes are
   tracked (default: ``serve.`` and ``query.``) — build-time counter
   storms do not churn the serving dashboard.

The standard windows are 1s / 10s / 60s (:data:`DEFAULT_WINDOWS`);
:func:`dashboard` condenses one window into the operator quantities
(QPS, p50/p99, queue depth, fallback %) and :func:`dashboard_line` /
:func:`telemetry_table` render them for ``serve --stats-interval`` and
``stats --watch``.  See ``docs/observability.md`` ("Live telemetry").
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_SAMPLE_CAP",
    "DEFAULT_HORIZON_SECONDS",
    "DEFAULT_PREFIXES",
    "DEFAULT_WINDOWS",
    "MetricWindow",
    "TimeSeries",
    "WindowSnapshot",
    "dashboard",
    "dashboard_line",
    "telemetry_table",
]

#: Sliding windows (seconds) rendered by the dashboard surfaces.
DEFAULT_WINDOWS: "Tuple[int, ...]" = (1, 10, 60)

#: Ring length: how far back a window may reach.
DEFAULT_HORIZON_SECONDS = 120

#: Metric-name prefixes tracked by default (serving + query traffic,
#: including the sharded scatter-gather counters).
DEFAULT_PREFIXES: "Tuple[str, ...]" = ("serve.", "query.", "shard.")

#: Reservoir cap on stored samples *per bucket per metric*.
BUCKET_SAMPLE_CAP = 512

#: Exemplar trace ids retained *per bucket per metric* — only the
#: largest observations keep their trace id, since those are the ones
#: a p99 on /telemetry will point at.
BUCKET_EXEMPLAR_CAP = 4

_COUNTER = "counter"
_HISTOGRAM = "histogram"
_GAUGE = "gauge"


class _Bucket:
    """Aggregates of one metric within one wall-clock second."""

    __slots__ = (
        "kind", "count", "total", "min", "max", "last", "samples",
        "exemplars",
    )

    def __init__(self, kind: str):
        self.kind = kind
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0
        self.samples: "List[float]" = []
        #: ``(value, trace_id)`` for the largest traced observations.
        self.exemplars: "List[Tuple[float, str]]" = []


def _percentile(ordered: "List[float]", q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sample list."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not ordered:
        return 0.0
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class MetricWindow:
    """One metric aggregated over one sliding window."""

    __slots__ = (
        "name", "kind", "seconds", "count", "total", "min", "max", "last",
        "_samples", "_exemplars",
    )

    def __init__(self, name: str, kind: str, seconds: float):
        self.name = name
        self.kind = kind
        self.seconds = seconds
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0
        self._samples: "List[float]" = []
        self._exemplars: "List[Tuple[float, str]]" = []

    def _merge(self, bucket: _Bucket) -> None:
        self.count += bucket.count
        self.total += bucket.total
        if bucket.min < self.min:
            self.min = bucket.min
        if bucket.max > self.max:
            self.max = bucket.max
        self.last = bucket.last  # buckets are merged oldest -> newest
        self._samples.extend(bucket.samples)
        if bucket.exemplars:
            self._exemplars.extend(bucket.exemplars)
            self._exemplars.sort(key=lambda e: e[0], reverse=True)
            del self._exemplars[BUCKET_EXEMPLAR_CAP:]

    @property
    def rate(self) -> float:
        """Per-second rate over the window.

        Counters: *amount* per second (e.g. pages/s); histograms:
        *observations* per second (e.g. completed queries per second for
        a latency histogram); gauges have no meaningful rate (0.0).
        """
        if self.seconds <= 0 or self.kind == _GAUGE:
            return 0.0
        if self.kind == _COUNTER:
            return self.total / self.seconds
        return self.count / self.seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Percentile of the window's (reservoir-sampled) observations."""
        return _percentile(sorted(self._samples), q)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of the window's observations above ``threshold``.

        The bad-event fraction used by latency SLOs
        (:mod:`repro.obs.slo`).  Computed over the reservoir sample, so
        it is exact until a bucket overflows ``BUCKET_SAMPLE_CAP`` and a
        sound estimate after.  Empty windows report 0.0.
        """
        if not self._samples:
            return 0.0
        above = sum(1 for v in self._samples if v > threshold)
        return above / len(self._samples)

    def exemplars(self) -> "List[Tuple[float, str]]":
        """The window's tail exemplars: ``(value, trace_id)``, largest
        first.  Only observations recorded with a trace id appear."""
        return list(self._exemplars)

    def summary(self) -> "Dict[str, float]":
        """JSON-ready aggregate view (used by the /telemetry endpoint)."""
        if self.count == 0:
            return {"count": 0, "rate": 0.0}
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "rate": self.rate,
            "last": self.last,
        }
        if self.kind == _HISTOGRAM:
            ordered = sorted(self._samples)
            out["p50"] = _percentile(ordered, 50)
            out["p95"] = _percentile(ordered, 95)
            out["p99"] = _percentile(ordered, 99)
            if self._exemplars:
                # Tail exemplars: /telemetry consumers resolve these ids
                # against the trace store (GET /trace/<id>).
                out["exemplars"] = [
                    {"value": value, "trace_id": trace_id}
                    for value, trace_id in self._exemplars
                ]
        return out


class WindowSnapshot:
    """All tracked metrics aggregated over one sliding window."""

    def __init__(self, seconds: float, metrics: "Dict[str, MetricWindow]"):
        self.seconds = seconds
        self.metrics = metrics

    def get(self, name: str) -> "Optional[MetricWindow]":
        return self.metrics.get(name)

    def names(self) -> "List[str]":
        return sorted(self.metrics)

    def total(self, name: str, default: float = 0.0) -> float:
        window = self.metrics.get(name)
        return window.total if window is not None else default

    def count(self, name: str, default: int = 0) -> int:
        window = self.metrics.get(name)
        return window.count if window is not None else default

    def as_dict(self) -> "Dict[str, Dict[str, float]]":
        return {
            name: self.metrics[name].summary() for name in self.names()
        }


class TimeSeries:
    """Lock-protected ring of per-second buckets for selected metrics.

    Thread-safe: recorders (query threads, the serve flush loop) and
    readers (the stats printer, the scrape endpoint) share one lock.
    ``clock`` is injectable for tests; it must be monotonic seconds.
    """

    def __init__(
        self,
        horizon_seconds: int = DEFAULT_HORIZON_SECONDS,
        prefixes: "Sequence[str]" = DEFAULT_PREFIXES,
        sample_cap: int = BUCKET_SAMPLE_CAP,
        clock: "Callable[[], float]" = time.monotonic,
        seed: int = 0,
    ):
        if horizon_seconds < max(DEFAULT_WINDOWS):
            raise ValueError(
                f"horizon_seconds must cover the largest window "
                f"({max(DEFAULT_WINDOWS)}s)"
            )
        if sample_cap < 1:
            raise ValueError("sample_cap must be >= 1")
        self._lock = threading.Lock()
        self._prefixes = tuple(prefixes)
        self._sample_cap = sample_cap
        self._clock = clock
        self._rng = random.Random(seed)
        # Ring slot i holds (second, {name: _Bucket}) for a second with
        # ``second % horizon == i``; a slot is reset lazily when a new
        # second claims it.
        self._ring: "List[Optional[Tuple[int, Dict[str, _Bucket]]]]" = (
            [None] * int(horizon_seconds)
        )

    # ------------------------------------------------------------------
    # Recording (called from repro.obs.metrics when installed)
    # ------------------------------------------------------------------
    def tracks(self, name: str) -> bool:
        """Whether ``name`` falls inside the configured prefixes."""
        return name.startswith(self._prefixes)

    def _bucket(self, name: str, kind: str) -> _Bucket:
        """The current second's bucket for ``name`` (caller holds lock)."""
        second = int(self._clock())
        slot = second % len(self._ring)
        entry = self._ring[slot]
        if entry is None or entry[0] != second:
            entry = (second, {})
            self._ring[slot] = entry
        bucket = entry[1].get(name)
        if bucket is None:
            bucket = entry[1][name] = _Bucket(kind)
        return bucket

    def add(self, name: str, amount: float = 1.0) -> None:
        """Counter increment within the current second."""
        if not self.tracks(name):
            return
        with self._lock:
            bucket = self._bucket(name, _COUNTER)
            bucket.count += 1
            bucket.total += amount
            bucket.last = amount

    def observe(
        self, name: str, value: float, trace_id: "Optional[str]" = None
    ) -> None:
        """Histogram observation within the current second.

        ``trace_id`` links the observation to a stored trace: the bucket
        keeps the ids of its largest traced observations, so a window's
        p99 can point at the concrete request behind it (exemplars).
        """
        if not self.tracks(name):
            return
        value = float(value)
        with self._lock:
            bucket = self._bucket(name, _HISTOGRAM)
            bucket.count += 1
            bucket.total += value
            if value < bucket.min:
                bucket.min = value
            if value > bucket.max:
                bucket.max = value
            bucket.last = value
            if len(bucket.samples) < self._sample_cap:
                bucket.samples.append(value)
            else:
                j = self._rng.randrange(bucket.count)
                if j < self._sample_cap:
                    bucket.samples[j] = value
            if trace_id is not None:
                exemplars = bucket.exemplars
                if (
                    len(exemplars) < BUCKET_EXEMPLAR_CAP
                    or value > exemplars[-1][0]
                ):
                    exemplars.append((value, trace_id))
                    exemplars.sort(key=lambda e: e[0], reverse=True)
                    del exemplars[BUCKET_EXEMPLAR_CAP:]

    def set_gauge(self, name: str, value: float) -> None:
        """Gauge update within the current second (keeps last and max)."""
        if not self.tracks(name):
            return
        value = float(value)
        with self._lock:
            bucket = self._bucket(name, _GAUGE)
            bucket.count += 1
            bucket.total += value
            if value < bucket.min:
                bucket.min = value
            if value > bucket.max:
                bucket.max = value
            bucket.last = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def window(self, seconds: int) -> WindowSnapshot:
        """Aggregate of the last ``seconds`` buckets (current one included).

        ``seconds`` is clamped to the ring horizon.  Rates divide by the
        nominal window length, so a window that is still filling reports
        a conservative (lower) rate rather than an extrapolated one.
        """
        if seconds < 1:
            raise ValueError("window seconds must be >= 1")
        seconds = min(int(seconds), len(self._ring))
        merged: "Dict[str, MetricWindow]" = {}
        with self._lock:
            now = int(self._clock())
            for second in range(now - seconds + 1, now + 1):
                entry = self._ring[second % len(self._ring)]
                if entry is None or entry[0] != second:
                    continue
                for name, bucket in entry[1].items():
                    window = merged.get(name)
                    if window is None:
                        window = merged[name] = MetricWindow(
                            name, bucket.kind, float(seconds)
                        )
                    window._merge(bucket)
        return WindowSnapshot(float(seconds), merged)

    def windows(
        self, seconds: "Sequence[int]" = DEFAULT_WINDOWS
    ) -> "Dict[int, WindowSnapshot]":
        """The standard multi-window view: ``{1: ..., 10: ..., 60: ...}``."""
        return {int(s): self.window(int(s)) for s in seconds}

    def clear(self) -> None:
        with self._lock:
            for i in range(len(self._ring)):
                self._ring[i] = None


# ======================================================================
# Dashboard condensation
# ======================================================================

#: Latency histograms the dashboard looks for, in preference order:
#: the serving layer's enqueue-to-answer latency, then the client-side
#: latency recorded by ``stats --watch``.
_LATENCY_METRICS = ("serve.latency_ms", "query.latency_ms")

#: Counters summed into the dashboard's "fallback" rate: any answer
#: that left the fast path (service degradation rungs, out-of-space or
#: empty-point-query branch-and-bound fallbacks).  ``serve.fallback``
#: is dimensional (``stage=`` label), so every labeled child is summed.
_FALLBACK_METRICS = (
    "serve.fallback",
    "query.fallbacks",
)


def _fallback_total(snapshot: WindowSnapshot) -> float:
    """Sum the fallback counters, including labeled children."""
    total = 0.0
    for base in _FALLBACK_METRICS:
        prefix = base + "{"
        total += snapshot.total(base)
        total += sum(
            window.total
            for name, window in snapshot.metrics.items()
            if name.startswith(prefix)
        )
    return total


def dashboard(ts: TimeSeries, seconds: int = 10) -> "Dict[str, float]":
    """One window condensed into the operator quantities.

    QPS and percentiles come from the first latency histogram with
    traffic in the window (``serve.latency_ms``, else
    ``query.latency_ms``); queue depth is the last gauge value;
    ``fallback_pct`` is the share of completions that took any fallback
    path.
    """
    snapshot = ts.window(seconds)
    latency = None
    for name in _LATENCY_METRICS:
        candidate = snapshot.get(name)
        if candidate is not None and candidate.count:
            latency = candidate
            break
    completed = latency.count if latency is not None else 0
    depth = snapshot.get("serve.queue.depth")
    fallbacks = _fallback_total(snapshot)
    return {
        "window_s": float(snapshot.seconds),
        "completed": float(completed),
        "qps": latency.rate if latency is not None else 0.0,
        "p50_ms": latency.percentile(50) if latency is not None else 0.0,
        "p99_ms": latency.percentile(99) if latency is not None else 0.0,
        "max_ms": (
            latency.max if latency is not None and completed else 0.0
        ),
        "queue_depth": depth.last if depth is not None else 0.0,
        "fallback_pct": 100.0 * fallbacks / completed if completed else 0.0,
    }


def dashboard_line(ts: TimeSeries, seconds: int = 10) -> str:
    """The one-line dashboard printed by ``serve --stats-interval``."""
    d = dashboard(ts, seconds)
    return (
        f"[telemetry {int(d['window_s']):>3d}s] "
        f"qps={d['qps']:8.1f}  "
        f"p50={d['p50_ms']:7.2f}ms  "
        f"p99={d['p99_ms']:7.2f}ms  "
        f"queue={d['queue_depth']:5.0f}  "
        f"fallback={d['fallback_pct']:5.1f}%"
    )


def telemetry_table(
    ts: TimeSeries, windows: "Sequence[int]" = DEFAULT_WINDOWS, title: str = "Live telemetry"
):
    """The multi-window dashboard as a printable ``ResultTable``.

    Rendered by ``stats --watch`` and ``serve --stats`` shutdown output;
    the import is lazy so ``repro.obs`` stays dependency-free.
    """
    from ..eval.reporting import ResultTable

    table = ResultTable(
        title,
        ["window", "qps", "p50_ms", "p99_ms", "max_ms", "queue_depth",
         "fallback_pct"],
    )
    for seconds in windows:
        d = dashboard(ts, int(seconds))
        table.add_row(
            window=f"{int(seconds)}s",
            qps=d["qps"],
            p50_ms=d["p50_ms"],
            p99_ms=d["p99_ms"],
            max_ms=d["max_ms"],
            queue_depth=d["queue_depth"],
            fallback_pct=d["fallback_pct"],
        )
    return table
