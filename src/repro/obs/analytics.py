"""Workload analytics: access heatmaps, shard load shares, skew reports.

The paper's cost model charges a query by the pages it touches, so the
*distribution* of those touches over cells, pages and shards is the
ground truth every partitioner or cache decision should be made from.
This module turns the raw access stream into that distribution:

* :class:`TopKSketch` — a bounded *space-saving* top-K counter
  (Metwally et al., ICDT 2005) with periodic exponential decay, so the
  hot set tracks the *recent* workload instead of fossilising on the
  first burst.  Memory is O(capacity) regardless of how many distinct
  cells or pages exist;
* :class:`AccessRecorder` — the thread-safe aggregation point: per-cell
  and per-page hit sketches, per-shard query/page/cache counters, and
  the :meth:`~AccessRecorder.report` skew document (load shares, Gini
  coefficient, cache-hit ratio by shard, partitioner-balance verdict);
* a module-level fast path in the house style: every hot-path hook
  (:func:`record_cells`, :func:`record_page`, :func:`record_probe`)
  costs one ``is None`` check while no recorder is installed, so the
  index/storage layers stay within the metrics-off overhead contract;
* :func:`shard_scope` — a ``contextvars`` scope entered around each
  shard probe, attributing the cell and page traffic that probe causes
  to its shard (and letting the workload recorder skip the inner
  per-shard ``nearest`` calls a scatter fans out into).

Everything here is off by default; ``serve --analytics`` (or
:func:`install` directly) turns it on.  The report is served live at
``GET /analytics`` and rendered by ``repro analyze``.
"""

from __future__ import annotations

import contextvars
import threading

import numpy as np
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "AccessRecorder",
    "TopKSketch",
    "active",
    "current_shard",
    "gini",
    "install",
    "uninstall",
    "get_recorder",
    "record_cells",
    "record_page",
    "record_probe",
    "recording",
    "shard_scope",
    "DEFAULT_SKETCH_CAPACITY",
    "DEFAULT_DECAY_EVERY",
    "DEFAULT_DECAY_FACTOR",
    "DEFAULT_HOT_SHARE_FACTOR",
]

#: Tracked keys per sketch.  Far beyond any top-K an operator
#: inspects, yet a few tens of KiB; sized generously because eviction
#: is the sketch's only O(capacity) operation — while the working set
#: fits, every update is a dict increment.
DEFAULT_SKETCH_CAPACITY = 4096

#: Exponential decay cadence: every this-many recorded hits the whole
#: sketch is scaled by :data:`DEFAULT_DECAY_FACTOR`.  Counting events
#: rather than wall time keeps the sketch deterministic for a given
#: access stream (replayable, testable) while still forgetting cold
#: keys under sustained traffic.
DEFAULT_DECAY_EVERY = 8192

#: Multiplier applied at each decay step; 0.5 halves every cadence.
DEFAULT_DECAY_FACTOR = 0.5

#: A shard is *hot* when its work share exceeds the fair share
#: (``1 / n_shards``) by this factor.  Scatter-gather probes every
#: shard, so per-probe descent cost puts a floor under every shard's
#: share — genuine hotspots land around 1.3-1.4x fair share while
#: balanced fleets stay within ~1.05x; 1.25 splits those cleanly.
DEFAULT_HOT_SHARE_FACTOR = 1.25


def gini(values: "Iterable[float]") -> float:
    """Gini coefficient of a non-negative load distribution.

    0.0 is perfectly balanced, 1.0 is all load on one member.  Empty or
    all-zero input reports 0.0 (no traffic is not skew).
    """
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    total = sum(ordered)
    if n == 0 or total <= 0.0:
        return 0.0
    weighted = sum((2 * i - n + 1) * v for i, v in enumerate(ordered))
    return weighted / (n * total)


class TopKSketch:
    """Bounded heavy-hitter counter with periodic exponential decay.

    The *space-saving* update: a tracked key increments its counter; an
    untracked key evicts the current minimum and inherits its count
    plus one (the classic overestimate bound: a reported count exceeds
    the true count by at most the evicted minimum).  ``decay`` scales
    every counter down, so a key that stops being hit drifts toward the
    eviction floor instead of squatting in the sketch forever.

    Not thread-safe on its own — :class:`AccessRecorder` serialises
    access under its lock.
    """

    __slots__ = ("capacity", "_counts", "_hits", "_evictions")

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY):
        if capacity < 1:
            raise ValueError("sketch capacity must be >= 1")
        self.capacity = int(capacity)
        self._counts: "Dict[int, float]" = {}
        self._hits = 0
        self._evictions = 0

    def hit(self, key: int, amount: float = 1.0) -> None:
        counts = self._counts
        self._hits += 1
        existing = counts.get(key)
        if existing is not None:
            counts[key] = existing + amount
            return
        if len(counts) < self.capacity:
            counts[key] = amount
            return
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        counts[key] = floor + amount
        self._evictions += 1

    def decay(self, factor: float) -> None:
        """Scale every counter by ``factor``, dropping near-zero keys."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        counts = self._counts
        for key in list(counts):
            scaled = counts[key] * factor
            if scaled < 0.5:  # below half a hit: forget the key
                del counts[key]
            else:
                counts[key] = scaled
        self._hits = int(self._hits * factor)

    def top(self, k: int) -> "List[Tuple[int, float]]":
        """The ``k`` hottest keys as ``(key, estimated_count)`` pairs,
        hottest first (ties broken by key for determinism)."""
        ranked = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[: max(0, int(k))]

    def __len__(self) -> int:
        return len(self._counts)

    def as_dict(self, k: int = 10) -> "Dict[str, object]":
        return {
            "tracked": len(self._counts),
            "capacity": self.capacity,
            "hits": self._hits,
            "evictions": self._evictions,
            "top": [
                {"key": key, "count": round(count, 3)}
                for key, count in self.top(k)
            ],
        }


class _ShardTally:
    """Per-shard access totals (lock held by the recorder)."""

    __slots__ = (
        "probes", "pages", "blocks", "cells", "cache_hits", "cache_misses"
    )

    def __init__(self):
        self.probes = 0
        self.pages = 0
        self.blocks = 0
        self.cells = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def work(self) -> int:
        """Work units: blocks read plus candidate cells scanned — the
        paper's two cost currencies (page accesses + CPU)."""
        return self.blocks + self.cells


#: Key for traffic recorded outside any shard scope (unsharded index,
#: or the serving layer's own reads).
UNSHARDED = -1


class AccessRecorder:
    """Thread-safe aggregation of the cell/page/shard access stream.

    One lock serialises updates; each hook is a dict update plus a
    sketch hit, so recording stays well inside the ≤10%-vs-metrics-only
    overhead budget the bench gate enforces.
    """

    def __init__(
        self,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
        decay_every: int = DEFAULT_DECAY_EVERY,
        decay_factor: float = DEFAULT_DECAY_FACTOR,
        hot_share_factor: float = DEFAULT_HOT_SHARE_FACTOR,
    ):
        if decay_every < 1:
            raise ValueError("decay_every must be >= 1")
        if not 0.0 < decay_factor <= 1.0:
            raise ValueError("decay_factor must be in (0, 1]")
        self._lock = threading.Lock()
        self.cells = TopKSketch(sketch_capacity)
        self.pages = TopKSketch(sketch_capacity)
        self.decay_every = int(decay_every)
        self.decay_factor = float(decay_factor)
        self.hot_share_factor = float(hot_share_factor)
        self._events_since_decay = 0
        self._shards: "Dict[int, _ShardTally]" = {}

    # ------------------------------------------------------------------
    # Recording hooks (called via the module fast path)
    # ------------------------------------------------------------------
    def _tally(self, shard: "Optional[int]") -> _ShardTally:
        key = UNSHARDED if shard is None else int(shard)
        tally = self._shards.get(key)
        if tally is None:
            tally = self._shards[key] = _ShardTally()
        return tally

    def _tick(self, n: int = 1) -> None:
        self._events_since_decay += n
        if self._events_since_decay >= self.decay_every:
            self._events_since_decay = 0
            self.cells.decay(self.decay_factor)
            self.pages.decay(self.decay_factor)

    def record_cells(
        self, cell_ids: "Iterable[int]", shard: "Optional[int]" = None
    ) -> None:
        """Count one query's candidate cells against the heatmap.

        This hook fires once per query with dozens of cells, so the
        sketch update is inlined per key (a few dict operations each)
        instead of composed from :meth:`TopKSketch.hit` calls.
        """
        if isinstance(cell_ids, np.ndarray):
            keys = cell_ids.tolist()
        else:
            keys = [int(cell_id) for cell_id in cell_ids]
        n = len(keys)
        if not n:
            return
        with self._lock:
            sketch = self.cells
            tracked = sketch._counts
            capacity = sketch.capacity
            sketch._hits += n
            for key in keys:
                existing = tracked.get(key)
                if existing is not None:
                    tracked[key] = existing + 1.0
                elif len(tracked) < capacity:
                    tracked[key] = 1.0
                else:
                    victim = min(tracked, key=tracked.__getitem__)
                    tracked[key] = tracked.pop(victim) + 1.0
                    sketch._evictions += 1
            key = UNSHARDED if shard is None else int(shard)
            tally = self._shards.get(key)
            if tally is None:
                tally = self._shards[key] = _ShardTally()
            tally.cells += n
            self._tick(n)

    def record_page(
        self,
        page_id: int,
        n_blocks: int = 1,
        hit: "Optional[bool]" = None,
        shard: "Optional[int]" = None,
    ) -> None:
        """Count one page read; ``hit`` attributes the cache outcome.

        This is the hottest hook (one call per page read), so the
        sketch update, shard tally and decay tick are inlined into one
        locked block instead of composed from the granular methods.
        """
        key = UNSHARDED if shard is None else int(shard)
        pid = int(page_id)
        with self._lock:
            tally = self._shards.get(key)
            if tally is None:
                tally = self._shards[key] = _ShardTally()
            tally.pages += 1
            tally.blocks += int(n_blocks)
            if hit is True:
                tally.cache_hits += 1
            elif hit is False:
                tally.cache_misses += 1
            sketch = self.pages
            counts = sketch._counts
            sketch._hits += 1
            existing = counts.get(pid)
            if existing is not None:
                counts[pid] = existing + 1.0
            elif len(counts) < sketch.capacity:
                counts[pid] = 1.0
            else:
                victim = min(counts, key=counts.__getitem__)
                counts[pid] = counts.pop(victim) + 1.0
                sketch._evictions += 1
            self._events_since_decay += 1
            if self._events_since_decay >= self.decay_every:
                self._events_since_decay = 0
                self.cells.decay(self.decay_factor)
                self.pages.decay(self.decay_factor)

    def record_probe(self, shard: "Optional[int]" = None) -> None:
        """Count one query probe against ``shard``'s load share."""
        with self._lock:
            self._tally(shard).probes += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, top_k: int = 10) -> "Dict[str, object]":
        """The JSON-ready skew report (``GET /analytics``,
        ``repro analyze``).

        ``shards`` carries per-shard load share and cache-hit ratio.
        Because a scatter-gather probes *every* shard, probe counts are
        uniform by construction; ``load_share`` therefore measures each
        shard's share of the *work* — blocks read plus candidate cells
        scanned, the paper's two cost currencies.  ``verdict`` names
        the shards whose work share exceeds ``hot_share_factor`` times
        the fair share — the shards a re-partition would relieve.
        """
        with self._lock:
            shard_ids = sorted(
                s for s in self._shards if s != UNSHARDED
            )
            total_probes = sum(
                t.probes for s, t in self._shards.items() if s != UNSHARDED
            )
            total_work = sum(
                t.work() for s, t in self._shards.items() if s != UNSHARDED
            )
            shards: "Dict[str, object]" = {}
            shares: "List[float]" = []
            hot: "List[int]" = []
            fair = 1.0 / len(shard_ids) if shard_ids else 0.0
            for shard in shard_ids:
                tally = self._shards[shard]
                share = (
                    tally.work() / total_work if total_work else 0.0
                )
                shares.append(share)
                lookups = tally.cache_hits + tally.cache_misses
                if share > fair * self.hot_share_factor:
                    hot.append(shard)
                shards[str(shard)] = {
                    "probes": tally.probes,
                    "pages": tally.pages,
                    "blocks": tally.blocks,
                    "cells": tally.cells,
                    "work": tally.work(),
                    "load_share": round(share, 4),
                    "cache_hits": tally.cache_hits,
                    "cache_misses": tally.cache_misses,
                    "cache_hit_ratio": (
                        round(tally.cache_hits / lookups, 4)
                        if lookups
                        else None
                    ),
                }
            unsharded = self._shards.get(UNSHARDED)
            load_gini = gini(shares)
            balanced = not hot
            if not shard_ids:
                advice = "no sharded traffic observed"
            elif balanced:
                advice = (
                    f"work is balanced (gini {load_gini:.3f});"
                    f" no re-partition needed"
                )
            else:
                named = ", ".join(str(s) for s in hot)
                advice = (
                    f"shard(s) {named} absorb more than"
                    f" {self.hot_share_factor:.2f}x the fair work share;"
                    f" a re-partition (or finer shard count) would"
                    f" relieve them"
                )
            document: "Dict[str, object]" = {
                "format": "repro.analytics",
                "version": 1,
                "shards": shards,
                "total_probes": total_probes,
                "gini": round(load_gini, 4),
                "hot_cells": self.cells.as_dict(top_k),
                "hot_pages": self.pages.as_dict(top_k),
                "verdict": {
                    "balanced": balanced,
                    "hot_shards": hot,
                    "gini": round(load_gini, 4),
                    "advice": advice,
                },
            }
            if unsharded is not None:
                lookups = unsharded.cache_hits + unsharded.cache_misses
                document["unsharded"] = {
                    "probes": unsharded.probes,
                    "pages": unsharded.pages,
                    "blocks": unsharded.blocks,
                    "cells": unsharded.cells,
                    "cache_hits": unsharded.cache_hits,
                    "cache_misses": unsharded.cache_misses,
                    "cache_hit_ratio": (
                        round(unsharded.cache_hits / lookups, 4)
                        if lookups
                        else None
                    ),
                }
            return document

    def reset(self) -> None:
        with self._lock:
            self.cells = TopKSketch(self.cells.capacity)
            self.pages = TopKSketch(self.pages.capacity)
            self._shards.clear()
            self._events_since_decay = 0


# ======================================================================
# Module-level fast path (house style: one `is None` check when off)
# ======================================================================

_recorder: "Optional[AccessRecorder]" = None

#: The shard whose probe is currently executing on this thread/task.
_shard_scope: "contextvars.ContextVar[Optional[int]]" = (
    contextvars.ContextVar("repro_analytics_shard", default=None)
)


def active() -> bool:
    """Whether an access recorder is installed."""
    return _recorder is not None


def install(
    recorder: "Optional[AccessRecorder]" = None,
) -> AccessRecorder:
    """Install (and return) the process-wide access recorder."""
    global _recorder
    _recorder = recorder if recorder is not None else AccessRecorder()
    return _recorder


def uninstall() -> None:
    """Remove the access recorder; hooks return to the one-check path."""
    global _recorder
    _recorder = None


def get_recorder() -> "Optional[AccessRecorder]":
    """The installed recorder, or ``None``."""
    return _recorder


@contextmanager
def recording(
    recorder: "Optional[AccessRecorder]" = None,
) -> "Iterator[AccessRecorder]":
    """Install a recorder for a ``with`` block, restoring the previous
    one afterwards (tests, ``repro analyze`` offline runs)."""
    global _recorder
    previous = _recorder
    installed = install(recorder)
    try:
        yield installed
    finally:
        _recorder = previous


@contextmanager
def shard_scope(shard: int) -> "Iterator[None]":
    """Attribute cell/page traffic in the block to ``shard``.

    Entered around each scatter probe; also consulted by the workload
    recorder to skip the inner per-shard ``nearest`` calls (the outer
    sharded query is the one captured).
    """
    token = _shard_scope.set(int(shard))
    try:
        yield
    finally:
        _shard_scope.reset(token)


def current_shard() -> "Optional[int]":
    """The shard scope of the calling context, or ``None``."""
    return _shard_scope.get()


def record_cells(cell_ids: "Iterable[int]") -> None:
    """Hot-path hook: count a query's candidate cells (no-op when off)."""
    recorder = _recorder
    if recorder is None:
        return
    recorder.record_cells(cell_ids, _shard_scope.get())


def record_page(
    page_id: int, n_blocks: int = 1, hit: "Optional[bool]" = None
) -> None:
    """Hot-path hook: count one page read (no-op when off)."""
    recorder = _recorder
    if recorder is None:
        return
    recorder.record_page(page_id, n_blocks, hit, _shard_scope.get())


def record_probe(shard: int) -> None:
    """Hot-path hook: count one shard probe (no-op when off)."""
    recorder = _recorder
    if recorder is None:
        return
    recorder.record_probe(shard)
