"""SLO declarations and multi-window burn-rate alerting.

A service level objective turns the telemetry windows into a yes/no
question an operator can page on: *is the service spending its error
budget faster than it can afford?*  Each :class:`SLO` declares a bounded
bad-event fraction (the **budget**) over one of two shapes:

* ``latency`` — the fraction of ``serve.latency_ms`` observations above
  a threshold must stay within the budget (equivalently: the p-quantile
  at ``1 - budget`` stays below the threshold);
* ``ratio`` — bad-event counters over (bad + good) counters, e.g.
  deadline misses over completions, rejections over submissions.

The **burn rate** of a window is ``bad_fraction / budget`` — 1.0 means
the budget is being consumed exactly as fast as it is allotted; 10×
means ten times too fast.  Following the classic multi-window pattern
(Google SRE workbook, ch. 5), the watchdog *pages* only when both the
short (10s) and long (60s) windows burn at ``page_burn`` or more — the
long window proves the problem is sustained, the short window proves it
is still happening — and *warns* on a long-window burn alone.  This
keeps a one-second blip from paging while catching a real regression in
seconds rather than minutes.

:class:`SLOWatchdog` evaluates the installed :class:`~repro.obs
.timeseries.TimeSeries` periodically, publishes ``serve.slo.*`` gauges,
emits an event-log record on every state transition, and exposes its
state for ``/healthz`` (503 while paging) and ``/telemetry``.  An
optional ``on_change`` hook receives the aggregate paging flag so the
serving layer can shed its batching delay while the budget burns (see
``QueryService.set_degraded``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import events, metrics
from .timeseries import TimeSeries, WindowSnapshot

__all__ = [
    "DEFAULT_SLOS",
    "DEFAULT_PAGE_BURN",
    "DEFAULT_WARN_BURN",
    "SLO",
    "SLOStatus",
    "SLOWatchdog",
    "STATE_OK",
    "STATE_PAGE",
    "STATE_WARN",
]

STATE_OK = "ok"
STATE_WARN = "warn"
STATE_PAGE = "page"

#: Numeric encoding for the ``serve.slo.<name>.state`` gauge.
_STATE_CODE = {STATE_OK: 0.0, STATE_WARN: 1.0, STATE_PAGE: 2.0}

#: Page when both alerting windows burn the budget at >= 10x its rate.
DEFAULT_PAGE_BURN = 10.0

#: Warn when the long window alone burns at >= 2x.
DEFAULT_WARN_BURN = 2.0

#: (short, long) alerting windows, seconds — must be a subset of the
#: telemetry ring's standard windows.
DEFAULT_ALERT_WINDOWS: "Tuple[int, int]" = (10, 60)


@dataclass(frozen=True)
class SLO:
    """One declared objective: a budgeted bad-event fraction."""

    #: Stable identifier (metric names derive from it).
    name: str
    #: ``"latency"`` or ``"ratio"``.
    kind: str
    #: Allowed bad-event fraction (error budget), in (0, 1).
    budget: float
    #: Human-readable statement of the objective.
    description: str = ""
    #: ``latency`` kind: the histogram to inspect ...
    metric: str = "serve.latency_ms"
    #: ... and the threshold above which an observation is "bad".
    threshold_ms: float = 50.0
    #: ``ratio`` kind: counters whose window totals are bad events ...
    bad: "Tuple[str, ...]" = ()
    #: ... and counters whose totals are good events.
    good: "Tuple[str, ...]" = ()

    def __post_init__(self):
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown SLO kind: {self.kind!r}")
        if not 0.0 < self.budget < 1.0:
            raise ValueError("budget must be in (0, 1)")
        if self.kind == "ratio" and not self.bad:
            raise ValueError("ratio SLO needs at least one bad counter")

    def bad_fraction(self, snapshot: WindowSnapshot) -> float:
        """Fraction of events in ``snapshot`` that violate the objective.

        An empty window reports 0.0 — no traffic burns no budget.
        """
        if self.kind == "latency":
            window = snapshot.get(self.metric)
            if window is None or window.count == 0:
                return 0.0
            return window.fraction_above(self.threshold_ms)
        bad = sum(snapshot.total(name) for name in self.bad)
        total = bad + sum(snapshot.total(name) for name in self.good)
        return bad / total if total > 0.0 else 0.0

    def burn_rate(self, snapshot: WindowSnapshot) -> float:
        """How many times faster than allotted the budget is burning."""
        return self.bad_fraction(snapshot) / self.budget


#: The serving objectives declared by default.  Thresholds are paper-
#: scale (an NN-cell point query is sub-millisecond; 50 ms of enqueue-
#: to-answer latency means queueing, not computing) and overridable via
#: ``TelemetryConfig`` / ``SLOWatchdog(slos=...)``.
DEFAULT_SLOS: "Tuple[SLO, ...]" = (
    SLO(
        name="latency_p99",
        kind="latency",
        budget=0.01,
        threshold_ms=50.0,
        description="99% of answers within 50 ms of submission",
    ),
    SLO(
        name="error_rate",
        kind="ratio",
        budget=0.01,
        bad=("serve.deadline_missed",),
        good=("serve.completed",),
        description="99% of accepted requests answered within deadline",
    ),
    SLO(
        name="overload_rate",
        kind="ratio",
        budget=0.05,
        bad=("serve.rejected",),
        good=("serve.submitted",),
        description="95% of submissions admitted",
    ),
    SLO(
        name="degraded_rate",
        kind="ratio",
        budget=0.05,
        bad=("serve.degraded_answers",),
        good=("serve.completed",),
        description=(
            "95% of answers complete (all shards); partial answers under"
            " allow_partial burn this budget"
        ),
    ),
)


@dataclass
class SLOStatus:
    """One objective's evaluated state at a point in time."""

    slo: SLO
    state: str = STATE_OK
    #: window seconds -> burn rate.
    burn: "Dict[int, float]" = field(default_factory=dict)
    #: Bad-event fraction over the long window.
    bad_fraction: float = 0.0

    def as_dict(self) -> "Dict[str, object]":
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "description": self.slo.description,
            "budget": self.slo.budget,
            "state": self.state,
            "bad_fraction": self.bad_fraction,
            "burn": {f"{s}s": rate for s, rate in self.burn.items()},
        }


class SLOWatchdog:
    """Periodic multi-window burn-rate evaluation over a time series.

    One evaluation is cheap (two window merges per objective), so the
    default 1 s cadence adds nothing measurable to a serving process.
    ``on_change`` is called with the aggregate paging flag whenever it
    flips; exceptions from the hook are swallowed (alerting must never
    take the service down).
    """

    def __init__(
        self,
        timeseries: TimeSeries,
        slos: "Sequence[SLO]" = DEFAULT_SLOS,
        page_burn: float = DEFAULT_PAGE_BURN,
        warn_burn: float = DEFAULT_WARN_BURN,
        alert_windows: "Tuple[int, int]" = DEFAULT_ALERT_WINDOWS,
        on_change: "Optional[Callable[[bool], None]]" = None,
    ):
        if page_burn <= 0 or warn_burn <= 0:
            raise ValueError("burn thresholds must be > 0")
        if warn_burn > page_burn:
            raise ValueError("warn_burn must not exceed page_burn")
        short, long_ = alert_windows
        if short >= long_:
            raise ValueError("alert windows must be (short, long)")
        self.timeseries = timeseries
        self.slos = tuple(slos)
        self.page_burn = float(page_burn)
        self.warn_burn = float(warn_burn)
        self.alert_windows = (int(short), int(long_))
        self._on_change = on_change
        self._lock = threading.Lock()
        self._statuses: "Dict[str, SLOStatus]" = {
            slo.name: SLOStatus(slo) for slo in self.slos
        }
        self._paging = False
        self._stop = threading.Event()
        self._thread: "Optional[threading.Thread]" = None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self) -> "List[SLOStatus]":
        """Evaluate every objective once; returns the new statuses."""
        short, long_ = self.alert_windows
        snapshots = {
            short: self.timeseries.window(short),
            long_: self.timeseries.window(long_),
        }
        changed: "List[Tuple[str, str, SLOStatus]]" = []
        with self._lock:
            for slo in self.slos:
                burn = {
                    seconds: slo.burn_rate(snapshot)
                    for seconds, snapshot in snapshots.items()
                }
                if (
                    burn[short] >= self.page_burn
                    and burn[long_] >= self.page_burn
                ):
                    state = STATE_PAGE
                elif burn[long_] >= self.warn_burn:
                    state = STATE_WARN
                else:
                    state = STATE_OK
                status = self._statuses[slo.name]
                previous = status.state
                status.state = state
                status.burn = burn
                status.bad_fraction = slo.bad_fraction(snapshots[long_])
                if state != previous:
                    changed.append((previous, state, status))
                metrics.set_gauge(
                    f"serve.slo.{slo.name}.burn_rate", burn[long_]
                )
                metrics.set_gauge(
                    f"serve.slo.{slo.name}.state", _STATE_CODE[state]
                )
            paging = any(
                s.state == STATE_PAGE for s in self._statuses.values()
            )
            paging_flipped = paging != self._paging
            self._paging = paging
            statuses = list(self._statuses.values())
        for previous, state, status in changed:
            events.emit(
                "slo",
                objective=status.slo.name,
                previous=previous,
                state=state,
                burn_short=status.burn.get(short, 0.0),
                burn_long=status.burn.get(long_, 0.0),
                bad_fraction=status.bad_fraction,
            )
        if paging_flipped and self._on_change is not None:
            try:
                self._on_change(paging)
            except Exception:  # alerting must never break serving
                pass
        return statuses

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def paging(self) -> bool:
        """Whether any objective is currently in the page state."""
        with self._lock:
            return self._paging

    def status(self) -> "Dict[str, object]":
        """JSON-ready aggregate view for /telemetry and /healthz."""
        with self._lock:
            worst = STATE_OK
            objectives = []
            for slo in self.slos:
                s = self._statuses[slo.name]
                objectives.append(s.as_dict())
                if _STATE_CODE[s.state] > _STATE_CODE[worst]:
                    worst = s.state
            return {
                "state": worst,
                "paging": self._paging,
                "page_burn": self.page_burn,
                "warn_burn": self.warn_burn,
                "windows_s": list(self.alert_windows),
                "objectives": objectives,
            }

    # ------------------------------------------------------------------
    # Background evaluation
    # ------------------------------------------------------------------
    def start(self, interval_s: float = 1.0) -> None:
        """Begin periodic evaluation on a daemon thread.  Idempotent."""
        if self._thread is not None:
            return
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.evaluate()

        self._stop.clear()
        self._thread = threading.Thread(
            target=loop, name="repro-slo-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (a final evaluation is not run)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
