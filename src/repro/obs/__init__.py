"""Observability: metrics registry, span tracing, profile exporters.

Three small modules with one job each:

* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms, free when disabled, thread-safe when enabled;
* :mod:`repro.obs.tracing` — nested wall-clock spans propagated via
  ``contextvars``;
* :mod:`repro.obs.export` — JSON / CSV / table exporters and the
  ``--profile`` document format.

See ``docs/observability.md`` for the metric-name and span taxonomy.
"""

from . import export, metrics, tracing
from .export import (
    load_profile,
    metrics_table,
    metrics_to_csv,
    metrics_to_dict,
    span_to_dict,
    stats_table,
    trace_to_list,
    write_profile,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span, Tracer, current_span, span, traced

__all__ = [
    "metrics",
    "tracing",
    "export",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "span",
    "traced",
    "current_span",
    "metrics_to_dict",
    "metrics_to_csv",
    "metrics_table",
    "stats_table",
    "span_to_dict",
    "trace_to_list",
    "write_profile",
    "load_profile",
]
