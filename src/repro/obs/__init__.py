"""Observability: metrics, tracing, live telemetry, profile exporters.

Six small modules with one job each:

* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms, free when disabled, thread-safe when enabled;
* :mod:`repro.obs.tracing` — nested wall-clock spans propagated via
  ``contextvars``;
* :mod:`repro.obs.timeseries` — sliding-window (1s/10s/60s) per-second
  buckets over serving/query metrics, feeding the live dashboards;
* :mod:`repro.obs.events` — sampled structured event log, one record
  per query / flush / build-chunk lifecycle;
* :mod:`repro.obs.promexport` — Prometheus text exposition plus the
  ``--metrics-port`` HTTP scrape endpoint;
* :mod:`repro.obs.export` — JSON / CSV / table exporters and the
  ``--profile`` document format.

See ``docs/observability.md`` for the metric-name and span taxonomy and
the "Live telemetry" section for windows, event schema and scrape names.
"""

from . import events, export, metrics, promexport, timeseries, tracing
from .events import EventLog
from .export import (
    ProfileDecodeError,
    ProfileError,
    ProfileSchemaError,
    ProfileVersionError,
    load_profile,
    metrics_table,
    metrics_to_csv,
    metrics_to_dict,
    span_to_dict,
    stats_table,
    trace_to_list,
    write_profile,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .promexport import MetricsServer, parse_exposition, render_prometheus
from .timeseries import (
    TimeSeries,
    dashboard,
    dashboard_line,
    telemetry_table,
)
from .tracing import Span, Tracer, current_span, span, traced

__all__ = [
    "metrics",
    "tracing",
    "timeseries",
    "events",
    "promexport",
    "export",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "EventLog",
    "MetricsServer",
    "render_prometheus",
    "parse_exposition",
    "dashboard",
    "dashboard_line",
    "telemetry_table",
    "Span",
    "Tracer",
    "span",
    "traced",
    "current_span",
    "metrics_to_dict",
    "metrics_to_csv",
    "metrics_table",
    "stats_table",
    "span_to_dict",
    "trace_to_list",
    "write_profile",
    "load_profile",
    "ProfileError",
    "ProfileDecodeError",
    "ProfileVersionError",
    "ProfileSchemaError",
]
