"""Observability: metrics, tracing, telemetry, SLOs, profile exporters.

Small modules with one job each:

* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms, free when disabled, thread-safe when enabled;
* :mod:`repro.obs.tracing` — nested wall-clock spans propagated via
  ``contextvars``;
* :mod:`repro.obs.tracectx` — request-scoped trace ids, minted at serve
  admission and propagated with the same ``contextvars`` discipline;
* :mod:`repro.obs.tracestore` — tail-sampled bounded retention of
  finished traces, critical-path analysis, Chrome trace export;
* :mod:`repro.obs.timeseries` — sliding-window (1s/10s/60s) per-second
  buckets over serving/query metrics, feeding the live dashboards and
  carrying tail exemplars (trace ids of the slowest observations);
* :mod:`repro.obs.slo` — declared objectives with multi-window
  burn-rate alerting over those windows;
* :mod:`repro.obs.events` — sampled structured event log, one record
  per query / flush / build-chunk lifecycle, trace-id stamped;
* :mod:`repro.obs.analytics` — bounded cell/page access heatmaps,
  per-shard load shares and the workload-skew report (``repro
  analyze``, ``GET /analytics``);
* :mod:`repro.obs.workload` — sampled capture of served queries and
  their answers into a replayable log (``repro replay``);
* :mod:`repro.obs.promexport` — Prometheus text exposition plus the
  ``--metrics-port`` HTTP scrape endpoint (`/metrics`, `/telemetry`,
  `/trace/<id>`, `/healthz`);
* :mod:`repro.obs.export` — JSON / CSV / table exporters and the
  ``--profile`` document format.

See ``docs/observability.md`` for the metric-name and span taxonomy and
``docs/tracing.md`` for the trace lifecycle, tail sampling, exemplars
and SLO burn-rate semantics.
"""

from . import (
    analytics,
    events,
    export,
    metrics,
    promexport,
    slo,
    timeseries,
    tracectx,
    tracestore,
    tracing,
)
from . import workload
from .analytics import AccessRecorder, TopKSketch
from .events import EventLog
from .export import (
    ProfileDecodeError,
    ProfileError,
    ProfileSchemaError,
    ProfileVersionError,
    load_profile,
    metrics_table,
    metrics_to_csv,
    metrics_to_dict,
    span_to_dict,
    stats_table,
    trace_to_list,
    write_profile,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .promexport import (
    ExpositionNameError,
    MetricsServer,
    parse_exposition,
    render_prometheus,
    validate_metric_name,
)
from .slo import SLO, SLOWatchdog
from .timeseries import (
    TimeSeries,
    dashboard,
    dashboard_line,
    telemetry_table,
)
from .tracestore import (
    StoredTrace,
    TraceStore,
    critical_path,
    to_chrome_trace,
)
from .tracing import Span, TraceCarrier, Tracer, carrier, current_span, span, traced
from .workload import Workload, WorkloadRecorder, load_workload, save_workload_npz

__all__ = [
    "analytics",
    "workload",
    "metrics",
    "tracing",
    "tracectx",
    "tracestore",
    "timeseries",
    "slo",
    "events",
    "promexport",
    "export",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "EventLog",
    "AccessRecorder",
    "TopKSketch",
    "Workload",
    "WorkloadRecorder",
    "load_workload",
    "save_workload_npz",
    "MetricsServer",
    "ExpositionNameError",
    "validate_metric_name",
    "render_prometheus",
    "parse_exposition",
    "dashboard",
    "dashboard_line",
    "telemetry_table",
    "Span",
    "Tracer",
    "TraceCarrier",
    "carrier",
    "span",
    "traced",
    "current_span",
    "StoredTrace",
    "TraceStore",
    "critical_path",
    "to_chrome_trace",
    "SLO",
    "SLOWatchdog",
    "metrics_to_dict",
    "metrics_to_csv",
    "metrics_table",
    "stats_table",
    "span_to_dict",
    "trace_to_list",
    "write_profile",
    "load_profile",
    "ProfileError",
    "ProfileDecodeError",
    "ProfileVersionError",
    "ProfileSchemaError",
]
