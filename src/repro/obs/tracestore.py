"""Tail-sampled trace store: keep the traces worth looking at.

Recording *every* request's span tree in a serving process is an
unbounded-memory bug; recording a uniform sample misses exactly the
requests an operator cares about.  This module keeps the useful tail:

* the **slowest** ``capacity`` traces within a sliding horizon (a
  min-heap by duration — a new trace slower than the fastest retained
  one displaces it, anything faster is dropped on arrival);
* **all** error / fallback traces within the horizon (bounded
  separately, oldest evicted first) — a degraded answer is always worth
  explaining, however fast it was.

A :class:`TraceStore` plugs straight into :mod:`repro.obs.tracing` as
the root-span sink (:func:`repro.obs.tracing.set_tracer`), so enabling
tracing in a serving process stays O(capacity) memory for any uptime.
The serving layer also adds assembled per-request traces directly
(:meth:`TraceStore.add_trace`).

Two consumers sit on top:

* :func:`critical_path` attributes one traced request's wall time to
  pipeline stages — queue-wait, tree-walk, candidate-scan, LP,
  fallback, delivery — following the request's link to its micro-batch
  flush trace for the compute breakdown;
* :func:`to_chrome_trace` renders stored traces as Chrome trace-event
  JSON (load the file in Perfetto / ``chrome://tracing``).

See ``docs/tracing.md`` for the trace lifecycle and the exemplar
linking that connects ``/telemetry`` percentiles to stored trace ids.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from .tracing import Span

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_ERROR_CAPACITY",
    "DEFAULT_HORIZON_SECONDS",
    "CriticalPath",
    "StoredTrace",
    "TraceStore",
    "critical_path",
    "get_store",
    "install",
    "to_chrome_trace",
    "trace_kind",
    "uninstall",
]

#: Slowest-traces retention bound (per store, within the horizon).
DEFAULT_CAPACITY = 256

#: Error/fallback-traces retention bound (kept regardless of speed).
DEFAULT_ERROR_CAPACITY = 128

#: Sliding retention horizon.  Must cover the longest telemetry window
#: (60s) with slack, so every tail exemplar still resolves to a trace.
DEFAULT_HORIZON_SECONDS = 120


def trace_kind(name: str) -> str:
    """Coarse trace classification from the root span's name."""
    if name == "serve.request":
        return "request"
    if name == "serve.flush":
        return "flush"
    if name.startswith(("query.", "search.")):
        return "query"
    if name.startswith("build."):
        return "build"
    return "span"


@dataclass
class StoredTrace:
    """One retained root span tree plus its retention metadata."""

    trace_id: str
    root: Span
    kind: str
    #: Wall-clock time the trace was stored (``time.time``).
    ts: float
    duration_ms: float
    error: bool = False
    fallback: bool = False
    #: The response was explicitly degraded — a sharded scatter answered
    #: without every shard (``allow_partial``).  Degraded traces are
    #: retained like error/fallback traces: they are exactly the ones a
    #: post-incident analysis needs.
    degraded: bool = False
    #: Trace ids this trace is causally linked to (a request links its
    #: flush; a flush links every member request).
    links: "List[str]" = field(default_factory=list)
    #: Store-monotonic admission time, used for horizon pruning.
    added: float = 0.0

    def as_dict(self) -> "Dict[str, Any]":
        """JSON-ready summary (the span tree itself stays separate)."""
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "name": self.root.name,
            "ts": self.ts,
            "duration_ms": self.duration_ms,
            "error": self.error,
            "fallback": self.fallback,
            "degraded": self.degraded,
            "links": list(self.links),
        }


def _tree_has_fallback(root: Span) -> bool:
    stack = [root]
    while stack:
        node = stack.pop()
        if node.name in ("query.fallback", "search.rkv", "search.hs"):
            return True
        stack.extend(node.children)
    return False


class TraceStore:
    """Bounded, tail-sampling retention of finished traces.

    Thread-safe: the serve flush loop, query threads and HTTP scrape
    handlers share one lock.  ``clock`` must be monotonic seconds
    (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        error_capacity: int = DEFAULT_ERROR_CAPACITY,
        horizon_seconds: float = DEFAULT_HORIZON_SECONDS,
        clock: "Callable[[], float]" = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if error_capacity < 1:
            raise ValueError("error_capacity must be >= 1")
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be > 0")
        import threading

        self._lock = threading.Lock()
        self.capacity = capacity
        self.error_capacity = error_capacity
        self.horizon_seconds = float(horizon_seconds)
        self._clock = clock
        self._by_id: "Dict[str, StoredTrace]" = {}
        #: Min-heap of (duration_ms, seq, trace_id) over retained
        #: *normal* traces — the root of the heap is the next eviction.
        self._slow: "List[tuple]" = []
        self._errors: "deque[str]" = deque()
        self._seq = 0
        #: Earliest ``added`` stamp among retained traces — lets the
        #: per-add horizon check stay O(1) until something actually
        #: ages out (the full prune scan is O(retained)).
        self._oldest_added = float("inf")
        #: Traces offered / traces dropped by sampling (auditability).
        self.added = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add(self, span: Span) -> None:
        """Root-span sink: wrap and tail-sample one finished span tree.

        This is the :class:`~repro.obs.tracing.Tracer` duck-type entry —
        install the store with ``tracing.set_tracer(store)`` (or let
        :class:`~repro.serve.TelemetrySession` do it).
        """
        attrs = span.attributes
        trace_id = str(attrs.get("trace_id") or f"span-{id(span):x}")
        self.add_trace(
            StoredTrace(
                trace_id=trace_id,
                root=span,
                kind=trace_kind(span.name),
                ts=time.time(),
                duration_ms=1e3 * span.duration_seconds,
                error=bool(attrs.get("error", False)),
                fallback=_tree_has_fallback(span),
                degraded=bool(attrs.get("degraded", False)),
                links=list(attrs.get("links", ())),
            )
        )

    def add_trace(self, trace: StoredTrace) -> bool:
        """Offer one trace; returns whether it was retained."""
        with self._lock:
            now = self._clock()
            trace.added = now
            self._prune(now)
            self.added += 1
            if now < self._oldest_added:
                self._oldest_added = now
            if trace.error or trace.fallback or trace.degraded:
                self._errors.append(trace.trace_id)
                self._by_id[trace.trace_id] = trace
                while len(self._errors) > self.error_capacity:
                    evicted = self._errors.popleft()
                    self._by_id.pop(evicted, None)
                return True
            if (
                len(self._slow) >= self.capacity
                and self._slow[0][0] >= trace.duration_ms
            ):
                self.dropped += 1  # faster than everything retained
                return False
            self._seq += 1
            heapq.heappush(
                self._slow, (trace.duration_ms, self._seq, trace.trace_id)
            )
            self._by_id[trace.trace_id] = trace
            while len(self._slow) > self.capacity:
                __, __, evicted = heapq.heappop(self._slow)
                self._by_id.pop(evicted, None)
                self.dropped += 1
            return True

    def _prune(self, now: float) -> None:
        """Drop traces older than the horizon (caller holds the lock).

        The common case — nothing stale yet — is a single float compare
        against the oldest retained stamp; the linear scan only runs
        when at least one trace has actually aged out.
        """
        cutoff = now - self.horizon_seconds
        if self._oldest_added >= cutoff:
            return
        stale = [
            tid for tid, trace in self._by_id.items()
            if trace.added < cutoff
        ]
        for tid in stale:
            self._by_id.pop(tid, None)
        self._slow = [
            entry for entry in self._slow if entry[2] in self._by_id
        ]
        heapq.heapify(self._slow)
        self._errors = deque(
            tid for tid in self._errors if tid in self._by_id
        )
        self._oldest_added = min(
            (t.added for t in self._by_id.values()), default=float("inf")
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> "Optional[StoredTrace]":
        with self._lock:
            return self._by_id.get(trace_id)

    def traces(self, kind: "Optional[str]" = None) -> "List[StoredTrace]":
        """Retained traces, newest first, optionally one kind."""
        with self._lock:
            out = sorted(
                self._by_id.values(), key=lambda t: t.added, reverse=True
            )
        if kind is not None:
            out = [t for t in out if t.kind == kind]
        return out

    def slowest(
        self, n: int = 10, kind: "Optional[str]" = None
    ) -> "List[StoredTrace]":
        """The ``n`` slowest retained traces, slowest first."""
        with self._lock:
            out = list(self._by_id.values())
        if kind is not None:
            out = [t for t in out if t.kind == kind]
        out.sort(key=lambda t: t.duration_ms, reverse=True)
        return out[:n]

    def clear(self) -> None:
        with self._lock:
            self._by_id.clear()
            self._slow.clear()
            self._errors.clear()
            self._oldest_added = float("inf")

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    def __bool__(self) -> bool:
        # An empty store is still a real sink; never decay to len().
        return True

    # Tracer-compatibility shims (`tracing.get_tracer()` callers).
    @property
    def spans(self) -> "List[Span]":
        return [t.root for t in self.traces()]


# ======================================================================
# Module-level installation (mirrors metrics.install_timeseries)
# ======================================================================

_store: "Optional[TraceStore]" = None


def install(store: "Optional[TraceStore]" = None) -> TraceStore:
    """Install ``store`` (a fresh one by default) as the process store.

    The serving layer checks :func:`get_store` to decide whether to
    assemble per-request traces and pass exemplar trace ids to the
    latency histograms — installation is the one switch for both.
    """
    global _store
    _store = store or TraceStore()
    return _store


def uninstall() -> None:
    global _store
    _store = None


def get_store() -> "Optional[TraceStore]":
    """The installed process-wide store, or ``None``."""
    return _store


# ======================================================================
# Critical-path analysis
# ======================================================================

#: Exact span-name -> stage mapping; unmapped spans are descended into.
_STAGE_BY_NAME = {
    "serve.queue_wait": "queue_wait",
    "serve.deliver": "deliver",
    "query.point_query": "tree_walk",
    "query.batch.point_query": "tree_walk",
    "query.candidate_scan": "candidate_scan",
    "query.batch.candidate_scan": "candidate_scan",
    "query.sphere_refinement": "candidate_scan",
    "query.fallback": "fallback",
    "search.rkv": "fallback",
    "search.hs": "fallback",
    # Sharded scatter-gather: the k-merge is candidate post-processing;
    # `shard.probe`/`shard.nearest`/`shard.query_batch` stay unmapped on
    # purpose so the walk/scan spans inside each shard claim their own
    # stages (concurrent shard claims are clamped like any child claim).
    "shard.merge": "candidate_scan",
}

#: Stages in display order (``compute_other`` is flush time not claimed
#: by a mapped descendant; ``other`` is wall time outside any segment).
STAGES = (
    "queue_wait", "tree_walk", "candidate_scan", "lp", "fallback",
    "compute_other", "deliver", "other",
)


def _stage_of(name: str) -> "Optional[str]":
    stage = _STAGE_BY_NAME.get(name)
    if stage is not None:
        return stage
    if name.startswith("lp."):
        return "lp"
    return None


def _stage_seconds(root: Span) -> "Dict[str, float]":
    """Per-stage seconds over ``root``'s subtree.

    A span that maps to a stage contributes its whole duration and is
    not descended into (children refine, they do not add); unmapped
    spans contribute via their children only.
    """
    stages: "Dict[str, float]" = {}
    stack = list(root.children)
    while stack:
        node = stack.pop()
        stage = _stage_of(node.name)
        if stage is not None:
            stages[stage] = stages.get(stage, 0.0) + node.duration_seconds
        else:
            stack.extend(node.children)
    return stages


@dataclass
class CriticalPath:
    """Stage attribution of one trace's wall time."""

    trace_id: str
    total_ms: float
    #: Stage -> milliseconds, only stages that occurred.
    stages: "Dict[str, float]"
    #: Fraction of the wall time the attribution accounts for.
    coverage: float

    def as_dict(self) -> "Dict[str, Any]":
        return {
            "trace_id": self.trace_id,
            "total_ms": self.total_ms,
            "coverage": self.coverage,
            "stages": {
                name: self.stages[name]
                for name in STAGES if name in self.stages
            },
        }


def critical_path(
    trace: StoredTrace, store: "Optional[TraceStore]" = None
) -> CriticalPath:
    """Attribute ``trace``'s wall time to pipeline stages.

    For a ``request`` trace the direct children are contiguous measured
    segments (queue-wait -> compute -> deliver), so coverage is ~1.0 by
    construction; the compute segment is sub-attributed by following the
    request's link to its flush trace in ``store`` (tree walk, candidate
    scan, LP, fallback — the remainder is ``compute_other``).  For any
    other trace kind, stages come from the mapped descendants directly.
    """
    root = trace.root
    total = root.duration_seconds
    stages: "Dict[str, float]" = {}

    def bump(stage: str, seconds: float) -> None:
        if seconds > 0.0:
            stages[stage] = stages.get(stage, 0.0) + seconds

    if trace.kind == "request":
        for child in root.children:
            if child.name == "serve.compute":
                flush = None
                if store is not None:
                    flush_id = child.attributes.get("flush")
                    if flush_id:
                        flush = store.get(str(flush_id))
                sub = (
                    _stage_seconds(flush.root) if flush is not None
                    else _stage_seconds(child)
                )
                accounted = 0.0
                for stage, seconds in sub.items():
                    claim = min(seconds, child.duration_seconds - accounted)
                    bump(stage, claim)
                    accounted += claim
                bump(
                    "compute_other",
                    child.duration_seconds - accounted,
                )
            else:
                stage = _stage_of(child.name)
                bump(stage or "other", child.duration_seconds)
    else:
        for stage, seconds in _stage_seconds(root).items():
            bump(stage, seconds)

    covered = sum(stages.values())
    coverage = covered / total if total > 0.0 else 1.0
    return CriticalPath(
        trace_id=trace.trace_id,
        total_ms=1e3 * total,
        stages={name: 1e3 * sec for name, sec in stages.items()},
        coverage=min(1.0, coverage),
    )


# ======================================================================
# Chrome trace-event export (Perfetto / chrome://tracing)
# ======================================================================

def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def to_chrome_trace(
    traces: "Iterable[StoredTrace]",
) -> "Dict[str, Any]":
    """Stored traces as a Chrome trace-event JSON document.

    Every span becomes one complete (``"ph": "X"``) event; each trace
    gets its own ``tid`` row so Perfetto renders the flush and its
    member requests as parallel tracks.  Timestamps are microseconds
    relative to the earliest span start across the exported set (the
    spans' ``perf_counter`` clocks share an epoch within one process).
    """
    ordered = sorted(traces, key=lambda t: t.root.start)
    events: "List[Dict[str, Any]]" = []
    if not ordered:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(t.root.start for t in ordered)
    for row, trace in enumerate(ordered, start=1):
        events.append({
            "ph": "M", "pid": 1, "tid": row, "name": "thread_name",
            "args": {"name": f"{trace.kind} {trace.trace_id}"},
        })
        stack = [trace.root]
        while stack:
            node = stack.pop()
            events.append({
                "ph": "X",
                "name": node.name,
                "cat": trace.kind,
                "ts": 1e6 * (node.start - base),
                "dur": 1e6 * node.duration_seconds,
                "pid": 1,
                "tid": row,
                "args": _jsonable(node.attributes),
            })
            stack.extend(node.children)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
