"""Structured event log: one sampled record per pipeline lifecycle.

Metrics answer *aggregate* questions; an event log answers "what did
**this** query / flush / build chunk do".  Each record is one flat,
JSON-ready dict with a ``kind``, a wall-clock ``ts``, a process-unique
``seq``, and the lifecycle's outcome fields (timing, candidate count,
pages, fallback reason).  The three kinds emitted by the pipeline:

========== ============================ ==============================
kind       emitted by                    payload (beyond kind/ts/seq)
========== ============================ ==============================
``query``  ``NNCellIndex.nearest``       outcome, point_id, candidates,
                                         pages, retried_atol,
                                         fallback_reason, duration_ms
``batch``  ``engine.batch.query_batch``  n_queries, candidates, pages,
                                         fallbacks, retried_atol,
                                         duration_ms
``flush``  ``serve.QueryService``        outcome, n_requests, pages,
                                         sources, expired, duration_ms
``build_chunk`` ``engine.parallel``      worker, n_points, lp_calls,
                                         duration_ms
========== ============================ ==============================

Like :mod:`repro.obs.metrics`, the log is **off by default** and every
hot-path emission site guards with one module-level boolean
(:func:`enabled`), so a disabled process pays a single check — the same
< 3% overhead contract, enforced by ``tests/obs/test_events.py``.

When enabled, records land in a bounded ring buffer (oldest evicted
first) and, optionally, a JSONL sink — one ``json.dumps`` line per
record, the format ``python -m repro serve --events PATH`` writes.
Sampling (``sample=0.1`` keeps ~10%) uses a seeded RNG so runs are
reproducible; ``emitted``/``recorded`` counters make the sampling rate
auditable.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

import random

from . import tracectx

__all__ = [
    "DEFAULT_CAPACITY",
    "EventLog",
    "collecting",
    "disable",
    "emit",
    "enable",
    "enabled",
    "get_log",
]

#: Ring-buffer bound: how many recent records a log retains in memory.
DEFAULT_CAPACITY = 1024


class EventLog:
    """Bounded in-memory ring of event records plus an optional sink.

    ``sink`` may be a file-like object (borrowed: not closed) or a
    path (owned: opened for append, closed by :meth:`close`).  All
    mutation is serialised by one lock, so worker threads and the serve
    flush loop can share a log.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample: float = 1.0,
        sink: "Any | None" = None,
        seed: int = 0,
        clock: "Callable[[], float]" = time.time,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        self.capacity = capacity
        self.sample = sample
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        #: Lifecycles seen (including ones dropped by sampling).
        self.emitted = 0
        #: Records actually retained / written.
        self.recorded = 0
        self._own_sink = isinstance(sink, (str, Path))
        self._sink = (
            open(sink, "a", encoding="utf-8") if self._own_sink else sink
        )

    def emit(self, kind: str, **fields: Any) -> bool:
        """Record one lifecycle; returns whether it survived sampling.

        A record emitted while a trace id is bound to the calling
        context (:mod:`repro.obs.tracectx`) is stamped with it, so the
        event log joins against the trace store on ``trace_id``.
        """
        trace_id = tracectx.current_trace_id()
        with self._lock:
            self.emitted += 1
            if self.sample < 1.0 and self._rng.random() >= self.sample:
                return False
            record: "Dict[str, Any]" = {
                "seq": self.emitted,
                "ts": self._clock(),
                "kind": kind,
            }
            if trace_id is not None and "trace_id" not in fields:
                record["trace_id"] = trace_id
            record.update(fields)
            self._ring.append(record)
            self.recorded += 1
            if self._sink is not None:
                self._sink.write(json.dumps(record, sort_keys=True) + "\n")
                self._sink.flush()
        return True

    def records(self, kind: "str | None" = None) -> "List[Dict[str, Any]]":
        """A snapshot of the retained records, optionally one kind."""
        with self._lock:
            records = list(self._ring)
        if kind is None:
            return records
        return [r for r in records if r["kind"] == kind]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Close an owned (path-opened) sink; borrowed sinks are kept."""
        with self._lock:
            if self._own_sink and self._sink is not None:
                self._sink.close()
            self._sink = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


# ======================================================================
# Module-level fast path (mirrors repro.obs.metrics)
# ======================================================================

_enabled = False
_log: "Optional[EventLog]" = None


def enabled() -> bool:
    """Whether lifecycle events are currently being recorded."""
    return _enabled


def enable(log: "Optional[EventLog]" = None, **kwargs: Any) -> EventLog:
    """Turn event recording on.

    Pass an existing :class:`EventLog`, or constructor ``kwargs``
    (``capacity``, ``sample``, ``sink``, ``seed``) for a fresh one; with
    neither, the previous log is reused (a fresh default one on first
    use).
    """
    global _enabled, _log
    if log is not None and kwargs:
        raise ValueError("pass an EventLog or constructor kwargs, not both")
    if log is not None:
        _log = log
    elif kwargs or _log is None:
        _log = EventLog(**kwargs)
    _enabled = True
    return _log


def disable() -> None:
    """Turn event recording off (the log keeps its retained records)."""
    global _enabled
    _enabled = False


def get_log() -> "Optional[EventLog]":
    """The installed log, or ``None`` if events never started."""
    return _log


def emit(kind: str, **fields: Any) -> None:
    """Hot-path emission; no-op (one boolean check) unless enabled."""
    if not _enabled:
        return
    _log.emit(kind, **fields)


@contextmanager
def collecting(**kwargs: Any) -> "Iterator[EventLog]":
    """Record events for a ``with`` block onto a fresh log.

    Restores the previous enablement state and log on exit::

        with events.collecting() as log:
            index.nearest(q)
        log.records("query")
    """
    global _enabled, _log
    prev_enabled, prev_log = _enabled, _log
    fresh = EventLog(**kwargs)
    _log = fresh
    _enabled = True
    try:
        yield fresh
    finally:
        _enabled = prev_enabled
        _log = prev_log
        fresh.close()
